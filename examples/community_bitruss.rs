//! Community detection via k-bitruss on a streamed bipartite graph.
//!
//! The paper's introduction motivates butterfly counting through its
//! downstream consumers; one of them is the k-bitruss (every edge belongs to
//! at least k butterflies within the subgraph), which is used for community
//! and spam detection.  This example
//!
//! 1. streams a planted-community bipartite graph (a block model) with 20%
//!    deletions through ABACUS to monitor the global butterfly count,
//! 2. materialises the final graph and runs the bitruss decomposition,
//! 3. shows that the densest k-bitruss levels recover the planted blocks.
//!
//! ```bash
//! cargo run --release --example community_bitruss
//! ```

use abacus::graph::bitruss::bitruss_decomposition;
use abacus::graph::butterfly_clustering_coefficient;
use abacus::prelude::*;
use abacus::stream::generators::block::{block_bipartite, block_of, BlockConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A user-product graph with 8 planted communities: most interactions
    //    stay inside a community, a few cross it.
    let config = BlockConfig {
        left_vertices: 1_600,
        right_vertices: 400,
        edges: 24_000,
        blocks: 8,
        intra_block_probability: 0.9,
    };
    let edges = block_bipartite(config, &mut StdRng::seed_from_u64(11));
    let stream = inject_deletions_fast(
        &edges,
        DeletionConfig::new(0.20),
        &mut StdRng::seed_from_u64(12),
    );
    println!(
        "stream: {} elements over {} planted communities",
        stream.len(),
        config.blocks
    );

    // 2. Maintain an approximate global butterfly count while streaming.
    let mut abacus = Abacus::new(AbacusConfig::new(5_000).with_seed(1));
    abacus.process_stream(&stream);

    let graph = final_graph(&stream);
    let exact = count_butterflies(&graph);
    println!(
        "global butterflies: estimate {:.0} vs exact {} ({:.2}% error), clustering coefficient {:.4}",
        abacus.estimate(),
        exact,
        relative_error_percent(exact as f64, abacus.estimate()),
        butterfly_clustering_coefficient(&graph),
    );

    // 3. Peel the graph into its bitruss hierarchy.
    let decomposition = bitruss_decomposition(&graph);
    let max_k = decomposition.max_bitruss();
    println!("maximum bitruss number: {max_k}");

    let right_block_size = config.right_vertices.div_ceil(config.blocks);
    for k in [2u64, max_k / 2, max_k].into_iter().filter(|&k| k > 0) {
        let core = decomposition.k_bitruss_graph(k);
        let core_edges = decomposition.k_bitruss_edges(k);
        // How "pure" is the dense core with respect to the planted communities?
        let intra = core_edges
            .iter()
            .filter(|edge| {
                let right_block = (edge.right / right_block_size).min(config.blocks - 1);
                block_of(&config, edge.left) == right_block
            })
            .count();
        println!(
            "{k:>4}-bitruss: {} edges, {} left / {} right vertices, {:.0}% of edges inside their planted block",
            core.num_edges(),
            core.num_left_vertices(),
            core.num_right_vertices(),
            100.0 * intra as f64 / core_edges.len().max(1) as f64,
        );
    }
}
