//! Ensemble accuracy: how replica averaging trades memory against variance.
//!
//! Runs replicate-mode ensembles of ABACUS over a Movielens-like fully
//! dynamic stream and reports, for each ensemble width K:
//!
//! * **fixed per-replica memory** — every replica keeps the full budget, so
//!   the ensemble uses K× the memory.  Replicas are i.i.d., so the spread
//!   of the ensemble estimate shrinks like ~1/√K — the classic variance
//!   story, visible in the `spread` column.
//! * **fixed total memory** — the budget is split K ways (replica budget
//!   M/K).  This is the honest production question ("I have M edges of RAM
//!   — one big sample or K small ones?"), and the answer is one big sample:
//!   butterfly-discovery probability falls like (budget)³, so K small
//!   samples are each K³× noisier and averaging only buys back a factor K.
//!
//! The table prints both so the trade-off is visible side by side rather
//! than asserted.
//!
//! Run with `cargo run --release --example ensemble_accuracy`.

use abacus::prelude::*;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Mean absolute percentage error and mean replicate spread over `trials`
/// independent ensemble runs.
fn measure(
    stream: &[StreamElement],
    truth: f64,
    budget_per_replica: usize,
    replicas: usize,
    trials: u64,
) -> (f64, f64) {
    let mut mape = 0.0;
    let mut spread = 0.0;
    for trial in 0..trials {
        let spec = EstimatorSpec::abacus(budget_per_replica).with_seed(1_000 + trial);
        let mut ensemble = Ensemble::new(spec, replicas, EnsembleMode::Replicate).unwrap();
        ensemble.process_stream(stream);
        mape += relative_error_percent(truth, ensemble.estimate());
        spread += ensemble
            .replicate_summary()
            .expect("replicate mode")
            .std_dev;
    }
    (mape / trials as f64, spread / trials as f64)
}

fn main() {
    let total_budget = env_usize("ENSEMBLE_EXAMPLE_BUDGET", 4_000);
    let trials = env_usize("ENSEMBLE_EXAMPLE_TRIALS", 8) as u64;
    let stream = Dataset::MovielensLike.stream(0.2, 7);
    let truth = count_butterflies(&final_graph(&stream)) as f64;
    println!(
        "Movielens-like: {} elements, {truth:.0} butterflies, total budget {total_budget}, \
         {trials} trials per row\n",
        stream.len()
    );

    println!("K   | per-replica M | total mem | MAPE %  | replica spread");
    println!("----+---------------+-----------+---------+---------------");
    for k in [1usize, 2, 4, 8] {
        // Fixed per-replica memory: K× the memory, ~1/sqrt(K) the spread.
        let (mape, spread) = measure(&stream, truth, total_budget, k, trials);
        println!(
            "{k:<3} | {total_budget:>13} | {:>9} | {mape:>7.2} | {spread:>12.0}  (fixed per-replica)",
            total_budget * k
        );
        // Fixed total memory: same RAM, K× smaller replicas.
        let (mape, spread) = measure(&stream, truth, total_budget / k, k, trials);
        println!(
            "{k:<3} | {:>13} | {total_budget:>9} | {mape:>7.2} | {spread:>12.0}  (fixed total)",
            total_budget / k
        );
    }
    println!(
        "\nReading: with fixed per-replica memory the ensemble estimate tightens ~1/sqrt(K); \
         at fixed total memory one big sample beats K small ones (discovery probability \
         scales with budget^3), so use replicate ensembles to buy accuracy with more \
         total memory, not to re-slice a fixed budget."
    );
}
