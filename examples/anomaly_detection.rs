//! Streaming anomaly detection from butterfly-count bursts.
//!
//! The paper motivates fully dynamic butterfly counting with real-time anomaly
//! detection: a sudden burst of butterflies signals a dense co-interaction
//! pattern (e.g. a review-fraud ring rating the same products), and ignoring
//! edge deletions corrupts the baseline the detector compares against.
//!
//! This example streams a background user-item workload, injects a planted
//! fraud ring (a near-biclique) mid-stream, later retracts it (the platform
//! removes the fraudulent edges), and shows how a window-level butterfly-rate
//! detector built on ABACUS reacts — including the retraction, which an
//! insert-only counter would never see.
//!
//! ```bash
//! cargo run --release --example anomaly_detection
//! ```

use abacus::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A simple burst detector: flags a window whose butterfly-count increase
/// exceeds `factor` times the trailing average increase.
struct BurstDetector {
    factor: f64,
    previous_estimate: f64,
    trailing: Vec<f64>,
}

impl BurstDetector {
    fn new(factor: f64) -> Self {
        BurstDetector {
            factor,
            previous_estimate: 0.0,
            trailing: Vec::new(),
        }
    }

    /// Returns `Some(increase)` when the window is anomalous.
    fn observe(&mut self, estimate: f64) -> Option<f64> {
        let increase = estimate - self.previous_estimate;
        self.previous_estimate = estimate;
        let baseline = if self.trailing.is_empty() {
            increase.abs()
        } else {
            self.trailing.iter().map(|v| v.abs()).sum::<f64>() / self.trailing.len() as f64
        };
        self.trailing.push(increase);
        if self.trailing.len() > 8 {
            self.trailing.remove(0);
        }
        if increase.abs() > self.factor * baseline.max(1.0) {
            Some(increase)
        } else {
            None
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Background workload: a sparse user-item graph.
    let background = abacus::stream::generators::uniform_bipartite(5_000, 2_000, 60_000, &mut rng);

    // Planted fraud ring: 12 accounts all rating the same 12 products.
    let ring_users: Vec<u32> = (10_000..10_012).collect();
    let ring_items: Vec<u32> = (20_000..20_012).collect();
    let mut ring_edges = Vec::new();
    for &u in &ring_users {
        for &i in &ring_items {
            ring_edges.push(Edge::new(u, i));
        }
    }

    // Assemble the stream: background, then the ring appears, more background,
    // then the platform deletes the ring (fraud cleanup).
    let mut stream: GraphStream = Vec::new();
    stream.extend(
        background[..40_000]
            .iter()
            .map(|&e| StreamElement::insert(e)),
    );
    stream.extend(ring_edges.iter().map(|&e| StreamElement::insert(e)));
    stream.extend(
        background[40_000..]
            .iter()
            .map(|&e| StreamElement::insert(e)),
    );
    stream.extend(ring_edges.iter().map(|&e| StreamElement::delete(e)));

    let window = 4_000usize;
    println!(
        "monitoring {} elements in windows of {window}",
        stream.len()
    );
    println!(
        "{:<10} {:>16} {:>14}  verdict",
        "window", "estimate", "increase"
    );

    let mut abacus = Abacus::new(AbacusConfig::new(4_000).with_seed(5));
    let mut detector = BurstDetector::new(8.0);
    let mut alarms = Vec::new();

    for (window_index, chunk) in stream.chunks(window).enumerate() {
        abacus.process_stream(chunk);
        let estimate = abacus.estimate();
        match detector.observe(estimate) {
            Some(increase) => {
                alarms.push(window_index);
                println!("{window_index:<10} {estimate:>16.0} {increase:>14.0}  *** ANOMALY ***");
            }
            None => println!("{:<10} {:>16.0} {:>14}  ok", window_index, estimate, "-"),
        }
    }

    println!();
    println!("windows flagged as anomalous: {alarms:?}");
    println!(
        "the ring insertion lands in window {} and its deletion in window {}",
        40_000 / window,
        (40_000 + ring_edges.len() + 20_000) / window
    );
    println!("an insert-only counter would keep the inflated count after the cleanup,");
    println!("permanently skewing every later anomaly decision.");
}
