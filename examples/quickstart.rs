//! Quickstart: estimate the butterfly count of a fully dynamic bipartite
//! graph stream and compare against the exact count.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use abacus::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build a workload: a synthetic user-item graph with 20% of the edges
    //    later deleted (the paper's default fully dynamic setting).
    let edges = abacus::stream::generators::chung_lu_bipartite(
        abacus::stream::generators::ChungLuConfig {
            left_vertices: 2_000,
            right_vertices: 400,
            edges: 30_000,
            left_exponent: 2.2,
            right_exponent: 2.3,
        },
        &mut StdRng::seed_from_u64(7),
    );
    let stream = inject_deletions_fast(
        &edges,
        DeletionConfig::new(0.20),
        &mut StdRng::seed_from_u64(8),
    );
    println!(
        "stream: {} elements ({} insertions)",
        stream.len(),
        edges.len()
    );

    // 2. Ground truth: exact butterfly count of the final graph.
    let truth = count_butterflies(&final_graph(&stream)) as f64;
    println!("exact butterfly count after the stream: {truth:.0}");

    // 3. ABACUS with a bounded sample of 2 000 edges.
    let mut abacus = Abacus::new(AbacusConfig::new(2_000).with_seed(1));
    abacus.process_stream(&stream);
    println!(
        "ABACUS estimate (k = 2000):               {:>12.0}   relative error {:.2}%",
        abacus.estimate(),
        relative_error_percent(truth, abacus.estimate())
    );

    // 4. PARABACUS: same counts, processed in parallel mini-batches.
    let mut parabacus = ParAbacus::new(
        ParAbacusConfig::new(2_000)
            .with_seed(1)
            .with_batch_size(500),
    );
    parabacus.process_stream(&stream);
    println!(
        "PARABACUS estimate (M = 500, {} threads):  {:>12.0}   relative error {:.2}%",
        parabacus.config().threads,
        parabacus.estimate(),
        relative_error_percent(truth, parabacus.estimate())
    );

    // 5. What an insert-only baseline reports when it ignores the deletions.
    let mut fleet = Fleet::new(FleetConfig::new(2_000).with_seed(1));
    fleet.process_stream(&stream);
    println!(
        "FLEET estimate (ignores deletions):        {:>12.0}   relative error {:.2}%",
        fleet.estimate(),
        relative_error_percent(truth, fleet.estimate())
    );
}
