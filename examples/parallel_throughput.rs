//! PARABACUS in action: throughput and speedup on a multi-core machine.
//!
//! Processes the same fully dynamic stream with sequential ABACUS and with
//! PARABACUS at increasing thread counts, printing throughput, speedup, and
//! the per-thread workload balance — a miniature version of the paper's
//! Figures 8–10.
//!
//! ```bash
//! cargo run --release --example parallel_throughput
//! ```

use abacus::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = Dataset::TrackersLike;
    let stream = dataset.stream(0.20, 0);
    let budget = 3_000;
    let batch_size = 10_000;
    println!(
        "dataset {} — {} elements, memory budget {budget} edges, mini-batch {batch_size}",
        dataset.name(),
        stream.len()
    );

    // Sequential baseline.
    let start = Instant::now();
    let mut abacus = Abacus::new(AbacusConfig::new(budget).with_seed(3));
    abacus.process_stream(&stream);
    let sequential_secs = start.elapsed().as_secs_f64();
    println!(
        "\nABACUS (sequential):  {:8.2} K edges/s   estimate {:.3e}",
        stream.len() as f64 / sequential_secs / 1_000.0,
        abacus.estimate()
    );

    let max_threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut sweep: Vec<usize> = [1, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    if !sweep.contains(&max_threads) {
        sweep.push(max_threads);
    }

    println!(
        "\n{:<10} {:>14} {:>10} {:>12}",
        "threads", "K edges/s", "speedup", "estimate"
    );
    let mut last: Option<ParAbacus> = None;
    for &threads in &sweep {
        let start = Instant::now();
        let mut parabacus = ParAbacus::new(
            ParAbacusConfig::new(budget)
                .with_seed(3)
                .with_batch_size(batch_size)
                .with_threads(threads),
        );
        parabacus.process_stream(&stream);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>14.2} {:>10.2} {:>12.3e}",
            threads,
            stream.len() as f64 / secs / 1_000.0,
            sequential_secs / secs,
            parabacus.estimate()
        );
        last = Some(parabacus);
    }

    if let Some(parabacus) = last {
        let workloads = parabacus.thread_workloads();
        let total: u64 = workloads.iter().sum();
        let mean = total as f64 / workloads.len() as f64;
        println!(
            "\nper-thread workload at {} threads (set-intersection checks):",
            workloads.len()
        );
        for (thread, &w) in workloads.iter().enumerate() {
            println!(
                "  thread {:>2}: {:>12}  ({:.2}x mean)",
                thread + 1,
                w,
                w as f64 / mean
            );
        }
        println!(
            "\nPARABACUS matches sequential ABACUS estimates exactly (Theorem 5): {}",
            (parabacus.estimate() - abacus.estimate()).abs()
                < 1e-6 * abacus.estimate().abs().max(1.0)
        );
    }
}
