//! Butterfly-based co-engagement analysis for recommendation.
//!
//! Butterflies are the bipartite analogue of triangles: a butterfly between
//! users `u, w` and items `v, x` means the two users co-adopted the same two
//! items — the basic signal behind neighborhood-based collaborative
//! filtering.  This example builds a Movielens-like user-item graph, computes
//! per-user butterfly participation (exact, via `abacus-graph`), derives the
//! butterfly clustering signal, and shows how a bounded-memory ABACUS sample
//! tracks the same aggregate while the catalogue churns (items get delisted,
//! i.e. their edges are deleted).
//!
//! ```bash
//! cargo run --release --example recommendation
//! ```

use abacus::graph::exact::count_butterflies_per_side_vertex;
use abacus::graph::Side;
use abacus::prelude::*;

fn main() {
    // 1. Build the user-item graph from the Movielens-like analog.
    let edges = Dataset::MovielensLike.edges();
    let graph = BipartiteGraph::from_edges(edges.iter().copied());
    let stats = GraphStatistics::compute(&graph);
    println!("user-item graph: {stats}");

    // 2. Exact per-user butterfly participation: users that share many
    //    2-item co-adoptions with someone else are the best anchors for
    //    "users like you also watched" recommendations.
    let per_user = count_butterflies_per_side_vertex(&graph, Side::Left);
    let mut ranked: Vec<(u32, u64)> = per_user.into_iter().collect();
    ranked.sort_by_key(|&(user, butterflies)| (std::cmp::Reverse(butterflies), user));
    println!("\ntop 10 users by butterfly participation (co-engagement strength):");
    println!("{:<10} {:>14} {:>10}", "user", "butterflies", "degree");
    for &(user, butterflies) in ranked.iter().take(10) {
        println!(
            "{:<10} {:>14} {:>10}",
            user,
            butterflies,
            graph.degree(abacus::graph::VertexRef::left(user))
        );
    }

    // 3. Catalogue churn: the 20 most popular items are delisted (all their
    //    edges deleted).  Track the global co-engagement signal with ABACUS.
    let mut popular_items: Vec<(u32, usize)> = graph
        .vertices(Side::Right)
        .map(|item| (item, graph.degree(abacus::graph::VertexRef::right(item))))
        .collect();
    popular_items.sort_by_key(|&(item, degree)| (std::cmp::Reverse(degree), item));
    let delisted: Vec<u32> = popular_items
        .iter()
        .take(20)
        .map(|&(item, _)| item)
        .collect();

    let mut stream: GraphStream = edges.iter().copied().map(StreamElement::insert).collect();
    for &item in &delisted {
        if let Some(neighbors) = graph.neighbors(abacus::graph::VertexRef::right(item)) {
            for user in neighbors {
                stream.push(StreamElement::delete(Edge::new(user, item)));
            }
        }
    }

    let truth_after = count_butterflies(&final_graph(&stream)) as f64;
    let mut abacus = Abacus::new(AbacusConfig::new(3_000).with_seed(11));
    abacus.process_stream(&stream);

    println!("\ncatalogue churn: delisting the 20 most popular items");
    println!("butterflies before churn (exact): {}", stats.butterflies);
    println!("butterflies after churn  (exact): {truth_after:.0}");
    println!(
        "ABACUS estimate after churn (k=3000): {:.0}  (relative error {:.2}%)",
        abacus.estimate(),
        relative_error_percent(truth_after, abacus.estimate())
    );
    println!(
        "\nco-engagement collapsed by {:.1}% — a recommender relying on stale,",
        100.0 * (1.0 - truth_after / stats.butterflies as f64)
    );
    println!("insert-only counts would keep recommending items that no longer exist.");
}
