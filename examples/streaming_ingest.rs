//! Bounded-memory ingestion: estimate butterflies over an on-disk stream
//! without ever materializing it.
//!
//! The example writes a fully dynamic workload to disk in both stream
//! formats (text and compact `ABST1` binary), then feeds ABACUS through the
//! pull-based `ElementSource` pipeline — ingest memory stays O(budget +
//! chunk) no matter how large the file is, and the estimates are
//! bit-identical to the materialized driver's.
//!
//! ```bash
//! cargo run --release --example streaming_ingest
//! ```

use abacus::prelude::*;
use abacus::stream::binary::write_binary_stream_to_path;
use abacus::stream::io::write_stream_to_path;
use abacus::stream::{open_path_source, DeletionInjector, IterSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build a workload without materializing an edge list: a generator
    //    iterator piped through the on-the-fly deletion injector.
    let edges = abacus::stream::generators::chung_lu_bipartite(
        abacus::stream::generators::ChungLuConfig {
            left_vertices: 3_000,
            right_vertices: 600,
            edges: 50_000,
            left_exponent: 2.2,
            right_exponent: 2.3,
        },
        &mut StdRng::seed_from_u64(11),
    );
    let insertions = edges.len();
    let mut injected = DeletionInjector::new(
        IterSource::new(edges.into_iter().map(StreamElement::insert)),
        DeletionConfig::new(0.2),
        insertions,
        StdRng::seed_from_u64(12),
    );
    let stream = read_all(&mut injected).expect("in-memory sources never fail");
    println!("workload: {} elements (20% deletions)", stream.len());

    // 2. Spill it to disk in both formats.
    let dir = std::env::temp_dir().join(format!("abacus_streaming_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let text = dir.join("stream.txt");
    let binary = dir.join("stream.abst");
    write_stream_to_path(&stream, &text).expect("write text");
    write_binary_stream_to_path(&stream, &binary).expect("write binary");
    let size = |p: &std::path::Path| std::fs::metadata(p).map_or(0, |m| m.len());
    println!(
        "on disk: {} bytes text, {} bytes binary ({:.1}x smaller)",
        size(&text),
        size(&binary),
        size(&text) as f64 / size(&binary) as f64
    );

    // 3. Materialized reference: the whole stream in memory.
    let mut reference = Abacus::new(AbacusConfig::new(2_000).with_seed(5));
    reference.process_stream(&stream);

    // 4. Streamed ingestion from each file: pull-based, O(budget + chunk)
    //    ingest memory, bit-identical estimates.
    for path in [&text, &binary] {
        let mut counter = Abacus::new(AbacusConfig::new(2_000).with_seed(5));
        let mut source = open_path_source(path).expect("open stream file");
        let elements = counter
            .process_source(&mut *source)
            .expect("stream from disk");
        assert_eq!(
            counter.estimate().to_bits(),
            reference.estimate().to_bits(),
            "streamed and materialized drivers must agree bit-for-bit"
        );
        println!(
            "streamed {:>10} | {} elements | estimate {:>12.0} | sample {} edges",
            path.extension().and_then(|e| e.to_str()).unwrap_or("?"),
            elements,
            counter.estimate(),
            counter.memory_edges(),
        );
    }
    println!(
        "materialized     | {} elements | estimate {:>12.0} (identical)",
        stream.len(),
        reference.estimate()
    );

    std::fs::remove_dir_all(&dir).ok();
}
