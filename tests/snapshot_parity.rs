//! Cross-crate parity suite for the frozen CSR counting snapshot: counting
//! against the snapshot must be *numerically invisible* — estimates
//! bit-identical at one thread (and within float-summation tolerance
//! otherwise), the Random Pairing sampler state identical, and the
//! probe-model `comparisons` counters identical — across randomized
//! insert/delete streams, budgets, batch sizes, and pipeline depths 1–4.

use abacus::prelude::*;
use abacus_core::SnapshotMode;
use abacus_stream::generators::random::uniform_bipartite;
use abacus_stream::{inject_deletions_fast, DeletionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dynamic_stream(seed: u64, edges: usize, alpha: f64) -> Vec<StreamElement> {
    let base = uniform_bipartite(60, 60, edges, &mut StdRng::seed_from_u64(seed));
    inject_deletions_fast(
        &base,
        DeletionConfig::new(alpha),
        &mut StdRng::seed_from_u64(seed ^ 0xBEEF),
    )
}

#[test]
fn abacus_snapshot_ablation_is_bit_identical() {
    let stream = dynamic_stream(5, 2_500, 0.2);
    for budget in [32usize, 300, 5_000] {
        let base = AbacusConfig::new(budget).with_seed(11);
        let mut on = Abacus::new(base.with_snapshot(SnapshotMode::On));
        let mut off = Abacus::new(base.with_snapshot(SnapshotMode::Off));
        for element in &stream {
            on.process(*element);
            off.process(*element);
        }
        assert_eq!(
            on.estimate().to_bits(),
            off.estimate().to_bits(),
            "budget {budget}"
        );
        assert_eq!(on.sampler_state(), off.sampler_state(), "budget {budget}");
        assert_eq!(
            on.stats().comparisons,
            off.stats().comparisons,
            "budget {budget}"
        );
        assert_eq!(
            on.stats().discovered_butterflies,
            off.stats().discovered_butterflies,
            "budget {budget}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PARABACUS with the snapshot forced on matches (1) itself with the
    /// snapshot off and (2) sequential hash-path ABACUS, across randomized
    /// streams, pipeline depths 1–4, batch sizes, and thread counts —
    /// sampler state and comparisons exactly, estimates bit-identically at
    /// one thread and to 1e-9 otherwise (chunk results are reduced in
    /// completion order).
    #[test]
    fn parabacus_snapshot_ablation_matches_hash_path(
        seed in 0u64..500,
        budget in 16usize..400,
        batch in 1usize..300,
        threads in 1usize..6,
        depth in 1usize..5,
        alpha in 0.0f64..0.35,
    ) {
        let stream = dynamic_stream(seed, 700, alpha);
        let base = ParAbacusConfig::new(budget)
            .with_seed(seed)
            .with_batch_size(batch)
            .with_threads(threads)
            .with_pipeline_depth(depth);
        let mut on = ParAbacus::new(base.with_snapshot(SnapshotMode::On));
        let mut off = ParAbacus::new(base.with_snapshot(SnapshotMode::Off));
        on.process_stream(&stream);
        off.process_stream(&stream);
        if threads == 1 {
            prop_assert_eq!(on.estimate().to_bits(), off.estimate().to_bits());
        } else {
            let scale = off.estimate().abs().max(1.0);
            prop_assert!((on.estimate() - off.estimate()).abs() <= 1e-9 * scale);
        }
        prop_assert_eq!(on.sampler_state(), off.sampler_state());
        prop_assert_eq!(on.stats().comparisons, off.stats().comparisons);
        prop_assert_eq!(on.sample().len(), off.sample().len());

        let mut seq = Abacus::new(
            AbacusConfig::new(budget)
                .with_seed(seed)
                .with_snapshot(SnapshotMode::Off),
        );
        seq.process_stream(&stream);
        let scale = seq.estimate().abs().max(1.0);
        prop_assert!((on.estimate() - seq.estimate()).abs() <= 1e-9 * scale);
        prop_assert_eq!(seq.sampler_state(), on.sampler_state());
        prop_assert_eq!(seq.stats().comparisons, on.stats().comparisons);
    }

    /// The default `Auto` mode — including its runtime enable/disable
    /// decisions mid-stream — never changes any reported number relative to
    /// the forced hash path.
    #[test]
    fn auto_mode_is_numerically_invisible(
        seed in 0u64..500,
        budget in 256usize..600, // eligible for Auto
        batch in 1usize..4_000,  // spans Auto's minimum-batch gate
        depth in 1usize..5,
    ) {
        let stream = dynamic_stream(seed, 900, 0.2);
        let base = ParAbacusConfig::new(budget)
            .with_seed(seed)
            .with_batch_size(batch)
            .with_threads(1)
            .with_pipeline_depth(depth);
        let mut auto = ParAbacus::new(base.with_snapshot(SnapshotMode::Auto));
        let mut off = ParAbacus::new(base.with_snapshot(SnapshotMode::Off));
        auto.process_stream(&stream);
        off.process_stream(&stream);
        prop_assert_eq!(auto.estimate().to_bits(), off.estimate().to_bits());
        prop_assert_eq!(auto.sampler_state(), off.sampler_state());
        prop_assert_eq!(auto.stats().comparisons, off.stats().comparisons);
    }
}

/// The snapshot stays in lock-step with the sample through heavy churn
/// (mid-stream flushes force partial batches of every size).
#[test]
fn snapshot_stays_locked_to_the_sample_across_flushes() {
    let stream = dynamic_stream(77, 3_000, 0.3);
    let mut par = ParAbacus::new(
        ParAbacusConfig::new(64)
            .with_seed(3)
            .with_batch_size(97)
            .with_threads(2)
            .with_pipeline_depth(3)
            .with_snapshot(SnapshotMode::On),
    );
    for (i, element) in stream.iter().enumerate() {
        par.process(*element);
        if i % 501 == 0 {
            par.flush();
            if let Some(snapshot) = par.snapshot() {
                assert_eq!(snapshot.num_edges(), par.sample().len(), "element {i}");
            }
        }
    }
    par.flush();
    let snapshot = par.snapshot().expect("snapshot forced on");
    assert_eq!(snapshot.num_edges(), par.sample().len());
}
