//! Cross-crate integration test: PARABACUS is count-identical to ABACUS
//! (Theorem 5) on realistic dataset-analog workloads.

use abacus::prelude::*;

fn prefix_stream(n: usize) -> GraphStream {
    Dataset::MovielensLike
        .stream(0.2, 0)
        .into_iter()
        .take(n)
        .collect()
}

#[test]
fn parabacus_matches_abacus_on_a_dataset_analog() {
    let stream = prefix_stream(30_000);
    let budget = 1_500;

    let mut abacus = Abacus::new(AbacusConfig::new(budget).with_seed(17));
    abacus.process_stream(&stream);

    for (batch_size, threads) in [(500usize, 8usize), (997, 3), (10_000, 16)] {
        let mut parabacus = ParAbacus::new(
            ParAbacusConfig::new(budget)
                .with_seed(17)
                .with_batch_size(batch_size)
                .with_threads(threads),
        );
        parabacus.process_stream(&stream);

        let scale = abacus.estimate().abs().max(1.0);
        assert!(
            (abacus.estimate() - parabacus.estimate()).abs() <= 1e-9 * scale,
            "batch {batch_size}, threads {threads}: {} vs {}",
            abacus.estimate(),
            parabacus.estimate()
        );
        // Sampled state is identical; `memory_edges` itself may differ by
        // the counting-side auxiliaries (CSR snapshot arenas, sorted-copy
        // caches) each estimator maintains.
        assert_eq!(abacus.sample().len(), parabacus.sample().len());
        assert_eq!(
            abacus.sampler_state(),
            parabacus.sampler_state(),
            "Random Pairing state must be identical"
        );
    }
}

#[test]
fn parabacus_partial_batches_flush_on_stream_end() {
    // A stream whose length is not a multiple of the batch size must still be
    // fully counted by process_stream.
    let stream = prefix_stream(1_234);
    let mut abacus = Abacus::new(AbacusConfig::new(500).with_seed(3));
    abacus.process_stream(&stream);
    let mut parabacus = ParAbacus::new(
        ParAbacusConfig::new(500)
            .with_seed(3)
            .with_batch_size(1_000)
            .with_threads(4),
    );
    parabacus.process_stream(&stream);
    assert_eq!(parabacus.pending_elements(), 0);
    let scale = abacus.estimate().abs().max(1.0);
    assert!((abacus.estimate() - parabacus.estimate()).abs() <= 1e-9 * scale);
}
