//! Empirical validation of the paper's theory section (§IV):
//!
//! * Theorem 1 (unbiasedness): the mean ABACUS estimate over many independent
//!   runs converges to the true butterfly count,
//! * Theorem 2 (variance bound): the empirical variance stays below the
//!   closed-form upper bound,
//! * Corollary 1 (concentration): the Chebyshev tail bound holds empirically.

use abacus::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of independent estimator runs.
const RUNS: u64 = 400;

/// `C(n, r)` as f64 via a stable product formulation.
fn choose(n: u64, r: u64) -> f64 {
    if r > n {
        return 0.0;
    }
    let r = r.min(n - r);
    let mut result = 1.0f64;
    for i in 0..r {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// The paper's variance upper bound (Theorem 2):
/// `Var[c] <= γ·E[c] + 2γ²·C(E[c],2)·C(|E|−6,k−6)/C(|E|,k) − E[c]²`
/// with `γ = C(|E|,k)/C(|E|−4,k−4)`.
fn variance_upper_bound(truth: f64, edges: u64, k: u64) -> f64 {
    let gamma = choose(edges, k) / choose(edges - 4, k - 4);
    let pair_prob = choose(edges - 6, k - 6) / choose(edges, k);
    gamma * truth + 2.0 * gamma * gamma * (truth * (truth - 1.0) / 2.0) * pair_prob - truth * truth
}

fn insert_only_workload() -> (GraphStream, f64) {
    let edges =
        abacus::stream::generators::uniform_bipartite(40, 40, 500, &mut StdRng::seed_from_u64(5));
    let stream: GraphStream = edges.into_iter().map(StreamElement::insert).collect();
    let truth = count_butterflies(&final_graph(&stream)) as f64;
    (stream, truth)
}

fn dynamic_workload() -> (GraphStream, f64) {
    let edges =
        abacus::stream::generators::uniform_bipartite(40, 40, 700, &mut StdRng::seed_from_u64(6));
    let stream = inject_deletions_fast(
        &edges,
        DeletionConfig::new(0.25),
        &mut StdRng::seed_from_u64(7),
    );
    let truth = count_butterflies(&final_graph(&stream)) as f64;
    (stream, truth)
}

fn collect_estimates(stream: &GraphStream, budget: usize) -> Vec<f64> {
    (0..RUNS)
        .map(|seed| {
            let mut estimator = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
            estimator.process_stream(stream);
            estimator.estimate()
        })
        .collect()
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

fn variance(values: &[f64]) -> f64 {
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

#[test]
fn estimates_are_unbiased_on_fully_dynamic_streams() {
    let (stream, truth) = dynamic_workload();
    assert!(truth > 10.0, "workload needs butterflies, got {truth}");
    let estimates = collect_estimates(&stream, 120);
    let sample_mean = mean(&estimates);
    let standard_error = (variance(&estimates) / estimates.len() as f64).sqrt();
    // The true count must lie within 4 standard errors of the empirical mean.
    assert!(
        (sample_mean - truth).abs() < 4.0 * standard_error + 1e-9,
        "mean {sample_mean}, truth {truth}, se {standard_error}"
    );
}

#[test]
fn empirical_variance_respects_the_theorem_2_bound() {
    let (stream, truth) = insert_only_workload();
    let edges = stream.len() as u64; // insert-only: |E| is the stream length
    let k = 60u64;
    let estimates = collect_estimates(&stream, k as usize);
    // Unbiasedness on the insert-only stream as well.
    let sample_mean = mean(&estimates);
    let standard_error = (variance(&estimates) / estimates.len() as f64).sqrt();
    assert!(
        (sample_mean - truth).abs() < 4.0 * standard_error + 1e-9,
        "mean {sample_mean}, truth {truth}, se {standard_error}"
    );
    // Variance bound with slack for Monte-Carlo noise of the sample variance.
    let bound = variance_upper_bound(truth, edges, k);
    assert!(bound > 0.0, "bound must be positive, got {bound}");
    let empirical = variance(&estimates);
    assert!(
        empirical <= 1.5 * bound,
        "empirical variance {empirical} exceeds bound {bound}"
    );
}

#[test]
fn chebyshev_concentration_holds() {
    let (stream, truth) = insert_only_workload();
    let estimates = collect_estimates(&stream, 80);
    let std_dev = variance(&estimates).sqrt();
    for lambda in [2.0f64, 3.0, 4.0] {
        let outside = estimates
            .iter()
            .filter(|&&c| (c - truth).abs() >= lambda * std_dev)
            .count() as f64
            / estimates.len() as f64;
        // Corollary 1: Pr[|c − E[c]| ≥ λσ] ≤ 1/λ², with Monte-Carlo slack.
        assert!(
            outside <= 1.0 / (lambda * lambda) + 0.05,
            "λ={lambda}: tail fraction {outside}"
        );
    }
}
