//! Cross-crate integration test: every incremental delta-circuit view is
//! bit-exact with its offline recomputation on randomized fully dynamic
//! streams — including deletion-heavy workloads — and view state is
//! invariant to the hosting estimator's chunk size, thread count, and
//! pipeline depth.

use abacus::prelude::*;
use abacus_core::circuit::{AnomalyView, BitrussView, ClusteringView, PerEdgeView, PerVertexView};
use abacus_graph::{
    bitruss_decomposition, butterfly_clustering_coefficient, BitrussState, ClusteringState,
    EdgeSupports, VertexButterflyCounts,
};
use abacus_stream::SliceSource;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A randomized *valid* fully dynamic stream: inserts draw fresh random
/// edges from a small dense universe (so butterflies actually form), and
/// with probability `delete_prob` each step instead deletes a uniformly
/// random live edge.  `delete_prob` near 1 makes the workload deletion-heavy
/// (the stream then hovers near an empty graph, exercising the zero and
/// re-insert paths of every view).
fn random_stream(
    seed: u64,
    elements: usize,
    lefts: u32,
    rights: u32,
    delete_prob: f64,
) -> GraphStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<Edge> = Vec::new();
    let mut stream = Vec::with_capacity(elements);
    while stream.len() < elements {
        if !live.is_empty() && rng.random_bool(delete_prob) {
            let slot = rng.random_range(0..live.len());
            let edge = live.swap_remove(slot);
            stream.push(StreamElement::delete(edge));
        } else {
            let edge = Edge::new(rng.random_range(0..lefts), rng.random_range(0..rights));
            if live.contains(&edge) {
                continue; // duplicates are invalid stream input
            }
            live.push(edge);
            stream.push(StreamElement::insert(edge));
        }
    }
    stream
}

fn circuit_with_all_views<C: ButterflyCounter + 'static>(estimator: C) -> Circuit<C> {
    let mut circuit = Circuit::new(estimator);
    for kind in ViewKind::ALL {
        assert!(circuit.subscribe_view(kind.build()).is_ok());
    }
    circuit
}

/// Asserts every graph-derived view of `circuit` equals its offline
/// recomputation on the circuit's current graph, bit for bit.
fn assert_views_match_recompute<C: ButterflyCounter>(circuit: &Circuit<C>, context: &str) {
    let graph = circuit.graph();
    let supports = circuit.view_state::<PerEdgeView>().unwrap().supports();
    assert_eq!(
        *supports,
        EdgeSupports::recompute(graph),
        "peredge diverged {context}"
    );
    let counts = circuit.view_state::<PerVertexView>().unwrap().counts();
    assert_eq!(
        *counts,
        VertexButterflyCounts::recompute(graph),
        "vertex diverged {context}"
    );
    let clustering = circuit.view_state::<ClusteringView>().unwrap().state();
    assert_eq!(
        *clustering,
        ClusteringState::recompute(graph),
        "clustering totals diverged {context}"
    );
    assert_eq!(
        clustering.coefficient().to_bits(),
        butterfly_clustering_coefficient(graph).to_bits(),
        "clustering coefficient diverged {context}"
    );
    let bitruss = circuit.view_state::<BitrussView>().unwrap().state();
    assert_eq!(
        bitruss.decomposition(graph),
        bitruss_decomposition(graph),
        "bitruss diverged {context}"
    );
    assert_eq!(
        *bitruss.supports(),
        EdgeSupports::recompute(graph),
        "bitruss supports diverged {context}"
    );
    let _ = BitrussState::recompute(graph); // recompute path itself stays callable
}

#[test]
fn views_match_offline_recompute_at_every_checkpoint() {
    // Moderate deletion mix on a dense universe: mid-stream checkpoints catch
    // order-dependent bugs a final-state check would miss.
    let stream = random_stream(7, 1_500, 24, 24, 0.3);
    let mut circuit = circuit_with_all_views(ExactCounter::new());
    for (i, &element) in stream.iter().enumerate() {
        circuit.process(element);
        if (i + 1) % 250 == 0 {
            assert_views_match_recompute(&circuit, &format!("after element {}", i + 1));
        }
    }
    circuit.finish();
    assert_views_match_recompute(&circuit, "at stream end");
    // The exact estimator (view #0) agrees with the maintained per-vertex sum.
    let counts = circuit.view_state::<PerVertexView>().unwrap().counts();
    assert_eq!(circuit.estimate(), counts.butterflies() as f64);
}

#[test]
fn views_survive_deletion_heavy_streams() {
    // α near 1: nearly every other element deletes, repeatedly draining the
    // graph.  Exercises support-zero edges, vertex counts dropping out of the
    // maps, and empty-graph clustering (0/0 → 0.0 by convention).
    for (seed, delete_prob) in [(11u64, 0.9), (13, 0.95)] {
        let stream = random_stream(seed, 1_200, 12, 12, delete_prob);
        let deletions = stream.iter().filter(|e| e.delta.is_delete()).count();
        assert!(
            deletions * 10 >= stream.len() * 4,
            "workload not deletion-heavy enough: {deletions}/{}",
            stream.len()
        );
        let mut circuit = circuit_with_all_views(ExactCounter::new());
        for (i, &element) in stream.iter().enumerate() {
            circuit.process(element);
            if (i + 1) % 300 == 0 {
                assert_views_match_recompute(
                    &circuit,
                    &format!("seed {seed} p {delete_prob} after element {}", i + 1),
                );
            }
        }
        assert_views_match_recompute(&circuit, &format!("seed {seed} p {delete_prob} end"));
    }
}

#[test]
fn views_match_on_a_dataset_analog() {
    // The paper-shaped workload: a Movielens-like analog with α-injected
    // deletions, hosted by sequential ABACUS (approximate estimator, exact
    // views — the estimate and the views are independent circuits outputs).
    let stream: GraphStream = Dataset::MovielensLike
        .stream(0.4, 1)
        .into_iter()
        .take(8_000)
        .collect();
    let mut circuit = circuit_with_all_views(Abacus::new(AbacusConfig::new(1_000).with_seed(5)));
    circuit.process_stream(&stream);
    assert_views_match_recompute(&circuit, "movielens analog");
    assert!(circuit.estimate().is_finite());
}

/// Collects every graph-derived view's state into comparable owned values.
fn graph_fingerprint<C: ButterflyCounter>(
    circuit: &Circuit<C>,
) -> (
    EdgeSupports,
    VertexButterflyCounts,
    ClusteringState,
    EdgeSupports,
) {
    (
        circuit
            .view_state::<PerEdgeView>()
            .unwrap()
            .supports()
            .clone(),
        circuit
            .view_state::<PerVertexView>()
            .unwrap()
            .counts()
            .clone(),
        *circuit.view_state::<ClusteringView>().unwrap().state(),
        circuit
            .view_state::<BitrussView>()
            .unwrap()
            .state()
            .supports()
            .clone(),
    )
}

fn anomaly_snapshots<C: ButterflyCounter>(
    circuit: &Circuit<C>,
) -> Vec<abacus_metrics::WindowSnapshot> {
    circuit
        .view_state::<AnomalyView>()
        .unwrap()
        .series()
        .snapshots()
        .to_vec()
}

#[test]
fn parabacus_hosted_views_are_chunk_thread_and_depth_invariant() {
    let stream = random_stream(23, 4_000, 32, 32, 0.35);
    let budget = 800;
    let batch = 500;

    let run = |threads: usize, depth: usize, chunk: usize| {
        let estimator = ParAbacus::new(
            ParAbacusConfig::new(budget)
                .with_seed(41)
                .with_batch_size(batch)
                .with_threads(threads)
                .with_pipeline_depth(depth),
        );
        let mut circuit = circuit_with_all_views(estimator);
        let mut source = SliceSource::new(&stream);
        circuit.process_source_chunked(&mut source, chunk).unwrap();
        // `finish` drains the pipeline, so the final estimate is depth-
        // independent (mid-stream estimates lag by up to `depth - 1`
        // uncollected mini-batches — see the anomaly comparison below).
        let estimate = circuit.finish();
        (
            estimate,
            graph_fingerprint(&circuit),
            anomaly_snapshots(&circuit),
        )
    };

    let (baseline_estimate, baseline_graph, baseline_anomaly) = run(1, 1, 1);
    assert!(
        !baseline_anomaly.is_empty(),
        "anomaly view must have snapshots"
    );
    // Graph-derived views and the drained final estimate are invariant to
    // *every* hosting knob: chunk size, thread count, and pipeline depth.
    // The anomaly series records the estimator's *running* estimate per
    // element, which deliberately lags deeper pipelines, so its snapshots
    // are only required to be chunk- and thread-invariant at fixed
    // *effective* depth (a single-threaded host counts inline, collapsing
    // any configured depth to 1); each depth group below must agree
    // internally, and effective-depth-1 configs must match the baseline.
    let mut anomaly_by_depth: Vec<(usize, Vec<abacus_metrics::WindowSnapshot>)> =
        vec![(1, baseline_anomaly)];
    for (threads, depth, chunk) in [
        (1, 1, 7),
        (4, 1, 4_096),
        (1, 3, 64),
        (2, 3, 997),
        (3, 3, 64),
        (8, 2, 64),
        (4, 2, 911),
    ] {
        let (estimate, graph, anomaly) = run(threads, depth, chunk);
        assert_eq!(
            graph, baseline_graph,
            "graph views diverged at threads {threads}, depth {depth}, chunk {chunk}"
        );
        let scale = baseline_estimate.abs().max(1.0);
        assert!(
            (estimate - baseline_estimate).abs() <= 1e-9 * scale,
            "estimate diverged at threads {threads}, depth {depth}, chunk {chunk}"
        );
        let effective_depth = if threads == 1 { 1 } else { depth };
        match anomaly_by_depth.iter().find(|(d, _)| *d == effective_depth) {
            Some((_, expected)) => assert_eq!(
                &anomaly, expected,
                "anomaly series diverged at threads {threads}, depth {depth}, chunk {chunk}"
            ),
            None => anomaly_by_depth.push((effective_depth, anomaly)),
        }
    }
    assert_eq!(
        anomaly_by_depth.len(),
        3,
        "expected depth groups 1, 2, and 3"
    );
    // And the PARABACUS-hosted views match offline recomputation too.
    let estimator = ParAbacus::new(
        ParAbacusConfig::new(budget)
            .with_seed(41)
            .with_batch_size(batch)
            .with_threads(4),
    );
    let mut circuit = circuit_with_all_views(estimator);
    circuit.process_stream(&stream);
    assert_views_match_recompute(&circuit, "parabacus-hosted");
}

#[test]
fn anomaly_view_is_bit_identical_to_the_windowed_monitor() {
    let stream = random_stream(31, 3_000, 20, 20, 0.25);
    let window = 128;

    let mut circuit = Circuit::new(Abacus::new(AbacusConfig::new(500).with_seed(3)))
        .with_view(Box::new(AnomalyView::new(window)));
    circuit.process_stream(&stream);

    let mut monitor =
        WindowedMonitor::new(Abacus::new(AbacusConfig::new(500).with_seed(3)), window);
    monitor.process_stream(&stream);
    monitor.snapshot_now(); // the circuit's finish() forces the trailing partial window

    let series = circuit.view_state::<AnomalyView>().unwrap().series();
    assert_eq!(series.snapshots(), monitor.snapshots());
    assert_eq!(
        series.anomalous_windows(),
        monitor.anomalous_windows(),
        "burst detection must agree too"
    );
}
