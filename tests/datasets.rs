//! Integration checks of the dataset analogs and the stream substrate.

use abacus::prelude::*;
use abacus::stream::{validate_stream, StreamStats};

#[test]
fn all_dataset_streams_are_well_formed() {
    for dataset in Dataset::all() {
        let spec = dataset.spec();
        let stream = dataset.stream(0.2, 0);
        validate_stream(&stream).expect("dataset stream must be valid");
        let stats = StreamStats::compute(&stream);
        assert_eq!(stats.insertions, spec.edges, "{dataset}");
        assert_eq!(
            stats.deletions,
            (spec.edges as f64 * 0.2).round() as usize,
            "{dataset}"
        );
        // The final graph matches the bookkeeping.
        let graph = final_graph(&stream);
        assert_eq!(graph.num_edges(), stats.final_edges, "{dataset}");
        assert!(graph.num_left_vertices() as u32 <= spec.left_vertices);
        assert!(graph.num_right_vertices() as u32 <= spec.right_vertices);
    }
}

#[test]
fn stream_io_round_trips_a_dataset_prefix() {
    let stream: GraphStream = Dataset::OrkutLike
        .stream(0.1, 0)
        .into_iter()
        .take(5_000)
        .collect();
    let mut buffer = Vec::new();
    abacus::stream::io::write_stream(&stream, &mut buffer).unwrap();
    let parsed = abacus::stream::io::read_stream(std::io::BufReader::new(&buffer[..])).unwrap();
    assert_eq!(parsed, stream);
}

/// Expensive (exact counting over all four analogs); run explicitly with
/// `cargo test -- --ignored` or rely on the `table2` bench which reports the
/// same numbers from a release build.
#[test]
#[ignore = "exact counting over all four analogs is slow in debug builds"]
fn butterfly_density_ordering_follows_table_ii() {
    let density = |dataset: Dataset| {
        let graph = final_graph(
            &dataset
                .edges()
                .into_iter()
                .map(StreamElement::insert)
                .collect::<Vec<_>>(),
        );
        let stats = GraphStatistics::compute(&graph);
        stats.butterfly_density
    };
    let movielens = density(Dataset::MovielensLike);
    let livejournal = density(Dataset::LivejournalLike);
    let trackers = density(Dataset::TrackersLike);
    let orkut = density(Dataset::OrkutLike);
    assert!(movielens > livejournal, "{movielens} vs {livejournal}");
    assert!(movielens > trackers);
    assert!(livejournal > orkut, "{livejournal} vs {orkut}");
    assert!(trackers > orkut, "{trackers} vs {orkut}");
}
