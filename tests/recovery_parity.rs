//! Kill-point recovery parity: a checkpointed run that is killed at an
//! arbitrary element index and resumed must be **bit-identical** to the same
//! run never interrupted — final estimate (`f64::to_bits`), `memory_edges`,
//! and the full serialized estimator state (which embeds sampler slots, RNG
//! words, and the probe-model `comparisons` counters) all compared exactly.
//!
//! The suite covers ABACUS, PARABACUS at pipeline depths 1–4 (killed
//! mid-batch), the FLEET/CAS/EXACT/LOCAL registry kinds, replicate and
//! partition ensembles at K ∈ {1, 4} (killed mid-chunk, with per-replica
//! seed-derivation stability), and a five-view delta circuit whose restored
//! views must bit-match offline recomputation on the restored graph replica.
//!
//! A corruption matrix then drives every fail-closed path end to end:
//! truncated or bit-flipped snapshots fall back to the previous snapshot and
//! still converge to the uninterrupted fingerprint; a torn final WAL record
//! is dropped and re-offered; corruption of *every* snapshot, a flipped bit
//! in a sealed WAL segment, or a missing segment yield a typed
//! [`PersistError`] — never a panic, never a silently wrong estimate.

use abacus::prelude::*;
use abacus_core::circuit::{AnomalyView, BitrussView, ClusteringView, PerEdgeView, PerVertexView};
use abacus_core::{Checkpointer, Recovery, RunManifest};
use abacus_graph::persist::PersistError;
use abacus_graph::{
    bitruss_decomposition, butterfly_clustering_coefficient, ClusteringState, EdgeSupports,
    VertexButterflyCounts,
};
use abacus_stream::generators::random::uniform_bipartite;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

type BoxedCircuit = Circuit<Box<dyn ButterflyCounter + Send>>;

fn dynamic_stream(seed: u64, edges: usize, alpha: f64) -> Vec<StreamElement> {
    let base = uniform_bipartite(60, 60, edges, &mut StdRng::seed_from_u64(seed));
    inject_deletions_fast(
        &base,
        DeletionConfig::new(alpha),
        &mut StdRng::seed_from_u64(seed ^ 0xBEEF),
    )
}

/// A fresh, empty checkpoint directory under the system temp dir.
fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("abacus-recovery-parity")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything recovery must reproduce exactly.  The serialized state embeds
/// the sampler slot order, Random Pairing counters, RNG words, and work/
/// comparison statistics, so byte equality here is the strongest check the
/// estimators expose.
#[derive(PartialEq, Eq)]
struct Fingerprint {
    estimate_bits: u64,
    memory_edges: usize,
    state: Vec<u8>,
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fingerprint")
            .field("estimate", &f64::from_bits(self.estimate_bits))
            .field("memory_edges", &self.memory_edges)
            .field("state_len", &self.state.len())
            .finish()
    }
}

fn fingerprint(checkpointer: &mut Checkpointer) -> Fingerprint {
    let estimate_bits = checkpointer.estimator().estimate().to_bits();
    let memory_edges = checkpointer.estimator().memory_edges();
    let state = checkpointer.estimator_mut().save_state().unwrap();
    Fingerprint {
        estimate_bits,
        memory_edges,
        state,
    }
}

/// Drives `manifest` over the whole stream with durability and returns the
/// final fingerprint.  The reference runs through the checkpointer too:
/// checkpoints flush PARABACUS mini-batches, so bit-identity is defined at
/// matching checkpoint cadences.
fn run_uninterrupted(manifest: RunManifest, stream: &[StreamElement], tag: &str) -> Fingerprint {
    let dir = test_dir(tag);
    let mut checkpointer = Checkpointer::create(&dir, manifest).unwrap();
    for &element in stream {
        checkpointer.offer(element).unwrap();
    }
    checkpointer.finish().unwrap();
    let print = fingerprint(&mut checkpointer);
    std::fs::remove_dir_all(&dir).ok();
    print
}

/// Runs `manifest` up to `kill_at` elements, then abandons the checkpointer
/// mid-flight (dropping it without sealing — the in-process equivalent of
/// `kill -9`, since every WAL append is written through before processing).
/// Returns the directory for [`Checkpointer::resume`].
fn run_killed(
    manifest: RunManifest,
    stream: &[StreamElement],
    kill_at: usize,
    tag: &str,
) -> PathBuf {
    let dir = test_dir(tag);
    let mut checkpointer = Checkpointer::create(&dir, manifest).unwrap();
    for &element in &stream[..kill_at] {
        checkpointer.offer(element).unwrap();
    }
    drop(checkpointer);
    dir
}

/// Resumes `dir`, feeds the remainder of the stream, finishes, and returns
/// the final fingerprint plus the recovery details.
fn resume_and_finish(dir: &Path, stream: &[StreamElement]) -> (Fingerprint, Recovery) {
    let mut recovery = Checkpointer::resume(dir).unwrap();
    let covered = recovery.checkpointer.elements() as usize;
    for &element in &stream[covered..] {
        recovery.checkpointer.offer(element).unwrap();
    }
    recovery.checkpointer.finish().unwrap();
    let print = fingerprint(&mut recovery.checkpointer);
    (print, recovery)
}

/// The core assertion: killed-at-`kill_at` + resumed ≡ uninterrupted.
fn assert_kill_point_parity(
    manifest: RunManifest,
    stream: &[StreamElement],
    kill_at: usize,
    tag: &str,
) {
    let reference = run_uninterrupted(manifest.clone(), stream, &format!("{tag}-ref"));
    let dir = run_killed(manifest, stream, kill_at, &format!("{tag}-kill"));
    let (resumed, recovery) = resume_and_finish(&dir, stream);
    assert_eq!(reference, resumed, "{tag}: kill at {kill_at}");
    assert!(
        recovery.snapshot_elements as usize <= kill_at,
        "{tag}: snapshot {} beyond kill point {kill_at}",
        recovery.snapshot_elements,
    );
    assert_eq!(
        recovery.snapshot_elements + recovery.replayed,
        kill_at as u64,
        "{tag}: WAL replay must reach exactly the kill point",
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn spec(kind: EstimatorKind) -> EstimatorSpec {
    EstimatorSpec::new(kind, 256).with_seed(9)
}

#[test]
fn abacus_kill_points_resume_bit_identically() {
    let stream = dynamic_stream(3, 1_500, 0.25);
    // Kill points straddle checkpoint boundaries: at a checkpoint, one past
    // it, deep between two, and before the first.
    for kill_at in [0, 1, 255, 256, 257, 700, 1_023, stream.len() - 1] {
        assert_kill_point_parity(
            RunManifest::new(spec(EstimatorKind::Abacus), 256),
            &stream,
            kill_at,
            &format!("abacus-{kill_at}"),
        );
    }
}

#[test]
fn parabacus_mid_batch_kill_points_across_depths() {
    let stream = dynamic_stream(5, 1_200, 0.2);
    for depth in 1..=4usize {
        for threads in [1usize, 2] {
            let spec = EstimatorSpec::new(EstimatorKind::ParAbacus, 256)
                .with_seed(17)
                .with_batch_size(128)
                .with_threads(threads)
                .with_pipeline_depth(depth);
            // 300 is mid-batch (batch 128, checkpoint 256): the kill lands
            // with a partially filled buffer and open pipeline batches.
            assert_kill_point_parity(
                RunManifest::new(spec, 256),
                &stream,
                300,
                &format!("parabacus-d{depth}-t{threads}"),
            );
        }
    }
}

#[test]
fn every_registry_kind_resumes_bit_identically() {
    let stream = dynamic_stream(7, 1_000, 0.2);
    for kind in [
        EstimatorKind::Local,
        EstimatorKind::Fleet,
        EstimatorKind::Cas,
        EstimatorKind::Exact,
    ] {
        assert_kill_point_parity(
            RunManifest::new(spec(kind), 200),
            &stream,
            473,
            &format!("kind-{kind:?}"),
        );
    }
}

#[test]
fn ensembles_restore_each_replica_seed_stably() {
    let stream = dynamic_stream(11, 1_200, 0.2);
    for k in [1usize, 4] {
        for mode in [EnsembleMode::Replicate, EnsembleMode::Partition] {
            let manifest = RunManifest::new(spec(EstimatorKind::Abacus).with_threads(2), 256)
                .with_ensemble(k, mode);
            let tag = format!("ensemble-{k}-{mode:?}");

            // Reference replica fingerprints from the uninterrupted run.
            let ref_dir = test_dir(&format!("{tag}-ref"));
            let mut reference = Checkpointer::create(&ref_dir, manifest.clone()).unwrap();
            for &element in &stream {
                reference.offer(element).unwrap();
            }
            reference.finish().unwrap();
            let reference_print = fingerprint(&mut reference);
            let replica_bits = |checkpointer: &Checkpointer| -> Vec<(u64, usize)> {
                let ensemble = checkpointer
                    .estimator()
                    .as_any()
                    .and_then(|any| any.downcast_ref::<Ensemble>())
                    .expect("checkpointed estimator should be an ensemble");
                (0..ensemble.replicas())
                    .map(|i| {
                        let replica = ensemble.replica(i);
                        (replica.estimate().to_bits(), replica.memory_edges())
                    })
                    .collect()
            };
            let reference_replicas = replica_bits(&reference);
            std::fs::remove_dir_all(&ref_dir).ok();

            // Kill mid-chunk (517 is off every cadence and chunk boundary),
            // resume, finish; replica i must equal replica i of the
            // reference — the per-replica derived seeds survive the round
            // trip through the manifest and snapshot.
            let dir = run_killed(manifest, &stream, 517, &format!("{tag}-kill"));
            let (resumed_print, recovery) = resume_and_finish(&dir, &stream);
            assert_eq!(reference_print, resumed_print, "{tag}");
            assert_eq!(
                reference_replicas,
                replica_bits(&recovery.checkpointer),
                "{tag}: per-replica parity",
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Asserts every graph-derived view of `circuit` equals its offline
/// recomputation on the circuit's current graph replica, bit for bit.
fn assert_views_match_recompute(circuit: &BoxedCircuit, context: &str) {
    let graph = circuit.graph();
    assert_eq!(
        *circuit.view_state::<PerEdgeView>().unwrap().supports(),
        EdgeSupports::recompute(graph),
        "peredge diverged {context}"
    );
    assert_eq!(
        *circuit.view_state::<PerVertexView>().unwrap().counts(),
        VertexButterflyCounts::recompute(graph),
        "vertex diverged {context}"
    );
    let clustering = circuit.view_state::<ClusteringView>().unwrap().state();
    assert_eq!(
        *clustering,
        ClusteringState::recompute(graph),
        "clustering diverged {context}"
    );
    assert_eq!(
        clustering.coefficient().to_bits(),
        butterfly_clustering_coefficient(graph).to_bits(),
        "clustering coefficient diverged {context}"
    );
    let bitruss = circuit.view_state::<BitrussView>().unwrap().state();
    assert_eq!(
        bitruss.decomposition(graph),
        bitruss_decomposition(graph),
        "bitruss diverged {context}"
    );
    assert!(
        circuit.view_state::<AnomalyView>().is_some(),
        "anomaly view missing {context}"
    );
}

#[test]
fn five_view_circuit_resumes_with_views_rebuilt_from_the_restored_graph() {
    let stream = dynamic_stream(13, 1_000, 0.2);
    let manifest = RunManifest::new(spec(EstimatorKind::Abacus), 200).with_views(&ViewKind::ALL);
    let reference = run_uninterrupted(manifest.clone(), &stream, "circuit-ref");

    let dir = run_killed(manifest, &stream, 531, "circuit-kill");
    let recovery = Checkpointer::resume(&dir).unwrap();
    let mut checkpointer = recovery.checkpointer;

    // Satellite check: immediately after restore — before any new element —
    // the resubscribed views must already bit-match offline recomputation on
    // the restored graph replica (they are rebuilt from it, not replayed).
    let circuit = checkpointer
        .estimator()
        .as_any()
        .and_then(|any| any.downcast_ref::<BoxedCircuit>())
        .expect("checkpointed estimator should be a circuit");
    assert_eq!(circuit.views().len(), ViewKind::ALL.len());
    assert_eq!(circuit.elements(), checkpointer.elements());
    assert_views_match_recompute(circuit, "right after restore");

    let covered = checkpointer.elements() as usize;
    for &element in &stream[covered..] {
        checkpointer.offer(element).unwrap();
    }
    checkpointer.finish().unwrap();
    let resumed = fingerprint(&mut checkpointer);
    assert_eq!(reference, resumed, "circuit final state");
    let circuit = checkpointer
        .estimator()
        .as_any()
        .and_then(|any| any.downcast_ref::<BoxedCircuit>())
        .unwrap();
    assert_views_match_recompute(circuit, "at stream end");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Corruption matrix: every case must fall back cleanly or fail with a typed
// error — never panic, never resume from silently wrong state.
// ---------------------------------------------------------------------------

/// Builds a killed checkpoint directory with ≥ 2 retained snapshots and an
/// unsealed WAL tail, plus the stream and the uninterrupted fingerprint.
fn killed_fixture(tag: &str) -> (PathBuf, Vec<StreamElement>, Fingerprint) {
    let stream = dynamic_stream(19, 1_000, 0.2);
    let manifest = RunManifest::new(spec(EstimatorKind::Abacus), 256);
    let reference = run_uninterrupted(manifest.clone(), &stream, &format!("{tag}-ref"));
    let dir = run_killed(manifest, &stream, 700, &format!("{tag}-kill"));
    (dir, stream, reference)
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "absnap"))
        .collect();
    snaps.sort();
    snaps
}

fn wal_files(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "abwl"))
        .collect();
    segments.sort();
    segments
}

fn truncate_file(path: &Path, drop_bytes: u64) {
    let len = std::fs::metadata(path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len.saturating_sub(drop_bytes)).unwrap();
}

fn flip_byte(path: &Path, offset_from_end: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    let index = bytes.len() - 1 - offset_from_end;
    bytes[index] ^= 0x40;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn corrupt_newest_snapshot_falls_back_and_still_converges() {
    // Four ways to break the newest snapshot; each must fall back to the
    // previous snapshot and still reach the uninterrupted fingerprint,
    // because the WAL retains everything past the older snapshot.
    type Corruption = fn(&Path);
    let cases: [(&str, Corruption); 4] = [
        ("truncated", |p| truncate_file(p, 7)),
        ("bad-magic", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            bytes[0] = b'X';
            std::fs::write(p, bytes).unwrap();
        }),
        ("bad-version", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            bytes[7] = 9; // the version byte right after the 7-byte magic
            std::fs::write(p, bytes).unwrap();
        }),
        ("bit-flip", |p| flip_byte(p, 40)),
    ];
    for (name, corrupt) in cases {
        let (dir, stream, reference) = killed_fixture(&format!("fallback-{name}"));
        let newest = snapshot_files(&dir).pop().unwrap();
        corrupt(&newest);
        let (resumed, recovery) = resume_and_finish(&dir, &stream);
        assert!(recovery.fell_back, "{name}: must report the fallback");
        assert_eq!(reference, resumed, "{name}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupting_every_snapshot_is_a_typed_error_not_a_panic() {
    let (dir, _, _) = killed_fixture("all-snapshots");
    for snapshot in snapshot_files(&dir) {
        flip_byte(&snapshot, 20);
    }
    match Checkpointer::resume(&dir) {
        Err(PersistError::Corrupt(_) | PersistError::Truncated(_)) => {}
        other => panic!("expected a typed corruption error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_wal_record_is_dropped_and_reoffered() {
    let (dir, stream, reference) = killed_fixture("torn-tail");
    // Tear the unsealed tail segment mid-record: recovery must drop exactly
    // the torn record, and re-offering it from the stream reconverges.
    let tail = wal_files(&dir).pop().unwrap();
    truncate_file(&tail, 1);
    let recovery = Checkpointer::resume(&dir).unwrap();
    assert!(recovery.dropped_torn_tail, "torn tail must be reported");
    assert_eq!(recovery.snapshot_elements + recovery.replayed, 699);
    let mut checkpointer = recovery.checkpointer;
    for &element in &stream[checkpointer.elements() as usize..] {
        checkpointer.offer(element).unwrap();
    }
    checkpointer.finish().unwrap();
    assert_eq!(reference, fingerprint(&mut checkpointer));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_in_a_sealed_wal_segment_fails_closed() {
    let (dir, _, _) = killed_fixture("sealed-flip");
    // The first segment is sealed (the run checkpointed at 256 and 512);
    // flip a byte in the middle of its records, past the header.
    let sealed = wal_files(&dir).into_iter().next().unwrap();
    flip_byte(&sealed, 60);
    match Checkpointer::resume(&dir) {
        Err(_) => {} // typed PersistError by signature; the flip may land in
        // a payload (CRC mismatch → Corrupt) or a length varint (structural
        // Corrupt/Truncated) — any of these fails closed.
        Ok(_) => panic!("a sealed-segment bit flip must not resume"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_wal_segment_is_a_gap_error() {
    // Force the fallback snapshot into play (corrupt the newest), then
    // delete the segment that covers the fallback's replay range: the log
    // now starts *after* the snapshot position, which must be detected as a
    // gap, not silently skipped.
    let (dir, _, _) = killed_fixture("gap");
    let newest = snapshot_files(&dir).pop().unwrap();
    flip_byte(&newest, 40);
    let segments = wal_files(&dir);
    assert!(segments.len() >= 2, "fixture should have rotated segments");
    std::fs::remove_file(&segments[0]).unwrap();
    match Checkpointer::resume(&dir) {
        Err(PersistError::Gap { .. }) => {}
        other => panic!("expected Gap for a missing WAL segment, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary kill indices: sequential ABACUS and pipelined PARABACUS
    /// resume bit-identically from *any* interruption point.
    #[test]
    fn arbitrary_kill_points_resume_bit_identically(
        kill_at in 0usize..1_100,
        seed in 0u64..4,
        parallel in 0u8..2,
    ) {
        let parallel = parallel == 1;
        let stream = dynamic_stream(23 + seed, 900, 0.25);
        let kill_at = kill_at % stream.len();
        let spec = if parallel {
            EstimatorSpec::new(EstimatorKind::ParAbacus, 200)
                .with_seed(seed)
                .with_batch_size(64)
                .with_threads(2)
                .with_pipeline_depth(2)
        } else {
            EstimatorSpec::new(EstimatorKind::Abacus, 200).with_seed(seed)
        };
        assert_kill_point_parity(
            RunManifest::new(spec, 128),
            &stream,
            kill_at,
            &format!("prop-{parallel}-{seed}-{kill_at}"),
        );
    }
}
