//! Theorem 2 (variance bound), checked by Monte-Carlo simulation.
//!
//! The paper's variance analysis models the estimate as `c = γ · |B_S|`, where
//! `S` is a uniform random `k`-subset of the live edges and `|B_S|` the number
//! of butterflies entirely inside `S`.  These tests draw many such subsets,
//! verify the estimator's unbiasedness under that model, and check that the
//! empirical variance respects the closed-form upper bound exposed as
//! [`abacus::core::variance_upper_bound`] — including the 2×3-biclique case the
//! paper singles out as tight.

use abacus::core::variance_upper_bound;
use abacus::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// γ = C(|E|, k) / C(|E|−4, k−4).
fn gamma(edges: usize, k: usize) -> f64 {
    (0..4)
        .map(|i| (edges as f64 - i as f64) / (k as f64 - i as f64))
        .product()
}

/// Draws `trials` uniform k-subsets of `edges` and returns the per-trial
/// scaled estimates `γ · |B_S|`.
fn subset_estimates(edges: &[Edge], k: usize, trials: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = gamma(edges.len(), k);
    let mut pool: Vec<Edge> = edges.to_vec();
    (0..trials)
        .map(|_| {
            pool.shuffle(&mut rng);
            let sample = BipartiteGraph::from_edges(pool[..k].iter().copied());
            scale * count_butterflies(&sample) as f64
        })
        .collect()
}

fn mean_and_variance(values: &[f64]) -> (f64, f64) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let variance =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, variance)
}

/// A small random bipartite graph with a healthy number of butterflies.
fn test_graph(seed: u64, edges: usize) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(seed);
    abacus::stream::generators::random::uniform_bipartite(12, 12, edges, &mut rng)
}

#[test]
fn subset_estimator_is_unbiased() {
    let edges = test_graph(7, 60);
    let truth = count_butterflies(&BipartiteGraph::from_edges(edges.iter().copied())) as f64;
    assert!(truth > 0.0, "test graph must contain butterflies");

    for k in [12usize, 20, 30] {
        let estimates = subset_estimates(&edges, k, 4_000, 100 + k as u64);
        let (mean, _) = mean_and_variance(&estimates);
        let bias = (mean - truth).abs() / truth;
        assert!(
            bias < 0.08,
            "k={k}: mean {mean} deviates from truth {truth} by {bias:.3}"
        );
    }
}

#[test]
fn empirical_variance_respects_the_theorem_2_bound() {
    let edges = test_graph(11, 60);
    let truth = count_butterflies(&BipartiteGraph::from_edges(edges.iter().copied())) as f64;
    assert!(truth > 0.0);

    for k in [12usize, 20, 30] {
        let estimates = subset_estimates(&edges, k, 4_000, 500 + k as u64);
        let (_, variance) = mean_and_variance(&estimates);
        let bound = variance_upper_bound(k, edges.len(), truth);
        // 15% slack for Monte-Carlo noise on 4 000 trials.
        assert!(
            variance <= bound * 1.15,
            "k={k}: empirical variance {variance:.1} exceeds bound {bound:.1}"
        );
    }
}

#[test]
fn the_bound_is_tight_on_the_2x3_biclique() {
    // The paper notes the bound holds with equality on the complete 2,3
    // bipartite graph.  Empirically the variance must come close to it.
    let mut edges = Vec::new();
    for l in 0..2u32 {
        for r in 0..3u32 {
            edges.push(Edge::new(l, r));
        }
    }
    let truth = count_butterflies(&BipartiteGraph::from_edges(edges.iter().copied())) as f64;
    assert_eq!(truth, 3.0);

    let k = 4usize;
    let estimates = subset_estimates(&edges, k, 40_000, 99);
    let (mean, variance) = mean_and_variance(&estimates);
    assert!((mean - truth).abs() / truth < 0.05, "mean {mean}");

    let bound = variance_upper_bound(k, edges.len(), truth);
    assert!(
        variance <= bound * 1.10,
        "variance {variance} vs bound {bound}"
    );
    assert!(
        variance >= bound * 0.75,
        "bound {bound} should be near-tight here, got variance {variance}"
    );
}

#[test]
fn streaming_abacus_variance_shrinks_with_the_sample_size() {
    // For the streaming estimator itself the paper's quantitative bound is
    // derived under the static-subset model, so here we only assert the
    // qualitative claim of Theorem 2 / Corollary 1: a larger memory budget
    // concentrates the estimates.
    let mut rng = StdRng::seed_from_u64(23);
    let edges = abacus::stream::generators::random::uniform_bipartite(25, 25, 400, &mut rng);
    let stream: Vec<StreamElement> = edges.iter().copied().map(StreamElement::insert).collect();
    let truth = count_butterflies(&final_graph(&stream)) as f64;
    assert!(truth > 0.0);

    let spread = |budget: usize| -> f64 {
        let estimates: Vec<f64> = (0..120u64)
            .map(|seed| {
                let mut abacus = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
                abacus.process_stream(&stream);
                abacus.estimate()
            })
            .collect();
        mean_and_variance(&estimates).1
    };
    let small = spread(60);
    let large = spread(240);
    assert!(
        large < small,
        "variance did not shrink with the budget: k=60 -> {small}, k=240 -> {large}"
    );
}
