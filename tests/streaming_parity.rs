//! Streamed-vs-materialized driver parity: `process_source` over on-disk
//! text and binary files, at pull-chunk sizes 1, 7, and the PARABACUS batch
//! size, must be **bit-identical** to `process_stream` over the materialized
//! workload — estimates (`f64::to_bits`), `memory_edges`, sampler state, and
//! probe-model `comparisons` — for every estimator in the workspace.
//!
//! This is the contract that makes bounded-memory ingestion free: chunking
//! affects staging granularity only, never which elements reach `process`
//! in which order, and the single `finish` at the end of the source matches
//! the flush `process_stream` performs.

use abacus::prelude::*;
use abacus::stream::binary::write_binary_stream_to_path;
use abacus::stream::generators::random::uniform_bipartite;
use abacus::stream::io::write_stream_to_path;
use abacus::stream::{open_path_source, SliceSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A fully dynamic workload: 3 000 insertions with 25% deletions injected.
fn workload() -> GraphStream {
    let base = uniform_bipartite(200, 200, 3_000, &mut StdRng::seed_from_u64(77));
    inject_deletions_fast(
        &base,
        DeletionConfig::new(0.25),
        &mut StdRng::seed_from_u64(78),
    )
}

/// Writes the workload once per format and returns (text path, binary path).
fn workload_files(stream: &[StreamElement]) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("abacus_streaming_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text = dir.join("stream.txt");
    let binary = dir.join("stream.abst");
    write_stream_to_path(stream, &text).unwrap();
    write_binary_stream_to_path(stream, &binary).unwrap();
    (text, binary)
}

/// Everything a driver run exposes that must be reproducible bit-for-bit.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    estimate_bits: u64,
    memory_edges: usize,
    detail: String,
}

/// Runs one estimator through every driver (materialized slice, text file,
/// binary file × chunk sizes) and asserts all fingerprints are identical.
fn assert_driver_parity<C: ButterflyCounter>(
    label: &str,
    make: impl Fn() -> C,
    fingerprint: impl Fn(&C) -> Fingerprint,
    stream: &[StreamElement],
    text: &PathBuf,
    binary: &PathBuf,
    chunks: &[usize],
) {
    let baseline = {
        let mut counter = make();
        counter.process_stream(stream);
        fingerprint(&counter)
    };

    // The slice driver at every chunk size.
    for &chunk in chunks {
        let mut counter = make();
        let total = counter
            .process_source_chunked(&mut SliceSource::new(stream), chunk)
            .unwrap();
        assert_eq!(total, stream.len() as u64, "{label}: slice chunk {chunk}");
        assert_eq!(
            fingerprint(&counter),
            baseline,
            "{label}: slice driver diverged at chunk {chunk}"
        );
    }

    // The on-disk drivers: text and binary, every chunk size plus the
    // estimator-preferred default.
    for (format, path) in [("text", text), ("binary", binary)] {
        for chunk in chunks.iter().copied().map(Some).chain([None]) {
            let mut counter = make();
            let mut source = open_path_source(path).unwrap();
            let total = match chunk {
                Some(chunk) => counter.process_source_chunked(&mut *source, chunk),
                None => counter.process_source(&mut *source),
            }
            .unwrap();
            assert_eq!(total, stream.len() as u64, "{label}: {format} {chunk:?}");
            assert_eq!(
                fingerprint(&counter),
                baseline,
                "{label}: {format} driver diverged at chunk {chunk:?}"
            );
        }
    }
}

#[test]
fn abacus_streamed_ingestion_is_bit_identical() {
    let stream = workload();
    let (text, binary) = workload_files(&stream);
    assert_driver_parity(
        "ABACUS",
        || Abacus::new(AbacusConfig::new(256).with_seed(9)),
        |counter| Fingerprint {
            estimate_bits: counter.estimate().to_bits(),
            memory_edges: counter.memory_edges(),
            detail: format!("{:?} {:?}", counter.sampler_state(), counter.stats()),
        },
        &stream,
        &text,
        &binary,
        &[1, 7, 128],
    );
}

#[test]
fn parabacus_streamed_ingestion_is_bit_identical_across_depths() {
    let stream = workload();
    let (text, binary) = workload_files(&stream);
    for depth in 1..=4usize {
        // Threads 2 exercises the worker pool: the coordinator reduces chunk
        // results in chunk order, so even multi-threaded runs stay
        // bit-reproducible.
        for threads in [1usize, 2] {
            assert_driver_parity(
                &format!("PARABACUS depth {depth} threads {threads}"),
                || {
                    ParAbacus::new(
                        ParAbacusConfig::new(256)
                            .with_seed(9)
                            .with_batch_size(128)
                            .with_threads(threads)
                            .with_pipeline_depth(depth),
                    )
                },
                |counter| Fingerprint {
                    estimate_bits: counter.estimate().to_bits(),
                    memory_edges: counter.memory_edges(),
                    detail: format!(
                        "{:?} {:?} batches {}",
                        counter.sampler_state(),
                        counter.stats(),
                        counter.batches_processed()
                    ),
                },
                &stream,
                &text,
                &binary,
                // 1 and 7 cut mini-batches at awkward staging boundaries; 128
                // stages exactly one batch per pull.
                &[1, 7, 128],
            );
        }
    }
}

#[test]
fn fleet_streamed_ingestion_is_bit_identical() {
    let stream = workload();
    let (text, binary) = workload_files(&stream);
    assert_driver_parity(
        "FLEET",
        || Fleet::new(FleetConfig::new(256).with_seed(3)),
        |counter| Fingerprint {
            estimate_bits: counter.estimate().to_bits(),
            memory_edges: counter.memory_edges(),
            detail: format!(
                "p {} resizes {} ignored {} {:?}",
                counter.probability(),
                counter.resizes(),
                counter.ignored_deletions(),
                counter.stats()
            ),
        },
        &stream,
        &text,
        &binary,
        &[1, 7, 128],
    );
}

#[test]
fn cas_streamed_ingestion_is_bit_identical() {
    let stream = workload();
    let (text, binary) = workload_files(&stream);
    assert_driver_parity(
        "CAS",
        || Cas::new(CasConfig::new(256).with_seed(3)),
        |counter| Fingerprint {
            estimate_bits: counter.estimate().to_bits(),
            memory_edges: counter.memory_edges(),
            detail: format!(
                "wedges {} ignored {} {:?}",
                counter.estimated_wedges(),
                counter.ignored_deletions(),
                counter.stats()
            ),
        },
        &stream,
        &text,
        &binary,
        &[1, 7, 128],
    );
}

#[test]
fn exact_oracle_streamed_ingestion_is_bit_identical() {
    let stream = workload();
    let (text, binary) = workload_files(&stream);
    assert_driver_parity(
        "EXACT",
        ExactCounter::new,
        |counter| Fingerprint {
            estimate_bits: counter.estimate().to_bits(),
            memory_edges: counter.memory_edges(),
            detail: String::new(),
        },
        &stream,
        &text,
        &binary,
        &[1, 7, 128],
    );
}

/// The round trip that anchors all of the above: both file formats decode to
/// exactly the stream that was written.
#[test]
fn on_disk_formats_round_trip_the_workload() {
    let stream = workload();
    let (text, binary) = workload_files(&stream);
    for path in [&text, &binary] {
        let mut source = open_path_source(path).unwrap();
        let decoded = read_all(&mut source).unwrap();
        assert_eq!(decoded, stream, "{}", path.display());
    }
}
