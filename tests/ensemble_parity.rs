//! Ensemble exactness discipline, in two halves:
//!
//! 1. **K = 1 replicate ≡ the bare estimator** — for every estimator kind
//!    the registry can build, a one-replica replicate ensemble driven over
//!    the same stream is **bit-identical** to the bare estimator built from
//!    the same spec: estimates compared via `f64::to_bits`, `memory_edges`,
//!    and each kind's full internal fingerprint (sampler state, work
//!    counters, probe-model `comparisons`, FLEET's admission probability,
//!    CAS's wedge sketch, ...), recovered through the `as_any`
//!    introspection hook.
//! 2. **Thread-count invariance** — replicate- and partition-mode results
//!    are bit-reproducible across fan-out thread counts (1 vs 2 and beyond)
//!    and across the materialized / pull-based source drivers: each replica
//!    is owned by one worker per chunk and merged in replica order, so
//!    scheduling can never leak into the estimate.

use abacus::prelude::*;
use abacus::stream::generators::random::uniform_bipartite;
use abacus::stream::SliceSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully dynamic workload: 3 000 insertions with 25% deletions injected.
fn workload() -> GraphStream {
    let base = uniform_bipartite(200, 200, 3_000, &mut StdRng::seed_from_u64(21));
    inject_deletions_fast(
        &base,
        DeletionConfig::new(0.25),
        &mut StdRng::seed_from_u64(22),
    )
}

/// The spec the parity suite exercises per kind: sub-covering budget so the
/// samplers actually sample, PARABACUS with a real worker pool.
fn spec_for(kind: EstimatorKind) -> EstimatorSpec {
    EstimatorSpec::new(kind, 256)
        .with_seed(9)
        .with_batch_size(128)
        .with_threads(2)
        .with_pipeline_depth(2)
}

/// Everything a run exposes that must match bit-for-bit.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    estimate_bits: u64,
    memory_edges: usize,
    detail: String,
}

/// The kind-specific internal state, recovered through `as_any`.  Any new
/// estimator kind must be added here or the parity test fails loudly.
fn detail(counter: &dyn ButterflyCounter) -> String {
    let any = counter
        .as_any()
        .unwrap_or_else(|| panic!("{} exposes no as_any introspection", counter.name()));
    if let Some(abacus) = any.downcast_ref::<Abacus>() {
        format!(
            "{:?} {:?} sample {}",
            abacus.sampler_state(),
            abacus.stats(),
            abacus.sample().len()
        )
    } else if let Some(parabacus) = any.downcast_ref::<ParAbacus>() {
        format!(
            "{:?} {:?} batches {}",
            parabacus.sampler_state(),
            parabacus.stats(),
            parabacus.batches_processed()
        )
    } else if let Some(local) = any.downcast_ref::<LocalAbacus>() {
        let mut locals: Vec<(String, u64)> = local
            .local_estimates()
            .iter()
            .map(|(v, e)| (format!("{v:?}"), e.to_bits()))
            .collect();
        locals.sort();
        format!("{:?} {:?} {locals:?}", local.sampler_state(), local.stats())
    } else if let Some(fleet) = any.downcast_ref::<Fleet>() {
        format!(
            "p {} resizes {} ignored {} {:?}",
            fleet.probability(),
            fleet.resizes(),
            fleet.ignored_deletions(),
            fleet.stats()
        )
    } else if let Some(cas) = any.downcast_ref::<Cas>() {
        format!(
            "wedges {} ignored {} {:?}",
            cas.estimated_wedges(),
            cas.ignored_deletions(),
            cas.stats()
        )
    } else if let Some(exact) = any.downcast_ref::<ExactCounter>() {
        format!("count {} {:?}", exact.exact_count(), exact.stats())
    } else {
        panic!("unknown estimator kind {}", counter.name());
    }
}

fn fingerprint(counter: &dyn ButterflyCounter) -> Fingerprint {
    Fingerprint {
        estimate_bits: counter.estimate().to_bits(),
        memory_edges: counter.memory_edges(),
        detail: detail(counter),
    }
}

#[test]
fn k1_replicate_is_bit_identical_to_the_bare_estimator_for_every_kind() {
    let stream = workload();
    for kind in EstimatorKind::ALL {
        let spec = spec_for(kind);

        let mut bare = spec.build();
        bare.process_stream(&stream);
        let expected = fingerprint(&*bare);

        let mut ensemble = Ensemble::new(spec, 1, EnsembleMode::Replicate).unwrap();
        ensemble.process_stream(&stream);
        assert_eq!(
            ensemble.estimate().to_bits(),
            expected.estimate_bits,
            "{kind}: K=1 replicate estimate diverged from the bare estimator"
        );
        assert_eq!(ensemble.memory_edges(), expected.memory_edges, "{kind}");
        assert_eq!(
            fingerprint(ensemble.replica(0)),
            expected,
            "{kind}: replica 0 internal state diverged"
        );

        // Partition mode with one shard routes everything to replica 0, so
        // it degenerates to the bare estimator too.
        let mut sharded = Ensemble::new(spec, 1, EnsembleMode::Partition).unwrap();
        sharded.process_stream(&stream);
        assert_eq!(
            fingerprint(sharded.replica(0)),
            expected,
            "{kind} partition K=1"
        );
        assert_eq!(sharded.estimate().to_bits(), expected.estimate_bits);
    }
}

#[test]
fn replicate_estimates_are_invariant_across_fan_out_thread_counts() {
    let stream = workload();
    for kind in EstimatorKind::ALL {
        let spec = spec_for(kind);
        let run = |threads: usize, chunk: usize| {
            let mut ensemble = Ensemble::new(spec, 3, EnsembleMode::Replicate)
                .unwrap()
                .with_fan_out_threads(threads);
            ensemble
                .process_source_chunked(&mut SliceSource::new(&stream), chunk)
                .unwrap();
            let replicas: Vec<Fingerprint> =
                (0..3).map(|i| fingerprint(ensemble.replica(i))).collect();
            (ensemble.estimate().to_bits(), replicas)
        };
        let reference = run(1, 128);
        for threads in [2usize, 3] {
            for chunk in [128usize, 1_000] {
                assert_eq!(
                    run(threads, chunk),
                    reference,
                    "{kind}: replicate diverged at threads {threads}, chunk {chunk}"
                );
            }
        }
        // The inline single-element driver agrees with the chunked one.
        let mut inline = Ensemble::new(spec, 3, EnsembleMode::Replicate).unwrap();
        inline.process_stream(&stream);
        assert_eq!(
            inline.estimate().to_bits(),
            reference.0,
            "{kind} inline driver"
        );
    }
}

#[test]
fn partition_estimates_are_invariant_across_fan_out_thread_counts() {
    let stream = workload();
    let spec = spec_for(EstimatorKind::Abacus);
    let run = |threads: usize, chunk: usize| {
        let mut ensemble = Ensemble::new(spec, 4, EnsembleMode::Partition)
            .unwrap()
            .with_fan_out_threads(threads);
        ensemble
            .process_source_chunked(&mut SliceSource::new(&stream), chunk)
            .unwrap();
        let replicas: Vec<Fingerprint> = (0..4).map(|i| fingerprint(ensemble.replica(i))).collect();
        (ensemble.estimate().to_bits(), replicas)
    };
    let reference = run(1, 128);
    for threads in [2usize, 4, 8] {
        for chunk in [64usize, 512] {
            assert_eq!(
                run(threads, chunk),
                reference,
                "partition diverged at threads {threads}, chunk {chunk}"
            );
        }
    }
}

#[test]
fn replicas_are_seed_independent_and_averaging_tightens_the_spread() {
    let stream = workload();
    // With a sub-covering budget, distinct derived seeds must give distinct
    // replica trajectories...
    let mut ensemble = Ensemble::new(
        EstimatorSpec::abacus(256).with_seed(5),
        6,
        EnsembleMode::Replicate,
    )
    .unwrap();
    ensemble.process_stream(&stream);
    let estimates = ensemble.replica_estimates();
    let distinct: std::collections::HashSet<u64> = estimates.iter().map(|e| e.to_bits()).collect();
    assert!(
        distinct.len() > 1,
        "replicas produced identical estimates — seed derivation broken? {estimates:?}"
    );
    // ...and the replicate summary must describe exactly that spread.
    let summary = ensemble.replicate_summary().unwrap();
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    assert_eq!(summary.mean.to_bits(), mean.to_bits());
    assert_eq!(summary.mean.to_bits(), ensemble.estimate().to_bits());
    assert!(summary.std_err < summary.std_dev + 1e-12);

    // Replica i is exactly the bare estimator seeded with the documented
    // derivation — no hidden per-replica state beyond the seed.
    for (i, &estimate) in estimates.iter().enumerate() {
        let mut bare = EstimatorSpec::abacus(256)
            .with_seed(derive_seed(5, i as u64))
            .build();
        bare.process_stream(&stream);
        assert_eq!(
            estimate.to_bits(),
            bare.estimate().to_bits(),
            "replica {i} does not match its derived-seed bare estimator"
        );
    }
    assert_eq!(derive_seed(5, 0), 5);
}
