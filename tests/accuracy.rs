//! Cross-crate integration test: the headline accuracy claim of the paper.
//!
//! On a fully dynamic stream (20% deletions), ABACUS stays close to the true
//! butterfly count while the insert-only baselines (FLEET, CAS) drift far
//! above it because they never retract deleted edges.

use abacus::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A mid-sized power-law workload that is cheap enough to ground-truth in a
/// debug-mode test run.
fn workload(alpha: f64) -> (GraphStream, f64) {
    let edges = abacus::stream::generators::chung_lu_bipartite(
        abacus::stream::generators::ChungLuConfig {
            left_vertices: 1_500,
            right_vertices: 300,
            edges: 20_000,
            left_exponent: 2.2,
            right_exponent: 2.3,
        },
        &mut StdRng::seed_from_u64(1),
    );
    let stream = inject_deletions_fast(
        &edges,
        DeletionConfig::new(alpha),
        &mut StdRng::seed_from_u64(2),
    );
    let truth = count_butterflies(&final_graph(&stream)) as f64;
    (stream, truth)
}

fn mean_relative_error<F>(runs: u64, truth: f64, mut make_and_run: F) -> f64
where
    F: FnMut(u64) -> f64,
{
    (0..runs)
        .map(|seed| relative_error(truth, make_and_run(seed)))
        .sum::<f64>()
        / runs as f64
}

#[test]
fn abacus_beats_insert_only_baselines_under_deletions() {
    let (stream, truth) = workload(0.2);
    assert!(
        truth > 1_000.0,
        "workload must contain butterflies, got {truth}"
    );
    let budget = 2_000;
    let runs = 3;

    let abacus_error = mean_relative_error(runs, truth, |seed| {
        let mut estimator = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
        estimator.process_stream(&stream);
        estimator.estimate()
    });
    let fleet_error = mean_relative_error(runs, truth, |seed| {
        let mut estimator = Fleet::new(FleetConfig::new(budget).with_seed(seed));
        estimator.process_stream(&stream);
        estimator.estimate()
    });
    let cas_error = mean_relative_error(runs, truth, |seed| {
        let mut estimator = Cas::new(CasConfig::new(budget).with_seed(seed));
        estimator.process_stream(&stream);
        estimator.estimate()
    });

    // ABACUS must be accurate in absolute terms...
    assert!(
        abacus_error < 0.20,
        "ABACUS relative error too high: {abacus_error}"
    );
    // ...and clearly more accurate than the deletion-blind baselines, which
    // over-count by design (the paper reports 3x-148x gaps).
    assert!(
        fleet_error > 2.0 * abacus_error,
        "FLEET ({fleet_error}) should be far worse than ABACUS ({abacus_error})"
    );
    assert!(
        cas_error > 2.0 * abacus_error,
        "CAS ({cas_error}) should be far worse than ABACUS ({abacus_error})"
    );
}

#[test]
fn all_estimators_are_comparable_on_insert_only_streams() {
    let (stream, truth) = workload(0.0);
    let budget = 2_000;
    let runs = 3;

    let abacus_error = mean_relative_error(runs, truth, |seed| {
        let mut estimator = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
        estimator.process_stream(&stream);
        estimator.estimate()
    });
    let fleet_error = mean_relative_error(runs, truth, |seed| {
        let mut estimator = Fleet::new(FleetConfig::new(budget).with_seed(seed));
        estimator.process_stream(&stream);
        estimator.estimate()
    });

    // Without deletions everybody should be reasonably accurate (Fig. 5).
    assert!(abacus_error < 0.25, "ABACUS: {abacus_error}");
    assert!(fleet_error < 0.60, "FLEET: {fleet_error}");
}

#[test]
fn accuracy_improves_with_sample_size() {
    let (stream, truth) = workload(0.2);
    let runs = 4;
    let error_at = |budget: usize| {
        mean_relative_error(runs, truth, |seed| {
            let mut estimator = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
            estimator.process_stream(&stream);
            estimator.estimate()
        })
    };
    let small = error_at(400);
    let large = error_at(4_000);
    assert!(
        large < small,
        "error should shrink with the sample size: k=400 -> {small}, k=4000 -> {large}"
    );
}

#[test]
fn exact_oracle_matches_batch_ground_truth() {
    let (stream, truth) = workload(0.3);
    let mut exact = ExactCounter::new();
    exact.process_stream(&stream);
    assert_eq!(exact.estimate(), truth);
}
