//! Fault-injected ensemble supervision parity: a replica that panics (or
//! exhausts its persistence retry budget) mid-stream is quarantined while
//! the ensemble keeps serving degraded — and after snapshot restore +
//! ensemble-WAL catch-up the rejoined replica must be **bit-identical** to
//! the same replica in a run that never failed: estimate (`f64::to_bits`),
//! `memory_edges`, and the full serialized estimator state compared exactly.
//!
//! The matrix covers ABACUS, PARABACUS (mini-batched, threaded, pipelined),
//! and the FLEET registry kind, under both replicate and partition ensemble
//! modes, at seed-randomized fault points — via a completed degraded run
//! recovered with [`EnsembleSupervisor::resume`], and via a live
//! [`EnsembleSupervisor::rejoin`] mid-stream.  Satellites: degraded serving
//! honesty (K−1 summaries, typed quarantine records), transient-I/O
//! absorption within the retry budget, GDPR-style vertex-wipe streams, and
//! corrupted/missing/ahead `COMMITTED` watermark recovery (typed error or
//! flagged rebuild — never a panic, never a silent double-replay).

use abacus::prelude::*;
use abacus_core::engine::supervisor::replica_dir;
use abacus_core::{Checkpointer, EnsembleSupervisor, RunManifest};
use abacus_graph::persist::PersistError;
use abacus_sampling::splitmix64;
use abacus_stream::fault::{ReplicaFault, ReplicaFaultKind};
use abacus_stream::persist::{write_watermark, WATERMARK_FILE};
use abacus_stream::source::IterSource;
use abacus_stream::VertexWipeInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const REPLICAS: usize = 3;
const CADENCE: u64 = 100;

fn dynamic_stream(seed: u64, edges: usize, alpha: f64) -> Vec<StreamElement> {
    let base = abacus_stream::generators::random::uniform_bipartite(
        50,
        50,
        edges,
        &mut StdRng::seed_from_u64(seed),
    );
    if alpha == 0.0 {
        return base.into_iter().map(StreamElement::insert).collect();
    }
    inject_deletions_fast(
        &base,
        DeletionConfig::new(alpha),
        &mut StdRng::seed_from_u64(seed ^ 0xBEEF),
    )
}

/// A fresh, empty checkpoint directory under the system temp dir.
fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("abacus-fault-tolerance")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything a rejoined replica must reproduce exactly.  The serialized
/// state embeds sampler slot order, Random Pairing counters, RNG words, and
/// work statistics, so byte equality is the strongest check available.
#[derive(PartialEq, Eq)]
struct Fingerprint {
    estimate_bits: u64,
    memory_edges: usize,
    state: Vec<u8>,
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fingerprint")
            .field("estimate", &f64::from_bits(self.estimate_bits))
            .field("memory_edges", &self.memory_edges)
            .field("state_len", &self.state.len())
            .finish()
    }
}

/// Fingerprints of every replica plus the merged estimate.
fn fingerprints(supervisor: &mut EnsembleSupervisor) -> (Vec<Fingerprint>, u64) {
    let merged = supervisor.estimate().to_bits();
    let prints = (0..supervisor.replicas())
        .map(|index| {
            let checkpointer = supervisor
                .replica_checkpointer_mut(index)
                .expect("every replica is in service when fingerprinting");
            Fingerprint {
                estimate_bits: checkpointer.estimator().estimate().to_bits(),
                memory_edges: checkpointer.estimator().memory_edges(),
                state: checkpointer.estimator_mut().save_state().unwrap(),
            }
        })
        .collect();
    (prints, merged)
}

/// Runs a supervised ensemble over the whole stream with no faults and
/// returns its final fingerprints.
fn run_clean(
    spec: EstimatorSpec,
    mode: EnsembleMode,
    stream: &[StreamElement],
    tag: &str,
) -> (Vec<Fingerprint>, u64) {
    let dir = test_dir(tag);
    let manifest = RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, mode);
    let mut supervisor = EnsembleSupervisor::create(&dir, manifest).unwrap();
    for &element in stream {
        supervisor.offer(element).unwrap();
    }
    supervisor.finish().unwrap();
    let prints = fingerprints(&mut supervisor);
    std::fs::remove_dir_all(&dir).ok();
    prints
}

/// The global index of the `n`-th element (1-based) the partition router
/// sends to `shard` — so partition-mode faults are guaranteed to fire.
fn nth_routed_to(stream: &[StreamElement], shard: usize, n: usize) -> u64 {
    let mut seen = 0;
    for (index, element) in stream.iter().enumerate() {
        if (splitmix64(element.edge.key().0) % REPLICAS as u64) as usize == shard {
            seen += 1;
            if seen == n {
                return index as u64;
            }
        }
    }
    panic!("stream routes fewer than {n} elements to shard {shard}");
}

/// Seed-randomized fault points: deterministic per (kind, mode) so failures
/// reproduce, spread across cadence boundaries by the avalanche.
fn fault_points(salt: u64, len: u64) -> Vec<u64> {
    (0..2)
        .map(|i| 1 + splitmix64(salt.wrapping_add(i)) % (len - 2))
        .collect()
}

#[test]
fn quarantined_replica_rejoins_bit_identically_across_kinds_and_modes() {
    let kinds = [
        ("abacus", EstimatorSpec::abacus(220).with_seed(11), 0.25),
        (
            "parabacus",
            EstimatorSpec::parabacus(220)
                .with_seed(11)
                .with_batch_size(64)
                .with_threads(2)
                .with_pipeline_depth(2),
            0.25,
        ),
        // FLEET is insert-only: give it a deletion-free stream.
        ("fleet", EstimatorSpec::fleet(220).with_seed(11), 0.0),
    ];
    for (name, spec, alpha) in kinds {
        let stream = dynamic_stream(0xF00D ^ spec.kind as u64, 420, alpha);
        for mode in [EnsembleMode::Replicate, EnsembleMode::Partition] {
            let reference = run_clean(spec, mode, &stream, &format!("clean-{name}-{mode}"));
            for (case, &raw_at) in fault_points(spec.kind as u64 ^ mode as u64, stream.len() as u64)
                .iter()
                .enumerate()
            {
                // In partition mode only routed elements reach replica 1;
                // pin the fault to one that does.
                let fault_at = match mode {
                    EnsembleMode::Replicate => raw_at,
                    EnsembleMode::Partition => nth_routed_to(&stream, 1, 1 + raw_at as usize / 8),
                };
                let dir = test_dir(&format!("faulty-{name}-{mode}-{case}"));
                let manifest = RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, mode);
                let mut supervisor = EnsembleSupervisor::create(&dir, manifest)
                    .unwrap()
                    .with_replica_faults(vec![ReplicaFault {
                        replica: 1,
                        at: fault_at,
                        kind: ReplicaFaultKind::Panic,
                    }]);
                for &element in &stream {
                    supervisor.offer(element).unwrap();
                }
                // The run completed degraded: replica 1 is out, the others
                // kept serving, and finish() still succeeds.
                assert!(supervisor.is_degraded(), "{name}/{mode} at {fault_at}");
                assert_eq!(supervisor.healthy(), REPLICAS - 1);
                supervisor.finish().unwrap();
                drop(supervisor);

                // Resume rebuilds every replica; the quarantined one is
                // restored from its own snapshot and caught up from the
                // ensemble log to the committed watermark.
                let recovery = EnsembleSupervisor::resume(&dir).unwrap();
                let mut rejoined = recovery.supervisor;
                assert_eq!(rejoined.healthy(), REPLICAS);
                assert!(!recovery.watermark_rebuilt);
                let catch_up = &recovery.replicas[1];
                assert!(
                    catch_up.caught_up > 0,
                    "{name}/{mode} at {fault_at}: the missed suffix must come \
                     from the ensemble log, got {catch_up:?}"
                );
                rejoined.finish().unwrap();
                let (prints, merged) = fingerprints(&mut rejoined);
                assert_eq!(
                    prints, reference.0,
                    "{name}/{mode} fault at {fault_at}: replica states diverged"
                );
                assert_eq!(
                    merged, reference.1,
                    "{name}/{mode} fault at {fault_at}: merged estimate diverged"
                );
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

#[test]
fn live_rejoin_mid_stream_restores_parity() {
    for (name, spec) in [
        ("abacus", EstimatorSpec::abacus(200).with_seed(5)),
        (
            "parabacus",
            EstimatorSpec::parabacus(200)
                .with_seed(5)
                .with_batch_size(50)
                .with_threads(2),
        ),
    ] {
        let stream = dynamic_stream(0xCAFE, 500, 0.2);
        let reference = run_clean(spec, EnsembleMode::Replicate, &stream, "live-clean");
        let dir = test_dir(&format!("live-rejoin-{name}"));
        let manifest =
            RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, EnsembleMode::Replicate);
        let mut supervisor = EnsembleSupervisor::create(&dir, manifest)
            .unwrap()
            .with_replica_faults(vec![ReplicaFault {
                replica: 2,
                at: 150,
                kind: ReplicaFaultKind::Panic,
            }]);
        for &element in &stream[..350] {
            supervisor.offer(element).unwrap();
        }
        assert!(supervisor.is_degraded());
        // Rejoin while the stream is still flowing: replica 2 catches up
        // through the ensemble log (the 200-element gap including the
        // element its panic swallowed) and re-enters service.
        let recovery = supervisor.rejoin(2).unwrap();
        assert_eq!(
            recovery.caught_up + recovery.replayed + recovery.snapshot_elements,
            350
        );
        assert!(!supervisor.is_degraded());
        // Rejoining a healthy replica is a typed error, not a panic.
        assert!(matches!(
            supervisor.rejoin(2),
            Err(PersistError::Corrupt(_))
        ));
        for &element in &stream[350..] {
            supervisor.offer(element).unwrap();
        }
        supervisor.finish().unwrap();
        let prints = fingerprints(&mut supervisor);
        assert_eq!(prints.0, reference.0, "{name}: replica states diverged");
        assert_eq!(prints.1, reference.1, "{name}: merged estimate diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn degraded_serving_is_honest_about_reduced_k() {
    let spec = EstimatorSpec::abacus(180).with_seed(21);
    let stream = dynamic_stream(0xD1CE, 400, 0.2);
    let dir = test_dir("degraded-honesty");
    let manifest = RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, EnsembleMode::Replicate);
    let mut supervisor = EnsembleSupervisor::create(&dir, manifest)
        .unwrap()
        .with_replica_faults(vec![ReplicaFault {
            replica: 0,
            at: 77,
            kind: ReplicaFaultKind::Panic,
        }]);
    for &element in &stream {
        supervisor.offer(element).unwrap();
    }
    supervisor.finish().unwrap();

    let health = supervisor.health();
    assert!(health.is_degraded());
    assert_eq!((health.healthy, health.total), (2, 3));
    assert_eq!(health.summary_line(), "2/3 replicas healthy (degraded)");
    let record = &health.quarantined[0];
    assert_eq!((record.replica, record.at_element), (0, 77));
    assert!(
        record.reason.contains("panicked"),
        "the quarantine reason must carry the typed fault: {}",
        record.reason
    );

    // The merged estimate and the spread summary are computed over the two
    // surviving replicas only — no stale contribution from replica 0.
    let estimates = supervisor.replica_estimates();
    assert_eq!(
        estimates.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        vec![1, 2]
    );
    let mean = estimates.iter().map(|(_, e)| e).sum::<f64>() / 2.0;
    assert_eq!(supervisor.estimate().to_bits(), mean.to_bits());
    let summary = supervisor.replicate_summary().unwrap();
    assert_eq!(summary.mean.to_bits(), mean.to_bits());
    assert!(
        supervisor.replica(0).is_none(),
        "quarantined replicas serve no reads"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_io_faults_are_absorbed_within_the_retry_budget() {
    let spec = EstimatorSpec::abacus(180).with_seed(31);
    let stream = dynamic_stream(0xABBA, 400, 0.2);
    let reference = run_clean(spec, EnsembleMode::Replicate, &stream, "retry-clean");

    // Two injected failures < the default three attempts: absorbed, never
    // quarantined, bit-identical to the clean run.
    let dir = test_dir("retry-absorbed");
    let manifest = RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, EnsembleMode::Replicate);
    let mut supervisor = EnsembleSupervisor::create(&dir, manifest)
        .unwrap()
        .with_replica_faults(vec![ReplicaFault {
            replica: 1,
            at: 123,
            kind: ReplicaFaultKind::Io { failures: 2 },
        }]);
    for &element in &stream {
        supervisor.offer(element).unwrap();
    }
    assert!(
        !supervisor.is_degraded(),
        "two failures fit a three-attempt budget"
    );
    supervisor.finish().unwrap();
    let prints = fingerprints(&mut supervisor);
    assert_eq!(prints, reference, "absorbed retries must not perturb state");
    std::fs::remove_dir_all(&dir).ok();

    // Five failures exhaust the budget: a typed persistence quarantine —
    // and the replica still rejoins bit-identically afterwards.
    let dir = test_dir("retry-exhausted");
    let manifest = RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, EnsembleMode::Replicate);
    let mut supervisor = EnsembleSupervisor::create(&dir, manifest)
        .unwrap()
        .with_replica_faults(vec![ReplicaFault {
            replica: 1,
            at: 123,
            kind: ReplicaFaultKind::Io { failures: 5 },
        }]);
    for &element in &stream {
        supervisor.offer(element).unwrap();
    }
    assert!(supervisor.is_degraded());
    let reason = &supervisor.health().quarantined[0].reason;
    assert!(
        reason.contains("persistence failed after retries"),
        "expected a typed persistence error, got: {reason}"
    );
    supervisor.finish().unwrap();
    drop(supervisor);
    let mut rejoined = EnsembleSupervisor::resume(&dir).unwrap().supervisor;
    rejoined.finish().unwrap();
    assert_eq!(fingerprints(&mut rejoined), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn vertex_wipe_streams_stay_exact_at_covering_budgets() {
    // A wipe-heavy fully dynamic stream: α-deletions composed with six
    // GDPR-style whole-vertex erasure bursts.
    let base = dynamic_stream(0x61DF, 500, 0.15);
    let len = base.len() as u64;
    let mut injector = VertexWipeInjector::new(
        IterSource::new(base.into_iter()),
        6,
        len,
        StdRng::seed_from_u64(99),
    );
    let stream = read_all(&mut injector).unwrap();
    assert!(
        injector.wiped_edges() > 0,
        "the wipes must actually erase edges"
    );
    let truth = count_butterflies(&final_graph(&stream)) as f64;

    // A covering budget makes ABACUS exact, wipes and all.
    let mut abacus = Abacus::new(AbacusConfig::new(2_000).with_seed(1));
    abacus.process_stream(&stream);
    assert_eq!(abacus.estimate(), truth);

    // Replicate ensembles agree exactly at covering budgets; a supervised
    // ensemble survives the same stream durably with the same answer.
    let mut ensemble = Ensemble::new(
        EstimatorSpec::abacus(2_000).with_seed(1),
        REPLICAS,
        EnsembleMode::Replicate,
    )
    .unwrap();
    ensemble.process_stream(&stream);
    assert_eq!(ensemble.estimate(), truth);

    let dir = test_dir("wipe-supervised");
    let manifest = RunManifest::new(EstimatorSpec::abacus(2_000).with_seed(1), CADENCE)
        .with_ensemble(REPLICAS, EnsembleMode::Replicate);
    let mut supervisor = EnsembleSupervisor::create(&dir, manifest).unwrap();
    for &element in &stream {
        supervisor.offer(element).unwrap();
    }
    assert_eq!(supervisor.finish().unwrap(), truth);
    std::fs::remove_dir_all(&dir).ok();

    // At a modest budget the estimate stays finite and sane on a stream
    // whose deletions arrive in correlated bursts.
    let mut small = Abacus::new(AbacusConfig::new(150).with_seed(1));
    small.process_stream(&stream);
    assert!(small.estimate().is_finite());
    assert!(small.estimate() >= 0.0);
}

#[test]
fn watermark_corruption_is_rebuilt_or_typed_never_silent() {
    let spec = EstimatorSpec::abacus(150).with_seed(41);
    let stream = dynamic_stream(0x7A57, 350, 0.2);

    // Reference fingerprint from an untouched resume.
    let make_dir = |tag: &str| {
        let dir = test_dir(tag);
        let mut checkpointer = Checkpointer::create(&dir, RunManifest::new(spec, CADENCE)).unwrap();
        for &element in &stream {
            checkpointer.offer(element).unwrap();
        }
        checkpointer.finish().unwrap();
        dir
    };
    let reference_dir = make_dir("wm-reference");
    let reference = Checkpointer::resume(&reference_dir).unwrap();
    assert!(!reference.watermark_rebuilt);
    let reference_bits = reference.checkpointer.estimator().estimate().to_bits();
    std::fs::remove_dir_all(&reference_dir).ok();

    // Missing watermark: recovery rebuilds it from the durable log, flags
    // the rebuild, and converges to the same state (no double replay).
    let dir = make_dir("wm-missing");
    std::fs::remove_file(dir.join(WATERMARK_FILE)).unwrap();
    let recovery = Checkpointer::resume(&dir).unwrap();
    assert!(recovery.watermark_rebuilt);
    assert_eq!(
        recovery.checkpointer.estimator().estimate().to_bits(),
        reference_bits
    );
    assert_eq!(
        recovery.checkpointer.committed().unwrap(),
        Some(stream.len() as u64)
    );
    std::fs::remove_dir_all(&dir).ok();

    // Corrupt watermark bytes: same flagged rebuild, same state.
    let dir = make_dir("wm-corrupt");
    std::fs::write(dir.join(WATERMARK_FILE), b"garbage, not ABWM1").unwrap();
    let recovery = Checkpointer::resume(&dir).unwrap();
    assert!(recovery.watermark_rebuilt);
    assert_eq!(
        recovery.checkpointer.estimator().estimate().to_bits(),
        reference_bits
    );
    std::fs::remove_dir_all(&dir).ok();

    // A watermark *ahead* of the durable log claims elements that were
    // never persisted: a typed gap, not a silently shortened run.
    let dir = make_dir("wm-ahead");
    write_watermark(&dir, stream.len() as u64 + 50).unwrap();
    match Checkpointer::resume(&dir) {
        Err(PersistError::Gap { expected, found }) => {
            assert_eq!(expected, stream.len() as u64 + 50);
            assert_eq!(found, stream.len() as u64);
        }
        other => panic!("expected PersistError::Gap, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();

    // The supervised layout heals its ensemble-level watermark the same
    // way, and the per-replica states come back bit-identical.
    let sup_reference = run_clean(spec, EnsembleMode::Replicate, &stream, "wm-sup-clean");
    let dir = test_dir("wm-sup-corrupt");
    let manifest = RunManifest::new(spec, CADENCE).with_ensemble(REPLICAS, EnsembleMode::Replicate);
    let mut supervisor = EnsembleSupervisor::create(&dir, manifest).unwrap();
    for &element in &stream {
        supervisor.offer(element).unwrap();
    }
    supervisor.finish().unwrap();
    drop(supervisor);
    std::fs::write(dir.join(WATERMARK_FILE), b"flipped bits").unwrap();
    let recovery = EnsembleSupervisor::resume(&dir).unwrap();
    assert!(recovery.watermark_rebuilt);
    let mut rejoined = recovery.supervisor;
    rejoined.finish().unwrap();
    assert_eq!(fingerprints(&mut rejoined), sup_reference);
    // The replica directories are where per-replica durability lives.
    assert!(replica_dir(dir.as_path(), 0).is_dir());
    std::fs::remove_dir_all(&dir).ok();
}
