//! CLI error type.

use std::fmt;

/// Everything that can go wrong while parsing arguments or running a command.
#[derive(Debug)]
pub enum CliError {
    /// The first positional argument is not a known subcommand.
    UnknownCommand(String),
    /// An option was passed that the command does not understand.
    UnknownOption(String),
    /// A `--key` was given without a value.
    MissingValue(String),
    /// A required option was not supplied.
    MissingOption(&'static str),
    /// An option value could not be parsed or is out of range.
    InvalidValue {
        /// The offending option name (without the leading dashes).
        option: String,
        /// The value that failed to parse.
        value: String,
        /// What was expected instead.
        expected: &'static str,
    },
    /// Reading or writing a stream file failed.
    Io(String),
    /// A checkpoint directory could not be written, read, or recovered.
    Persist(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(cmd) => {
                write!(f, "unknown command {cmd:?}; run `abacus help` for usage")
            }
            CliError::UnknownOption(opt) => write!(f, "unknown option --{opt}"),
            CliError::MissingValue(opt) => write!(f, "option --{opt} requires a value"),
            CliError::MissingOption(opt) => write!(f, "required option --{opt} is missing"),
            CliError::InvalidValue {
                option,
                value,
                expected,
            } => write!(
                f,
                "invalid value {value:?} for --{option}: expected {expected}"
            ),
            CliError::Io(message) => write!(f, "I/O error: {message}"),
            CliError::Persist(message) => write!(f, "checkpoint error: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_input() {
        assert!(CliError::UnknownCommand("x".into())
            .to_string()
            .contains("\"x\""));
        assert!(CliError::UnknownOption("foo".into())
            .to_string()
            .contains("--foo"));
        assert!(CliError::MissingValue("k".into())
            .to_string()
            .contains("--k"));
        assert!(CliError::MissingOption("output")
            .to_string()
            .contains("--output"));
        let invalid = CliError::InvalidValue {
            option: "budget".into(),
            value: "minus one".into(),
            expected: "a positive integer",
        };
        assert!(invalid.to_string().contains("--budget"));
        assert!(invalid.to_string().contains("positive integer"));
        assert!(CliError::Io("gone".into()).to_string().contains("gone"));
    }
}
