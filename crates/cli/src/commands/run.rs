//! `abacus run` — process a stream with one estimator and report the result.

use super::load_workload;
use crate::args::Arguments;
use crate::error::CliError;
use abacus_baselines::{Cas, CasConfig, Fleet, FleetConfig};
use abacus_core::{
    Abacus, AbacusConfig, ButterflyCounter, ExactCounter, ParAbacus, ParAbacusConfig, SnapshotMode,
};
use abacus_metrics::{relative_error_percent, Throughput};
use abacus_stream::{final_graph, StreamElement};
use std::time::Instant;

/// Which estimator `--algorithm` selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AlgorithmChoice {
    Abacus,
    ParAbacus,
    Fleet,
    Cas,
    Exact,
}

fn parse_algorithm(name: &str) -> Result<AlgorithmChoice, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "abacus" => Ok(AlgorithmChoice::Abacus),
        "parabacus" => Ok(AlgorithmChoice::ParAbacus),
        "fleet" => Ok(AlgorithmChoice::Fleet),
        "cas" => Ok(AlgorithmChoice::Cas),
        "exact" => Ok(AlgorithmChoice::Exact),
        other => Err(CliError::InvalidValue {
            option: "algorithm".to_string(),
            value: other.to_string(),
            expected: "abacus, parabacus, fleet, cas, or exact",
        }),
    }
}

fn timed<C: ButterflyCounter>(
    mut counter: C,
    stream: &[StreamElement],
) -> (f64, usize, Throughput, &'static str) {
    let start = Instant::now();
    counter.process_stream(stream);
    let throughput = Throughput::new(stream.len() as u64, start.elapsed());
    (
        counter.estimate(),
        counter.memory_edges(),
        throughput,
        counter.name(),
    )
}

/// Runs the selected estimator over the workload and formats a small report.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let workload = load_workload(args)?;
    let algorithm = parse_algorithm(args.get("algorithm").unwrap_or("abacus"))?;
    let budget: usize = args.parsed_or("budget", 3_000, "a positive integer")?;
    let batch: usize = args.parsed_or("batch", 500, "a positive integer")?;
    let threads: usize = args.parsed_or(
        "threads",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        "a positive integer",
    )?;
    let seed: u64 = args.parsed_or("seed", 0, "an unsigned integer")?;
    let pipeline_depth: usize = args.parsed_or("pipeline-depth", 2, "a positive integer")?;
    // Frozen CSR counting snapshot ablation knob (ABACUS/PARABACUS only).
    let snapshot: SnapshotMode =
        args.parsed_or("snapshot", SnapshotMode::Auto, "on, off, or auto")?;
    let want_truth = args.flag("ground-truth");
    args.reject_unused()?;
    if budget < 2 {
        return Err(CliError::InvalidValue {
            option: "budget".to_string(),
            value: budget.to_string(),
            expected: "an integer of at least 2",
        });
    }
    if batch == 0 || threads == 0 || pipeline_depth == 0 {
        let option = if batch == 0 {
            "batch"
        } else if threads == 0 {
            "threads"
        } else {
            "pipeline-depth"
        };
        return Err(CliError::InvalidValue {
            option: option.to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }

    let (estimate, memory_edges, throughput, name) = match algorithm {
        AlgorithmChoice::Abacus => timed(
            Abacus::new(
                AbacusConfig::new(budget)
                    .with_seed(seed)
                    .with_snapshot(snapshot),
            ),
            &workload.stream,
        ),
        AlgorithmChoice::ParAbacus => timed(
            ParAbacus::new(
                ParAbacusConfig::new(budget)
                    .with_seed(seed)
                    .with_batch_size(batch)
                    .with_threads(threads)
                    .with_pipeline_depth(pipeline_depth)
                    .with_snapshot(snapshot),
            ),
            &workload.stream,
        ),
        AlgorithmChoice::Fleet => timed(
            Fleet::new(FleetConfig::new(budget).with_seed(seed)),
            &workload.stream,
        ),
        AlgorithmChoice::Cas => timed(
            Cas::new(CasConfig::new(budget).with_seed(seed)),
            &workload.stream,
        ),
        AlgorithmChoice::Exact => timed(ExactCounter::new(), &workload.stream),
    };

    let mut report = format!(
        "algorithm:        {name}\n\
         stream:           {} ({} elements)\n\
         memory (edges):   {memory_edges}\n\
         estimate:         {estimate:.1}\n\
         elapsed:          {:.3}s\n\
         throughput:       {:.0} edges/s\n",
        workload.label,
        workload.stream.len(),
        throughput.seconds,
        throughput.per_second(),
    );
    if want_truth {
        let truth = abacus_graph::count_butterflies(&final_graph(&workload.stream)) as f64;
        report.push_str(&format!(
            "exact count:      {truth:.0}\nrelative error:   {:.2}%\n",
            relative_error_percent(truth, estimate)
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::io::write_stream_to_path;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    fn biclique_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("abacus_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut stream = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        write_stream_to_path(&stream, &path).unwrap();
        path
    }

    #[test]
    fn every_algorithm_runs_and_reports_an_estimate() {
        let path = biclique_file("k33.txt");
        let path_str = path.to_str().unwrap();
        for algorithm in ["abacus", "parabacus", "fleet", "cas", "exact"] {
            let out = run(&args(&[
                "--input",
                path_str,
                "--algorithm",
                algorithm,
                "--budget",
                "100",
                "--threads",
                "2",
            ]))
            .unwrap();
            assert!(out.contains("estimate:"), "{algorithm}: {out}");
            assert!(out.contains("throughput:"), "{algorithm}: {out}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipeline_depth_is_parsed_and_validated() {
        let path = biclique_file("pipeline.txt");
        let path_str = path.to_str().unwrap();
        for depth in ["1", "2", "4"] {
            let out = run(&args(&[
                "--input",
                path_str,
                "--algorithm",
                "parabacus",
                "--budget",
                "100",
                "--batch",
                "2",
                "--threads",
                "2",
                "--pipeline-depth",
                depth,
            ]))
            .unwrap();
            // Budget covers the stream: the K_{3,3} count is exact at every
            // depth, pipelined or alternating.
            assert!(
                out.contains("estimate:         9.0"),
                "depth {depth}: {out}"
            );
        }
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--algorithm",
                "parabacus",
                "--pipeline-depth",
                "0",
            ])),
            Err(CliError::InvalidValue { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_modes_are_parsed_and_leave_estimates_unchanged() {
        let path = biclique_file("snapshot.txt");
        let path_str = path.to_str().unwrap();
        for algorithm in ["abacus", "parabacus"] {
            for mode in ["on", "off", "auto"] {
                let out = run(&args(&[
                    "--input",
                    path_str,
                    "--algorithm",
                    algorithm,
                    "--budget",
                    "100",
                    "--snapshot",
                    mode,
                ]))
                .unwrap();
                // Budget covers the stream: the K_{3,3} count is exact with
                // every backing.
                assert!(
                    out.contains("estimate:         9.0"),
                    "{algorithm} --snapshot {mode}: {out}"
                );
            }
        }
        assert!(matches!(
            run(&args(&["--input", path_str, "--snapshot", "sometimes"])),
            Err(CliError::InvalidValue { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exact_mode_and_ground_truth_agree_on_k33() {
        let path = biclique_file("k33_truth.txt");
        // K_{3,3} contains C(3,2)² = 9 butterflies.
        let out = run(&args(&[
            "--input",
            path.to_str().unwrap(),
            "--algorithm",
            "exact",
            "--ground-truth",
        ]))
        .unwrap();
        assert!(out.contains("estimate:         9.0"));
        assert!(out.contains("exact count:      9"));
        assert!(out.contains("relative error:   0.00%"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_algorithm_and_budget_are_rejected() {
        let path = biclique_file("rejects.txt");
        let path_str = path.to_str().unwrap();
        assert!(matches!(
            run(&args(&["--input", path_str, "--algorithm", "magic"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&args(&["--input", path_str, "--budget", "1"])),
            Err(CliError::InvalidValue { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
