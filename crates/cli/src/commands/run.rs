//! `abacus run` — process a stream with one estimator and report the result.
//!
//! `--input` files are *streamed*: elements are pulled from disk in chunks,
//! so ingest memory stays O(budget + chunk) even for streams far larger than
//! RAM.  Generated `--dataset` workloads necessarily materialize (the
//! generators are in-memory), as does `--ground-truth` (the exact count
//! needs the final graph); the report's `ingest:` line states which path
//! ran.

use super::{parse_ensemble, WorkloadInput};
use crate::args::Arguments;
use crate::error::CliError;
use abacus_core::engine::{Checkpointer, Ensemble, EnsembleSupervisor, RunManifest};
use abacus_core::ButterflyCounter;
use abacus_metrics::{relative_error_percent, Throughput};
use abacus_stream::fault::FaultPlan;
use abacus_stream::persist::RetryPolicy;
use abacus_stream::{final_graph, ElementSource, StreamElement};
use std::time::Instant;

/// Runs the selected estimator over the workload and formats a small report.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let input = WorkloadInput::from_args(args)?;
    let spec = super::parse_estimator_spec(args, 3_000)?;
    let ensemble = parse_ensemble(args)?;
    // Pull-chunk size of the streamed ingest path; 0 = the estimator's
    // preferred chunk (PARABACUS: its batch size).
    let chunk: usize = args.parsed_or("chunk", 0, "a non-negative integer")?;
    let views = super::parse_views(args)?;
    let want_truth = args.flag("ground-truth");
    let checkpoint_dir = args.get("checkpoint-dir").map(str::to_string);
    let checkpoint_every: u64 = args.parsed_or("checkpoint-every", 10_000, "a positive integer")?;
    let plan = super::parse_fault_plan(args)?;
    args.reject_unused()?;

    if !plan.replicas.is_empty() && ensemble.is_none() {
        return Err(CliError::InvalidValue {
            option: "fault-plan".to_string(),
            value: "replica faults".to_string(),
            expected: "--ensemble when the plan injects replica faults",
        });
    }
    if want_truth && !plan.is_empty() {
        return Err(CliError::InvalidValue {
            option: "fault-plan".to_string(),
            value: "(set)".to_string(),
            expected: "no --fault-plan with --ground-truth (the exact count \
                       needs the unfaulted stream)",
        });
    }

    if let Some(dir) = checkpoint_dir {
        return if let Some(ensemble) = ensemble {
            run_supervised(
                &input,
                spec,
                ensemble,
                &views,
                &dir,
                checkpoint_every,
                &plan,
            )
        } else {
            run_checkpointed(&input, spec, &views, &dir, checkpoint_every, &plan)
        };
    }

    let mut counter = super::build_counter(spec, ensemble, &views, plan.replicas.clone());

    // Ground truth needs the final graph, which only a materialized stream
    // can provide without a second pass over a re-openable source; everything
    // else streams in O(budget + chunk) ingest memory.  Both drivers feed the
    // estimator identically, so the estimate is bit-identical either way.
    let (elements, throughput, ingest, truth) = if want_truth {
        let stream = input.materialize()?;
        let start = Instant::now();
        counter.process_stream(&stream);
        let throughput = Throughput::new(stream.len() as u64, start.elapsed());
        let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
        (
            stream.len() as u64,
            throughput,
            "materialized (--ground-truth needs the final graph)".to_string(),
            Some(truth),
        )
    } else {
        let mut source = super::open_faulty_source(&input, &plan)?;
        let start = Instant::now();
        let elements = if chunk == 0 {
            counter.process_source(&mut *source)
        } else {
            counter.process_source_chunked(&mut *source, chunk)
        }
        .map_err(|e| CliError::Io(e.to_string()))?;
        let throughput = Throughput::new(elements, start.elapsed());
        let effective = if chunk == 0 {
            counter.preferred_chunk()
        } else {
            chunk
        };
        // Only files are genuinely bounded-memory; a generated dataset
        // materializes inside its source, and saying "streamed" there would
        // misreport the memory model.
        let ingest = if input.is_file() {
            format!("streamed (chunk {effective})")
        } else {
            format!("generated in memory (pulled in chunks of {effective})")
        };
        (elements, throughput, ingest, None)
    };

    let mut report = format!(
        "algorithm:        {}\n\
         stream:           {} ({elements} elements)\n\
         ingest:           {ingest}\n\
         memory (edges):   {}\n\
         estimate:         {:.1}\n\
         elapsed:          {:.3}s\n\
         throughput:       {:.0} edges/s\n",
        counter.name(),
        input.label(),
        counter.memory_edges(),
        counter.estimate(),
        throughput.seconds,
        throughput.per_second(),
    );
    // With `--views` the counter is a delta circuit wrapping the estimator
    // (or the ensemble); reach through it for the ensemble line and append
    // one report line per subscribed view.
    let circuit = counter
        .as_any()
        .and_then(|any| any.downcast_ref::<super::BoxedCircuit>());
    let ensemble_any = match circuit {
        Some(circuit) => circuit.estimator().as_any(),
        None => counter.as_any(),
    };
    if let Some(ensemble) = ensemble_any.and_then(|any| any.downcast_ref::<Ensemble>()) {
        report.push_str(&format!(
            "ensemble:         {} x {} over {} (per-replica budget {})\n",
            ensemble.replicas(),
            ensemble.mode(),
            ensemble.spec().kind,
            ensemble.spec().budget,
        ));
        push_health_lines(&mut report, &ensemble.health());
        if let Some(summary) = ensemble.replicate_summary() {
            report.push_str(&format!(
                "replica spread:   std dev {:.1}, 95% CI {:.1} .. {:.1}\n",
                summary.std_dev,
                summary.mean - summary.ci95_half_width,
                summary.mean + summary.ci95_half_width,
            ));
        }
    }
    if let Some(truth) = truth {
        report.push_str(&format!(
            "exact count:      {truth:.0}\nrelative error:   {:.2}%\n",
            relative_error_percent(truth, counter.estimate())
        ));
    }
    if let Some(circuit) = circuit {
        for (name, lines) in circuit.view_reports() {
            for line in lines {
                report.push_str(&format!("{:<18}{line}\n", format!("view {name}:")));
            }
        }
    }
    Ok(report)
}

/// Appends the ensemble health block to a report: nothing when every
/// replica is in service, a `health:` line plus one `quarantine:` line per
/// out-of-service replica when serving is degraded.
pub(crate) fn push_health_lines(report: &mut String, health: &abacus_metrics::HealthReport) {
    if !health.is_degraded() {
        return;
    }
    report.push_str(&format!("health:           {}\n", health.summary_line()));
    for record in &health.quarantined {
        report.push_str(&format!("quarantine:       {}\n", record.summary_line()));
    }
}

/// Pulls the next element, retrying up to the retry budget on transient
/// source errors (a [`abacus_stream::FaultySource`] I/O fault, a flaky
/// filesystem).  Returns the last error once the budget is exhausted.
pub(crate) fn pull_with_retry(
    source: &mut dyn ElementSource,
) -> Option<Result<StreamElement, abacus_stream::StreamIoError>> {
    let mut last = None;
    for _ in 0..RetryPolicy::default().attempts {
        match source.next_element() {
            Some(Err(error)) => last = Some(error),
            other => return other,
        }
    }
    last.map(Err)
}

/// The durable path behind `--checkpoint-dir`: every element is WAL-appended
/// before processing and a snapshot is taken every `--checkpoint-every`
/// elements, so a killed run resumes bit-identically with `abacus resume`.
fn run_checkpointed(
    input: &WorkloadInput,
    spec: abacus_core::EstimatorSpec,
    views: &[abacus_core::ViewKind],
    dir: &str,
    every: u64,
    plan: &FaultPlan,
) -> Result<String, CliError> {
    if every == 0 {
        return Err(CliError::InvalidValue {
            option: "checkpoint-every".to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }
    let manifest = RunManifest::new(spec, every).with_views(views);
    let mut checkpointer =
        Checkpointer::create(dir, manifest).map_err(|e| CliError::Persist(e.to_string()))?;

    let mut source = super::open_faulty_source(input, plan)?;
    let start = Instant::now();
    let mut offered = 0u64;
    while let Some(next) = pull_with_retry(&mut *source) {
        let element = next.map_err(|e| CliError::Io(e.to_string()))?;
        checkpointer
            .offer(element)
            .map_err(|e| CliError::Persist(e.to_string()))?;
        offered += 1;
    }
    let estimate = checkpointer
        .finish()
        .map_err(|e| CliError::Persist(e.to_string()))?;
    let throughput = Throughput::new(offered, start.elapsed());

    Ok(checkpoint_report(
        &checkpointer,
        &input.label(),
        offered,
        estimate,
        &throughput,
        None,
    ))
}

/// The supervised path behind `--ensemble --checkpoint-dir`: an
/// [`EnsembleSupervisor`] drives one [`Checkpointer`] per replica plus an
/// ensemble-level WAL, so a replica fault quarantines that replica (serving
/// continues degraded over the rest) and `abacus resume` rebuilds *every*
/// replica — quarantined ones via snapshot restore + WAL catch-up — to the
/// bit-exact state of a never-failed run.
fn run_supervised(
    input: &WorkloadInput,
    spec: abacus_core::EstimatorSpec,
    ensemble: (usize, abacus_core::EnsembleMode),
    views: &[abacus_core::ViewKind],
    dir: &str,
    every: u64,
    plan: &FaultPlan,
) -> Result<String, CliError> {
    if every == 0 {
        return Err(CliError::InvalidValue {
            option: "checkpoint-every".to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }
    if !views.is_empty() {
        return Err(CliError::InvalidValue {
            option: "views".to_string(),
            value: "(set)".to_string(),
            expected: "no --views when --ensemble and --checkpoint-dir are combined",
        });
    }
    let (replicas, mode) = ensemble;
    let manifest = RunManifest::new(spec, every).with_ensemble(replicas, mode);
    let mut supervisor =
        EnsembleSupervisor::create(dir, manifest).map_err(|e| CliError::Persist(e.to_string()))?;
    if !plan.replicas.is_empty() {
        supervisor = supervisor.with_replica_faults(plan.replicas.clone());
    }

    let mut source = super::open_faulty_source(input, plan)?;
    let start = Instant::now();
    let mut offered = 0u64;
    while let Some(next) = pull_with_retry(&mut *source) {
        let element = next.map_err(|e| CliError::Io(e.to_string()))?;
        supervisor
            .offer(element)
            .map_err(|e| CliError::Persist(e.to_string()))?;
        offered += 1;
    }
    let estimate = supervisor
        .finish()
        .map_err(|e| CliError::Persist(e.to_string()))?;
    let throughput = Throughput::new(offered, start.elapsed());

    Ok(supervised_report(
        &supervisor,
        &input.label(),
        offered,
        estimate,
        &throughput,
        None,
    ))
}

/// The recovery details `resume` reports (a checkpointer-free projection of
/// [`abacus_core::Recovery`], since the checkpointer moves out of it).
pub(crate) struct ResumeNote {
    /// Element position of the snapshot recovery restored from.
    pub snapshot_elements: u64,
    /// Elements replayed from the WAL.
    pub replayed: u64,
    /// Whether a torn final WAL record was dropped.
    pub dropped_torn_tail: bool,
    /// Whether recovery fell back past an unreadable newest snapshot.
    pub fell_back: bool,
}

/// The shared report block of `run --checkpoint-dir` and `resume`.
pub(crate) fn checkpoint_report(
    checkpointer: &Checkpointer,
    stream_label: &str,
    offered: u64,
    estimate: f64,
    throughput: &Throughput,
    recovery: Option<&ResumeNote>,
) -> String {
    let counter = checkpointer.estimator();
    let committed = checkpointer
        .committed()
        .ok()
        .flatten()
        .map_or_else(|| "-".to_string(), |c| c.to_string());
    let mut report = format!(
        "algorithm:        {}\n\
         stream:           {stream_label} ({offered} elements this run)\n\
         ingest:           checkpointed (WAL per element, snapshot every {})\n\
         checkpoint dir:   {}\n\
         committed:        {committed} elements durable\n\
         memory (edges):   {}\n\
         estimate:         {estimate:.1}\n\
         elapsed:          {:.3}s\n\
         throughput:       {:.0} edges/s\n",
        counter.name(),
        checkpointer.manifest().checkpoint_every,
        checkpointer.dir().display(),
        counter.memory_edges(),
        throughput.seconds,
        throughput.per_second(),
    );
    if let Some(recovery) = recovery {
        report.push_str(&format!(
            "resumed from:     snapshot at {} elements + {} WAL elements replayed\n",
            recovery.snapshot_elements, recovery.replayed,
        ));
        if recovery.dropped_torn_tail {
            report.push_str("wal tail:         torn final record dropped\n");
        }
        if recovery.fell_back {
            report.push_str("snapshot:         newest was unreadable; fell back to previous\n");
        }
    }
    let circuit = counter
        .as_any()
        .and_then(|any| any.downcast_ref::<super::BoxedCircuit>());
    let ensemble_any = match circuit {
        Some(circuit) => circuit.estimator().as_any(),
        None => counter.as_any(),
    };
    if let Some(ensemble) = ensemble_any.and_then(|any| any.downcast_ref::<Ensemble>()) {
        report.push_str(&format!(
            "ensemble:         {} x {} over {} (per-replica budget {})\n",
            ensemble.replicas(),
            ensemble.mode(),
            ensemble.spec().kind,
            ensemble.spec().budget,
        ));
    }
    if let Some(circuit) = circuit {
        for (name, lines) in circuit.view_reports() {
            for line in lines {
                report.push_str(&format!("{:<18}{line}\n", format!("view {name}:")));
            }
        }
    }
    report
}

/// The recovery details a supervised `resume` reports (a projection of
/// [`abacus_core::SupervisorRecovery`], since the supervisor moves out of
/// it).
pub(crate) struct SupervisedResumeNote {
    /// Per-replica recovery detail, in replica order.
    pub replicas: Vec<abacus_core::ReplicaRecovery>,
    /// Whether a torn final record was dropped from the ensemble log.
    pub dropped_torn_tail: bool,
    /// Whether the ensemble watermark was missing/corrupt and rebuilt from
    /// the durable log.
    pub watermark_rebuilt: bool,
}

/// The shared report block of the supervised `run --ensemble
/// --checkpoint-dir` path and a supervised `resume`.
pub(crate) fn supervised_report(
    supervisor: &EnsembleSupervisor,
    stream_label: &str,
    offered: u64,
    estimate: f64,
    throughput: &Throughput,
    recovery: Option<&SupervisedResumeNote>,
) -> String {
    let spec = supervisor.manifest().spec;
    let mut report = format!(
        "algorithm:        ENSEMBLE-{} (supervised)\n\
         stream:           {stream_label} ({offered} elements this run)\n\
         ingest:           checkpointed (ensemble WAL + per-replica snapshots every {})\n\
         checkpoint dir:   {}\n\
         committed:        {} elements durable\n\
         memory (edges):   {}\n\
         estimate:         {estimate:.1}\n\
         elapsed:          {:.3}s\n\
         throughput:       {:.0} edges/s\n\
         ensemble:         {} x {} over {} (per-replica budget {})\n",
        supervisor.mode(),
        supervisor.manifest().checkpoint_every,
        supervisor.dir().display(),
        supervisor.offered(),
        supervisor.memory_edges(),
        throughput.seconds,
        throughput.per_second(),
        supervisor.replicas(),
        supervisor.mode(),
        spec.kind,
        spec.budget,
    );
    push_health_lines(&mut report, &supervisor.health());
    if let Some(summary) = supervisor.replicate_summary() {
        report.push_str(&format!(
            "replica spread:   std dev {:.1}, 95% CI {:.1} .. {:.1}\n",
            summary.std_dev,
            summary.mean - summary.ci95_half_width,
            summary.mean + summary.ci95_half_width,
        ));
    }
    if let Some(recovery) = recovery {
        for replica in &recovery.replicas {
            report.push_str(&format!(
                "replica {} resume: snapshot at {} elements + {} own WAL + {} ensemble \
                 catch-up\n",
                replica.replica, replica.snapshot_elements, replica.replayed, replica.caught_up,
            ));
        }
        if recovery.dropped_torn_tail {
            report.push_str("wal tail:         torn final record dropped\n");
        }
        if recovery.watermark_rebuilt {
            report.push_str("watermark:        missing or unreadable; rebuilt from the log\n");
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::io::write_stream_to_path;
    use abacus_stream::StreamElement;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    fn biclique_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("abacus_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut stream = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        write_stream_to_path(&stream, &path).unwrap();
        path
    }

    #[test]
    fn every_algorithm_runs_and_reports_an_estimate() {
        let path = biclique_file("k33.txt");
        let path_str = path.to_str().unwrap();
        for algorithm in ["abacus", "parabacus", "fleet", "cas", "exact"] {
            let out = run(&args(&[
                "--input",
                path_str,
                "--algorithm",
                algorithm,
                "--budget",
                "100",
                "--threads",
                "2",
            ]))
            .unwrap();
            assert!(out.contains("estimate:"), "{algorithm}: {out}");
            assert!(out.contains("throughput:"), "{algorithm}: {out}");
            assert!(
                out.contains("ingest:           streamed"),
                "{algorithm}: {out}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_input_streams_and_matches_text() {
        use abacus_stream::binary::write_binary_stream_to_path;
        let text_path = biclique_file("k33_text.txt");
        let dir = std::env::temp_dir().join("abacus_cli_run_test");
        let binary_path = dir.join("k33.abst");
        let stream = abacus_stream::io::read_stream_from_path(&text_path).unwrap();
        write_binary_stream_to_path(&stream, &binary_path).unwrap();
        let report = |path: &std::path::Path, chunk: &str| {
            run(&args(&[
                "--input",
                path.to_str().unwrap(),
                "--budget",
                "100",
                "--chunk",
                chunk,
            ]))
            .unwrap()
        };
        // The K_{3,3} count is exact at a covering budget: all four
        // source/chunk combinations agree.
        for chunk in ["1", "7"] {
            let text = report(&text_path, chunk);
            let binary = report(&binary_path, chunk);
            assert!(text.contains("estimate:         9.0"), "{text}");
            assert!(binary.contains("estimate:         9.0"), "{binary}");
            assert!(binary.contains(&format!("ingest:           streamed (chunk {chunk})")));
        }
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&binary_path).ok();
    }

    #[test]
    fn ground_truth_reports_the_materializing_fallback() {
        let path = biclique_file("k33_fallback.txt");
        let out = run(&args(&[
            "--input",
            path.to_str().unwrap(),
            "--budget",
            "100",
            "--ground-truth",
        ]))
        .unwrap();
        assert!(out.contains("ingest:           materialized"), "{out}");
        assert!(out.contains("exact count:      9"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipeline_depth_is_parsed_and_validated() {
        let path = biclique_file("pipeline.txt");
        let path_str = path.to_str().unwrap();
        for depth in ["1", "2", "4"] {
            let out = run(&args(&[
                "--input",
                path_str,
                "--algorithm",
                "parabacus",
                "--budget",
                "100",
                "--batch",
                "2",
                "--threads",
                "2",
                "--pipeline-depth",
                depth,
            ]))
            .unwrap();
            // Budget covers the stream: the K_{3,3} count is exact at every
            // depth, pipelined or alternating.
            assert!(
                out.contains("estimate:         9.0"),
                "depth {depth}: {out}"
            );
        }
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--algorithm",
                "parabacus",
                "--pipeline-depth",
                "0",
            ])),
            Err(CliError::InvalidValue { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_modes_are_parsed_and_leave_estimates_unchanged() {
        let path = biclique_file("snapshot.txt");
        let path_str = path.to_str().unwrap();
        for algorithm in ["abacus", "parabacus"] {
            for mode in ["on", "off", "auto"] {
                let out = run(&args(&[
                    "--input",
                    path_str,
                    "--algorithm",
                    algorithm,
                    "--budget",
                    "100",
                    "--snapshot",
                    mode,
                ]))
                .unwrap();
                // Budget covers the stream: the K_{3,3} count is exact with
                // every backing.
                assert!(
                    out.contains("estimate:         9.0"),
                    "{algorithm} --snapshot {mode}: {out}"
                );
            }
        }
        assert!(matches!(
            run(&args(&["--input", path_str, "--snapshot", "sometimes"])),
            Err(CliError::InvalidValue { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exact_mode_and_ground_truth_agree_on_k33() {
        let path = biclique_file("k33_truth.txt");
        // K_{3,3} contains C(3,2)² = 9 butterflies.
        let out = run(&args(&[
            "--input",
            path.to_str().unwrap(),
            "--algorithm",
            "exact",
            "--ground-truth",
        ]))
        .unwrap();
        assert!(out.contains("estimate:         9.0"));
        assert!(out.contains("exact count:      9"));
        assert!(out.contains("relative error:   0.00%"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_algorithm_and_budget_are_rejected() {
        let path = biclique_file("rejects.txt");
        let path_str = path.to_str().unwrap();
        for bad in [
            &["--input", path_str, "--algorithm", "magic"][..],
            &["--input", path_str, "--budget", "1"],
            &["--input", path_str, "--budget", "minus one"],
            &["--input", path_str, "--threads", "0"],
            &["--input", path_str, "--ensemble", "0"],
            &["--input", path_str, "--ensemble", "four"],
            &[
                "--input",
                path_str,
                "--ensemble",
                "2",
                "--ensemble-mode",
                "shard",
            ],
        ] {
            match run(&args(bad)) {
                Err(CliError::InvalidValue { expected, .. }) => {
                    assert!(!expected.is_empty(), "{bad:?}");
                }
                other => panic!("{bad:?}: expected InvalidValue, got {other:?}"),
            }
        }
        // The listed-choices message surfaces the full canonical name list.
        match run(&args(&["--input", path_str, "--algorithm", "magic"])) {
            Err(err) => {
                let message = err.to_string();
                for name in ["abacus", "parabacus", "local", "fleet", "cas", "exact"] {
                    assert!(message.contains(name), "{message}");
                }
            }
            Ok(_) => panic!("unknown algorithm must be rejected"),
        }
        // --ensemble-mode without --ensemble has no defensible default K.
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--ensemble-mode",
                "partition"
            ])),
            Err(CliError::MissingOption(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn views_report_one_line_each_and_reject_unknown_names() {
        let path = biclique_file("views.txt");
        let path_str = path.to_str().unwrap();
        let out = run(&args(&[
            "--input",
            path_str,
            "--algorithm",
            "exact",
            "--views",
            "all",
        ]))
        .unwrap();
        // K_{3,3}: 9 butterflies, every edge supports 4 of them.
        assert!(out.contains("estimate:         9.0"), "{out}");
        assert!(
            out.contains("view peredge:     9 live edges, total support 36"),
            "{out}"
        );
        assert!(out.contains("view vertex:      9 butterflies"), "{out}");
        assert!(out.contains("view clustering:  coefficient"), "{out}");
        assert!(
            out.contains("view bitruss:     1 tiers, innermost 4-bitruss (9 edges)"),
            "{out}"
        );
        assert!(out.contains("view anomaly:"), "{out}");

        // A subset subscribes only the named views, in the given order.
        let subset = run(&args(&[
            "--input",
            path_str,
            "--views",
            "clustering,vertex",
        ]))
        .unwrap();
        assert!(!subset.contains("view peredge:"), "{subset}");
        assert!(subset.contains("view clustering:"), "{subset}");
        assert!(subset.contains("view vertex:"), "{subset}");

        // Views compose with ensembles: the circuit wraps the ensemble and
        // both report blocks appear.
        let combined = run(&args(&[
            "--input",
            path_str,
            "--budget",
            "100",
            "--ensemble",
            "2",
            "--views",
            "vertex",
        ]))
        .unwrap();
        assert!(
            combined.contains("ensemble:         2 x replicate"),
            "{combined}"
        );
        assert!(
            combined.contains("view vertex:      9 butterflies"),
            "{combined}"
        );

        match run(&args(&["--input", path_str, "--views", "peredge,nope"])) {
            Err(CliError::InvalidValue {
                option, expected, ..
            }) => {
                assert_eq!(option, "views");
                assert!(expected.contains("bitruss"), "{expected}");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn local_algorithm_runs_through_the_registry() {
        let path = biclique_file("local.txt");
        let out = run(&args(&[
            "--input",
            path.to_str().unwrap(),
            "--algorithm",
            "local",
            "--budget",
            "100",
        ]))
        .unwrap();
        assert!(out.contains("algorithm:        ABACUS-local"), "{out}");
        assert!(out.contains("estimate:         9.0"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ensemble_reports_replicas_and_matches_bare_at_k1() {
        let path = biclique_file("ensemble.txt");
        let path_str = path.to_str().unwrap();
        let bare = run(&args(&["--input", path_str, "--budget", "100"])).unwrap();
        let one = run(&args(&[
            "--input",
            path_str,
            "--budget",
            "100",
            "--ensemble",
            "1",
        ]))
        .unwrap();
        // Same estimate line, bit for bit (K=1 replicate ≡ bare estimator).
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("estimate:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(line(&bare), line(&one));
        assert!(
            one.contains("ensemble:         1 x replicate over abacus"),
            "{one}"
        );
        assert!(one.contains("replica spread:"), "{one}");

        let four = run(&args(&[
            "--input",
            path_str,
            "--budget",
            "25",
            "--ensemble",
            "4",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(
            four.contains("ensemble:         4 x replicate over abacus"),
            "{four}"
        );
        assert!(four.contains("(per-replica budget 25)"), "{four}");

        let sharded = run(&args(&[
            "--input",
            path_str,
            "--budget",
            "100",
            "--ensemble",
            "2",
            "--ensemble-mode",
            "partition",
        ]))
        .unwrap();
        assert!(
            sharded.contains("algorithm:        ENSEMBLE-partition"),
            "{sharded}"
        );
        // Partition mode sums per-shard local counts; no CI line.
        assert!(!sharded.contains("replica spread:"), "{sharded}");
        std::fs::remove_file(&path).ok();
    }

    /// A fully dynamic stream large enough to cross several checkpoint
    /// cadences: 500 distinct inserts followed by deletions of every third
    /// inserted edge.
    fn mixed_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("abacus_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut stream = Vec::new();
        for l in 0..20u32 {
            for r in 100..125u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        for i in (0..500usize).step_by(3) {
            stream.push(StreamElement::delete(stream[i].edge));
        }
        write_stream_to_path(&stream, &path).unwrap();
        path
    }

    #[test]
    fn checkpointed_run_matches_the_plain_path_and_reports_durability() {
        let path = mixed_file("ckpt_parity.txt");
        let path_str = path.to_str().unwrap();
        let dir = std::env::temp_dir()
            .join("abacus_cli_ckpt")
            .join(format!("parity-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let common = ["--input", path_str, "--budget", "300", "--seed", "7"];
        let plain = run(&args(&common)).unwrap();
        let mut with_ckpt = common.to_vec();
        with_ckpt.extend([
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "100",
        ]);
        let durable = run(&args(&with_ckpt)).unwrap();
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("estimate:"))
                .unwrap()
                .to_string()
        };
        // The durable driver feeds the estimator element by element exactly
        // like the streamed one: the estimate is bit-identical.
        assert_eq!(line(&plain), line(&durable));
        assert!(
            durable
                .contains("ingest:           checkpointed (WAL per element, snapshot every 100)"),
            "{durable}"
        );
        // 500 inserts + 167 deletions, all durable after the final checkpoint.
        assert!(
            durable.contains("committed:        667 elements durable"),
            "{durable}"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_plans_are_validated_and_degrade_in_memory_ensembles() {
        let path = mixed_file("fault_plan.txt");
        let path_str = path.to_str().unwrap();
        // Malformed grammar is a typed error naming the option.
        match run(&args(&["--input", path_str, "--fault-plan", "explode@7"])) {
            Err(CliError::InvalidValue { option, .. }) => assert_eq!(option, "fault-plan"),
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        // Replica faults without an ensemble have nothing to quarantine.
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--fault-plan",
                "panic:replica=0@5",
            ])),
            Err(CliError::InvalidValue { .. })
        ));
        // Ground truth needs the unfaulted stream.
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--fault-plan",
                "corrupt@5",
                "--ground-truth",
            ])),
            Err(CliError::InvalidValue { .. })
        ));

        // An injected panic quarantines replica 1; the run completes and the
        // report carries the degraded health block.
        let out = run(&args(&[
            "--input",
            path_str,
            "--budget",
            "300",
            "--ensemble",
            "3",
            "--fault-plan",
            "panic:replica=1@100",
        ]))
        .unwrap();
        assert!(
            out.contains("health:           2/3 replicas healthy (degraded)"),
            "{out}"
        );
        assert!(
            out.contains("quarantine:       replica 1 quarantined at element 100"),
            "{out}"
        );
        assert!(out.contains("replica spread:"), "{out}");

        // The plain (non-durable) path aborts on the first source error
        // with a typed I/O failure; only the durable loops retry pulls.
        match run(&args(&["--input", path_str, "--fault-plan", "io@3x2"])) {
            Err(CliError::Io(message)) => {
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected Io, got {other:?}"),
        }

        // The durable ingest loop retries transient pulls within the default
        // budget, so the same fault plan completes there.
        let dir = std::env::temp_dir()
            .join("abacus_cli_ckpt")
            .join(format!("faulty-source-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let durable = run(&args(&[
            "--input",
            path_str,
            "--budget",
            "300",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "200",
            "--fault-plan",
            "io@3x2,corrupt@7,stall@5x1",
        ]))
        .unwrap();
        assert!(
            durable.contains("committed:        667 elements durable"),
            "{durable}"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn supervised_run_degrades_and_resume_rejoins_bit_identically() {
        let path = mixed_file("supervised.txt");
        let path_str = path.to_str().unwrap();
        let base = std::env::temp_dir()
            .join("abacus_cli_supervised")
            .join(format!("pid-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let clean_dir = base.join("clean");
        let faulty_dir = base.join("faulty");
        let common = [
            "--input",
            path_str,
            "--budget",
            "300",
            "--seed",
            "9",
            "--ensemble",
            "3",
            "--checkpoint-every",
            "100",
        ];

        // Reference: a supervised run that never fails.
        let mut clean_args = common.to_vec();
        let clean_str = clean_dir.to_str().unwrap();
        clean_args.extend(["--checkpoint-dir", clean_str]);
        let clean = run(&args(&clean_args)).unwrap();
        assert!(
            clean.contains("algorithm:        ENSEMBLE-replicate (supervised)"),
            "{clean}"
        );
        assert!(!clean.contains("health:"), "{clean}");

        // Faulty: replica 1 panics mid-stream; the run still completes,
        // serving degraded over the other two replicas.
        let mut faulty_args = common.to_vec();
        let faulty_str = faulty_dir.to_str().unwrap();
        faulty_args.extend([
            "--checkpoint-dir",
            faulty_str,
            "--fault-plan",
            "panic:replica=1@150",
        ]);
        let degraded = run(&args(&faulty_args)).unwrap();
        assert!(
            degraded.contains("health:           2/3 replicas healthy (degraded)"),
            "{degraded}"
        );
        assert!(
            degraded.contains("quarantine:       replica 1 quarantined at element 150"),
            "{degraded}"
        );

        // Resume rebuilds replica 1 from its snapshot + ensemble-WAL
        // catch-up: the rejoined run serves healthy with the reference's
        // exact estimate.
        let resumed = super::super::resume::run(&args(&[
            "--checkpoint-dir",
            faulty_str,
            "--input",
            path_str,
        ]))
        .unwrap();
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("estimate:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(line(&clean), line(&resumed), "{resumed}");
        assert!(!resumed.contains("health:"), "{resumed}");
        assert!(resumed.contains("replica 1 resume:"), "{resumed}");

        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_options_are_validated() {
        let path = mixed_file("ckpt_validate.txt");
        let path_str = path.to_str().unwrap();
        let dir = std::env::temp_dir()
            .join("abacus_cli_ckpt")
            .join(format!("validate-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--checkpoint-dir",
                &dir_str,
                "--checkpoint-every",
                "0",
            ])),
            Err(CliError::InvalidValue { .. })
        ));
        // RunManifest models either an ensemble or a circuit, not a circuit
        // wrapping an ensemble; the combination is rejected up front.
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--checkpoint-dir",
                &dir_str,
                "--ensemble",
                "2",
                "--views",
                "vertex",
            ])),
            Err(CliError::InvalidValue { .. })
        ));
        // Reusing a checkpoint directory would silently interleave two runs'
        // WALs; creation fails closed.
        run(&args(&[
            "--input",
            path_str,
            "--checkpoint-dir",
            &dir_str,
            "--checkpoint-every",
            "100",
        ]))
        .unwrap();
        assert!(matches!(
            run(&args(&[
                "--input",
                path_str,
                "--checkpoint-dir",
                &dir_str,
                "--checkpoint-every",
                "100",
            ])),
            Err(CliError::Persist(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }
}
