//! The CLI subcommands.
//!
//! Every command is a pure function from parsed [`Arguments`] to the text it
//! prints, which keeps the commands unit-testable and the binary a three-line
//! `main`.

pub mod accuracy;
pub mod generate;
pub mod run;
pub mod stats;

use crate::args::Arguments;
use crate::error::CliError;
use abacus_stream::{io::read_stream_from_path, Dataset, GraphStream};

/// Parses a `--dataset` name into one of the four analog datasets.
pub(crate) fn parse_dataset(name: &str) -> Result<Dataset, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "movielens" | "movielens-like" => Ok(Dataset::MovielensLike),
        "livejournal" | "livejournal-like" => Ok(Dataset::LivejournalLike),
        "trackers" | "trackers-like" => Ok(Dataset::TrackersLike),
        "orkut" | "orkut-like" => Ok(Dataset::OrkutLike),
        other => Err(CliError::InvalidValue {
            option: "dataset".to_string(),
            value: other.to_string(),
            expected: "movielens, livejournal, trackers, or orkut",
        }),
    }
}

/// A workload described by the common `--input` / `--dataset` options.
#[derive(Debug)]
pub(crate) struct Workload {
    /// Short label for result lines ("stream.txt" or "Movielens-like").
    pub label: String,
    /// The stream elements.
    pub stream: GraphStream,
}

/// Loads the stream from `--input <path>`, or generates it from `--dataset`
/// (with `--alpha`, `--scale`, `--trial`).
pub(crate) fn load_workload(args: &Arguments) -> Result<Workload, CliError> {
    if let Some(path) = args.get("input") {
        let stream = read_stream_from_path(path).map_err(|e| CliError::Io(e.to_string()))?;
        return Ok(Workload {
            label: path.to_string(),
            stream,
        });
    }
    let Some(name) = args.get("dataset") else {
        return Err(CliError::MissingOption("input (or --dataset)"));
    };
    let dataset = parse_dataset(name)?;
    let alpha = parse_alpha(args)?;
    let scale: u32 = args.parsed_or("scale", 1, "a positive integer")?;
    let trial: u64 = args.parsed_or("trial", 0, "an unsigned integer")?;
    if scale == 0 {
        return Err(CliError::InvalidValue {
            option: "scale".to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }
    let stream = dataset.spec().scaled(scale).stream(alpha, trial);
    Ok(Workload {
        label: format!("{} (alpha {alpha}, scale {scale})", dataset.name()),
        stream,
    })
}

/// Parses and validates the `--alpha` deletion ratio (default 0.2).
pub(crate) fn parse_alpha(args: &Arguments) -> Result<f64, CliError> {
    let alpha: f64 = args.parsed_or("alpha", 0.2, "a fraction in [0, 1)")?;
    if !(0.0..1.0).contains(&alpha) {
        return Err(CliError::InvalidValue {
            option: "alpha".to_string(),
            value: alpha.to_string(),
            expected: "a fraction in [0, 1)",
        });
    }
    Ok(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    #[test]
    fn dataset_names_are_recognised_case_insensitively() {
        assert_eq!(parse_dataset("MovieLens").unwrap(), Dataset::MovielensLike);
        assert_eq!(parse_dataset("orkut-like").unwrap(), Dataset::OrkutLike);
        assert!(parse_dataset("imdb").is_err());
    }

    #[test]
    fn workload_from_dataset_respects_alpha_and_scale() {
        let workload = load_workload(&args(&[
            "--dataset",
            "movielens",
            "--alpha",
            "0.0",
            "--scale",
            "1",
        ]))
        .unwrap();
        assert!(workload.label.contains("Movielens"));
        assert_eq!(
            workload.stream.len(),
            Dataset::MovielensLike.spec().edges // no deletions
        );
    }

    #[test]
    fn workload_requires_input_or_dataset() {
        let err = load_workload(&args(&[])).unwrap_err();
        assert!(matches!(err, CliError::MissingOption(_)));
    }

    #[test]
    fn alpha_out_of_range_is_rejected() {
        let err = parse_alpha(&args(&["--alpha", "1.5"])).unwrap_err();
        assert!(matches!(err, CliError::InvalidValue { .. }));
        assert!((parse_alpha(&args(&[])).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn missing_input_file_is_an_io_error() {
        let err = load_workload(&args(&["--input", "/definitely/not/here.txt"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
