//! The CLI subcommands.
//!
//! Every command is a pure function from parsed [`Arguments`] to the text it
//! prints, which keeps the commands unit-testable and the binary a three-line
//! `main`.

pub mod accuracy;
pub mod generate;
pub mod resume;
pub mod run;
pub mod stats;

use crate::args::Arguments;
use crate::error::CliError;
use abacus_core::engine::{Ensemble, EnsembleMode, EstimatorKind, EstimatorSpec};
use abacus_core::{ButterflyCounter, Circuit, SnapshotMode, ViewKind};
use abacus_stream::fault::{FaultPlan, ReplicaFault};
use abacus_stream::{
    open_path_source, Dataset, DatasetSpec, ElementSource, FaultySource, GraphStream, IterSource,
};

/// Parses the common estimator options (`--algorithm`, `--budget`, `--seed`,
/// `--batch`, `--threads`, `--pipeline-depth`, `--snapshot`) into an
/// [`EstimatorSpec`] — the one factory path shared by `run` and `accuracy`,
/// and by the bench harness.
///
/// Every invalid value comes back as a [`CliError::InvalidValue`] listing
/// the accepted choices; nothing in here panics on user input.
pub(crate) fn parse_estimator_spec(
    args: &Arguments,
    default_budget: usize,
) -> Result<EstimatorSpec, CliError> {
    let kind =
        EstimatorKind::parse(args.get("algorithm").unwrap_or("abacus")).map_err(|expected| {
            CliError::InvalidValue {
                option: "algorithm".to_string(),
                value: args.get("algorithm").unwrap_or_default().to_string(),
                expected,
            }
        })?;
    let budget: usize = args.parsed_or("budget", default_budget, "a positive integer")?;
    let batch: usize = args.parsed_or("batch", 500, "a positive integer")?;
    let threads: usize = args.parsed_or(
        "threads",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        "a positive integer",
    )?;
    let seed: u64 = args.parsed_or("seed", 0, "an unsigned integer")?;
    let pipeline_depth: usize = args.parsed_or("pipeline-depth", 2, "a positive integer")?;
    // Frozen CSR counting snapshot ablation knob (ABACUS/PARABACUS only).
    let snapshot: SnapshotMode =
        args.parsed_or("snapshot", SnapshotMode::Auto, "on, off, or auto")?;
    if budget < 2 {
        return Err(CliError::InvalidValue {
            option: "budget".to_string(),
            value: budget.to_string(),
            expected: "an integer of at least 2",
        });
    }
    if batch == 0 || threads == 0 || pipeline_depth == 0 {
        let option = if batch == 0 {
            "batch"
        } else if threads == 0 {
            "threads"
        } else {
            "pipeline-depth"
        };
        return Err(CliError::InvalidValue {
            option: option.to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }
    Ok(EstimatorSpec::new(kind, budget)
        .with_seed(seed)
        .with_batch_size(batch)
        .with_threads(threads)
        .with_pipeline_depth(pipeline_depth)
        .with_snapshot(snapshot))
}

/// Parses `--ensemble K` and `--ensemble-mode replicate|partition`.
///
/// Returns `None` when no ensemble was requested (the bare-estimator path).
/// `--ensemble 1` is accepted — it builds a one-replica ensemble, which is
/// bit-identical to the bare estimator.
pub(crate) fn parse_ensemble(args: &Arguments) -> Result<Option<(usize, EnsembleMode)>, CliError> {
    let mode = match args.get("ensemble-mode") {
        None => EnsembleMode::default(),
        Some(raw) => EnsembleMode::parse(raw).map_err(|expected| CliError::InvalidValue {
            option: "ensemble-mode".to_string(),
            value: raw.to_string(),
            expected,
        })?,
    };
    match args.get("ensemble") {
        None => {
            if args.get("ensemble-mode").is_some() {
                return Err(CliError::MissingOption(
                    "ensemble (required when --ensemble-mode is set)",
                ));
            }
            Ok(None)
        }
        Some(raw) => {
            let replicas: usize = raw.parse().map_err(|_| CliError::InvalidValue {
                option: "ensemble".to_string(),
                value: raw.to_string(),
                expected: "a positive integer",
            })?;
            if replicas == 0 {
                return Err(CliError::InvalidValue {
                    option: "ensemble".to_string(),
                    value: raw.to_string(),
                    expected: "a positive integer",
                });
            }
            Ok(Some((replicas, mode)))
        }
    }
}

/// Parses `--fault-plan` (the compact [`FaultPlan::parse`] grammar, e.g.
/// `panic:replica=1@250,io@10x2`) into a deterministic fault plan.
///
/// Returns an empty plan when the option is absent.  Replica faults only
/// make sense against an ensemble; the caller validates that combination
/// because only it knows whether `--ensemble` was given.
pub(crate) fn parse_fault_plan(args: &Arguments) -> Result<FaultPlan, CliError> {
    match args.get("fault-plan") {
        None => Ok(FaultPlan::new()),
        Some(raw) => FaultPlan::parse(raw).map_err(|detail| CliError::InvalidValue {
            option: "fault-plan".to_string(),
            value: format!("{raw} ({detail})"),
            expected: "comma-separated entries: panic:replica=<i>@<n>, \
                       io:replica=<i>@<n>x<f>, io@<n>x<f>, corrupt@<n>, stall@<n>x<ms>",
        }),
    }
}

/// Wraps the workload's source in a [`FaultySource`] when the plan carries
/// source faults; otherwise opens it untouched.
pub(crate) fn open_faulty_source(
    input: &WorkloadInput,
    plan: &FaultPlan,
) -> Result<Box<dyn ElementSource>, CliError> {
    let source = input.open()?;
    if plan.source.is_empty() {
        Ok(source)
    } else {
        Ok(Box::new(FaultySource::new(source, plan)))
    }
}

/// The circuit type `run --views` builds, spelled out once so the report
/// path can downcast [`ButterflyCounter::as_any`] back to it.
pub(crate) type BoxedCircuit = Circuit<Box<dyn ButterflyCounter + Send>>;

/// Parses `--views` (a comma-separated [`ViewKind`] list, e.g.
/// `peredge,vertex,anomaly`, or `all`) into the kinds to subscribe.
///
/// Returns an empty list when the option is absent (no circuit is built).
pub(crate) fn parse_views(args: &Arguments) -> Result<Vec<ViewKind>, CliError> {
    match args.get("views") {
        None => Ok(Vec::new()),
        Some(raw) => ViewKind::parse_list(raw).map_err(|expected| CliError::InvalidValue {
            option: "views".to_string(),
            value: raw.to_string(),
            expected,
        }),
    }
}

/// Builds the estimator a command's options describe: the bare spec, a
/// K-replica [`Ensemble`] fanning out over up to `spec.threads` workers,
/// and/or a delta [`Circuit`] with the requested views subscribed — the one
/// construction point `run` and `accuracy` share.
///
/// A non-empty `replica_faults` list arms supervision on the ensemble: the
/// listed faults fire deterministically, quarantining their replicas while
/// the rest keep serving (callers reject replica faults without
/// `--ensemble` before getting here).
pub(crate) fn build_counter(
    spec: EstimatorSpec,
    ensemble: Option<(usize, EnsembleMode)>,
    views: &[ViewKind],
    replica_faults: Vec<ReplicaFault>,
) -> Box<dyn ButterflyCounter + Send> {
    let base: Box<dyn ButterflyCounter + Send> = match ensemble {
        None if views.is_empty() => return spec.build(),
        None => return spec.build_with_views(views),
        Some((replicas, mode)) => {
            let mut ensemble = Ensemble::new(spec, replicas, mode)
                .expect("the option parser rejects zero replicas")
                .with_fan_out_threads(spec.threads);
            if !replica_faults.is_empty() {
                ensemble = ensemble.with_replica_faults(replica_faults);
            }
            Box::new(ensemble)
        }
    };
    if views.is_empty() {
        return base;
    }
    let mut circuit = Circuit::new(base);
    for &kind in views {
        circuit
            .subscribe_view(kind.build())
            .unwrap_or_else(|_| unreachable!("circuits accept every view"));
    }
    Box::new(circuit)
}

/// Parses a `--dataset` name into one of the four analog datasets.
pub(crate) fn parse_dataset(name: &str) -> Result<Dataset, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "movielens" | "movielens-like" => Ok(Dataset::MovielensLike),
        "livejournal" | "livejournal-like" => Ok(Dataset::LivejournalLike),
        "trackers" | "trackers-like" => Ok(Dataset::TrackersLike),
        "orkut" | "orkut-like" => Ok(Dataset::OrkutLike),
        other => Err(CliError::InvalidValue {
            option: "dataset".to_string(),
            value: other.to_string(),
            expected: "movielens, livejournal, trackers, or orkut",
        }),
    }
}

/// A workload described by the common `--input` / `--dataset` options.
///
/// The description is cheap and re-openable: [`open`](Self::open) yields a
/// fresh pull-based source each call (O(budget + chunk) ingest memory for
/// files), while [`materialize`](Self::materialize) is the explicit
/// O(stream)-memory fallback for consumers that need the whole workload
/// (ground truth).
#[derive(Debug, Clone)]
pub(crate) enum WorkloadInput {
    /// A stream file on disk (text or `ABST1` binary, sniffed per open).
    File {
        /// The `--input` path.
        path: String,
    },
    /// A generated dataset analog (materialized in memory per open — the
    /// generators are in-memory; files are the bounded-memory path).
    Dataset {
        /// The (scaled) generator specification.
        spec: DatasetSpec,
        /// Deletion ratio α.
        alpha: f64,
        /// Trial seed offset.
        trial: u64,
        /// Scale factor (for the label only; `spec` is already scaled).
        scale: u32,
    },
}

impl WorkloadInput {
    /// Parses the common `--input` / `--dataset` (+ `--alpha`, `--scale`,
    /// `--trial`) options.
    pub fn from_args(args: &Arguments) -> Result<Self, CliError> {
        if let Some(path) = args.get("input") {
            return Ok(WorkloadInput::File {
                path: path.to_string(),
            });
        }
        let Some(name) = args.get("dataset") else {
            return Err(CliError::MissingOption("input (or --dataset)"));
        };
        let dataset = parse_dataset(name)?;
        let alpha = parse_alpha(args)?;
        let scale: u32 = args.parsed_or("scale", 1, "a positive integer")?;
        let trial: u64 = args.parsed_or("trial", 0, "an unsigned integer")?;
        if scale == 0 {
            return Err(CliError::InvalidValue {
                option: "scale".to_string(),
                value: "0".to_string(),
                expected: "a positive integer",
            });
        }
        Ok(WorkloadInput::Dataset {
            spec: dataset.spec().scaled(scale),
            alpha,
            trial,
            scale,
        })
    }

    /// Short label for result lines ("stream.txt" or "Movielens-like ...").
    pub fn label(&self) -> String {
        match self {
            WorkloadInput::File { path } => path.clone(),
            WorkloadInput::Dataset {
                spec, alpha, scale, ..
            } => {
                format!("{} (alpha {alpha}, scale {scale})", spec.dataset.name())
            }
        }
    }

    /// Whether the workload is a file on disk — the case where pull-based
    /// ingestion genuinely bounds memory (generated datasets materialize
    /// inside [`open`](Self::open), since the generators are in-memory).
    pub fn is_file(&self) -> bool {
        matches!(self, WorkloadInput::File { .. })
    }

    /// Opens a fresh pull-based source over the workload.
    pub fn open(&self) -> Result<Box<dyn ElementSource>, CliError> {
        match self {
            WorkloadInput::File { path } => {
                open_path_source(path).map_err(|e| CliError::Io(e.to_string()))
            }
            WorkloadInput::Dataset {
                spec, alpha, trial, ..
            } => Ok(Box::new(IterSource::new(
                spec.stream(*alpha, *trial).into_iter(),
            ))),
        }
    }

    /// Materializes the whole workload in memory (the O(stream) path).
    pub fn materialize(&self) -> Result<GraphStream, CliError> {
        let mut source = self.open()?;
        abacus_stream::read_all(&mut source).map_err(|e| CliError::Io(e.to_string()))
    }
}

/// Parses and validates the `--alpha` deletion ratio (default 0.2).
pub(crate) fn parse_alpha(args: &Arguments) -> Result<f64, CliError> {
    let alpha: f64 = args.parsed_or("alpha", 0.2, "a fraction in [0, 1)")?;
    if !(0.0..1.0).contains(&alpha) {
        return Err(CliError::InvalidValue {
            option: "alpha".to_string(),
            value: alpha.to_string(),
            expected: "a fraction in [0, 1)",
        });
    }
    Ok(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    #[test]
    fn dataset_names_are_recognised_case_insensitively() {
        assert_eq!(parse_dataset("MovieLens").unwrap(), Dataset::MovielensLike);
        assert_eq!(parse_dataset("orkut-like").unwrap(), Dataset::OrkutLike);
        assert!(parse_dataset("imdb").is_err());
    }

    #[test]
    fn workload_from_dataset_respects_alpha_and_scale() {
        let input = WorkloadInput::from_args(&args(&[
            "--dataset",
            "movielens",
            "--alpha",
            "0.0",
            "--scale",
            "1",
        ]))
        .unwrap();
        assert!(input.label().contains("Movielens"));
        assert_eq!(
            input.materialize().unwrap().len(),
            Dataset::MovielensLike.spec().edges // no deletions
        );
    }

    #[test]
    fn workload_requires_input_or_dataset() {
        let err = WorkloadInput::from_args(&args(&[])).unwrap_err();
        assert!(matches!(err, CliError::MissingOption(_)));
    }

    #[test]
    fn reopening_a_workload_yields_identical_streams() {
        let input =
            WorkloadInput::from_args(&args(&["--dataset", "movielens", "--alpha", "0.2"])).unwrap();
        let first = input.materialize().unwrap();
        let second = input.materialize().unwrap();
        assert_eq!(first, second, "open() must be deterministic per workload");
        assert_eq!(first, Dataset::MovielensLike.spec().stream(0.2, 0));
    }

    #[test]
    fn alpha_out_of_range_is_rejected() {
        let err = parse_alpha(&args(&["--alpha", "1.5"])).unwrap_err();
        assert!(matches!(err, CliError::InvalidValue { .. }));
        assert!((parse_alpha(&args(&[])).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn missing_input_file_is_an_io_error() {
        let input =
            WorkloadInput::from_args(&args(&["--input", "/definitely/not/here.txt"])).unwrap();
        match input.open() {
            Err(CliError::Io(_)) => {}
            Err(other) => panic!("expected an I/O error, got {other}"),
            Ok(_) => panic!("opening a missing file must fail"),
        }
    }
}
