//! `abacus resume` — recover a killed `run --checkpoint-dir` and finish it.
//!
//! Recovery is *load the newest valid snapshot, replay the WAL from its
//! position*: the estimator state after recovery is bit-identical to the
//! state the killed run held after the last durable element.  With `--input`
//! (or `--dataset`) the command then skips the already-covered stream prefix
//! and processes the remainder — the final estimate is bit-identical to a
//! run that was never interrupted (at the same checkpoint cadence).  Without
//! an input the command just recovers, reports, and re-seals the directory.
//!
//! Supervised ensemble directories (from `run --ensemble --checkpoint-dir`)
//! are detected from the layout: *every* replica is rebuilt — quarantined
//! ones from their own newest snapshot plus ensemble-WAL catch-up — and
//! rejoined, so a degraded run resumes with its full replica set healthy.

use super::WorkloadInput;
use crate::args::Arguments;
use crate::error::CliError;
use abacus_core::engine::supervisor::is_supervised_dir;
use abacus_core::engine::{Checkpointer, EnsembleSupervisor};
use abacus_metrics::Throughput;
use std::path::Path;
use std::time::Instant;

/// Recovers the checkpoint directory and, given an input, finishes the run.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let dir = args
        .get("checkpoint-dir")
        .ok_or(CliError::MissingOption("checkpoint-dir"))?
        .to_string();
    let input = if args.get("input").is_some() || args.get("dataset").is_some() {
        Some(WorkloadInput::from_args(args)?)
    } else {
        None
    };
    args.reject_unused()?;

    if is_supervised_dir(Path::new(&dir)) {
        return resume_supervised(&dir, input.as_ref());
    }

    let recovery = Checkpointer::resume(&dir).map_err(|e| CliError::Persist(e.to_string()))?;
    let mut checkpointer = recovery.checkpointer;
    let resumed_at = checkpointer.elements();

    let start = Instant::now();
    let mut offered = 0u64;
    let label = if let Some(input) = &input {
        let mut source = input.open()?;
        // Skip the prefix the checkpoint already covers; the stream must be
        // the same one the original run processed (the WAL holds positions,
        // not content hashes — feeding a different stream is undetectable).
        let mut skipped = 0u64;
        while skipped < resumed_at {
            match source.next_element() {
                Some(Ok(_)) => skipped += 1,
                Some(Err(error)) => return Err(CliError::Io(error.to_string())),
                None => {
                    return Err(CliError::Persist(format!(
                        "input ends after {skipped} elements but the checkpoint \
                         covers {resumed_at}; is this the stream the run was started on?"
                    )))
                }
            }
        }
        while let Some(next) = source.next_element() {
            let element = next.map_err(|e| CliError::Io(e.to_string()))?;
            checkpointer
                .offer(element)
                .map_err(|e| CliError::Persist(e.to_string()))?;
            offered += 1;
        }
        input.label()
    } else {
        "(no input: recover only)".to_string()
    };
    let estimate = checkpointer
        .finish()
        .map_err(|e| CliError::Persist(e.to_string()))?;
    let throughput = Throughput::new(offered, start.elapsed());

    let note = super::run::ResumeNote {
        snapshot_elements: recovery.snapshot_elements,
        replayed: recovery.replayed,
        dropped_torn_tail: recovery.dropped_torn_tail,
        fell_back: recovery.fell_back,
    };
    Ok(super::run::checkpoint_report(
        &checkpointer,
        &label,
        offered,
        estimate,
        &throughput,
        Some(&note),
    ))
}

/// The supervised-ensemble recovery path: rebuild every replica (rejoining
/// quarantined ones via snapshot restore + ensemble-WAL catch-up), then —
/// given an input — finish the remainder of the stream.
fn resume_supervised(dir: &str, input: Option<&WorkloadInput>) -> Result<String, CliError> {
    let recovery = EnsembleSupervisor::resume(dir).map_err(|e| CliError::Persist(e.to_string()))?;
    let mut supervisor = recovery.supervisor;
    let resumed_at = supervisor.offered();

    let start = Instant::now();
    let mut offered = 0u64;
    let label = if let Some(input) = input {
        let mut source = input.open()?;
        // Skip the prefix the ensemble log already covers (same contract as
        // the single-estimator path: positions, not content hashes).
        let mut skipped = 0u64;
        while skipped < resumed_at {
            match source.next_element() {
                Some(Ok(_)) => skipped += 1,
                Some(Err(error)) => return Err(CliError::Io(error.to_string())),
                None => {
                    return Err(CliError::Persist(format!(
                        "input ends after {skipped} elements but the checkpoint \
                         covers {resumed_at}; is this the stream the run was started on?"
                    )))
                }
            }
        }
        while let Some(next) = super::run::pull_with_retry(&mut *source) {
            let element = next.map_err(|e| CliError::Io(e.to_string()))?;
            supervisor
                .offer(element)
                .map_err(|e| CliError::Persist(e.to_string()))?;
            offered += 1;
        }
        input.label()
    } else {
        "(no input: recover only)".to_string()
    };
    let estimate = supervisor
        .finish()
        .map_err(|e| CliError::Persist(e.to_string()))?;
    let throughput = Throughput::new(offered, start.elapsed());

    let note = super::run::SupervisedResumeNote {
        replicas: recovery.replicas,
        dropped_torn_tail: recovery.dropped_torn_tail,
        watermark_rebuilt: recovery.watermark_rebuilt,
    };
    Ok(super::run::supervised_report(
        &supervisor,
        &label,
        offered,
        estimate,
        &throughput,
        Some(&note),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::io::write_stream_to_path;
    use abacus_stream::StreamElement;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    /// The full stream, and the prefix a "killed" run got through.
    fn stream_files(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join("abacus_cli_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut stream = Vec::new();
        for l in 0..18u32 {
            for r in 100..120u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        for i in (0..300usize).step_by(4) {
            stream.push(StreamElement::delete(stream[i].edge));
        }
        let full = dir.join(format!("{tag}_full.txt"));
        let prefix = dir.join(format!("{tag}_prefix.txt"));
        write_stream_to_path(&stream, &full).unwrap();
        write_stream_to_path(&stream[..250], &prefix).unwrap();
        (full, prefix)
    }

    fn estimate_line(report: &str) -> String {
        report
            .lines()
            .find(|l| l.starts_with("estimate:"))
            .unwrap()
            .to_string()
    }

    #[test]
    fn interrupted_run_resumes_to_the_uninterrupted_estimate() {
        let (full, prefix) = stream_files("roundtrip");
        let full_str = full.to_str().unwrap();
        let dir = std::env::temp_dir()
            .join("abacus_cli_resume_test")
            .join(format!("roundtrip-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();

        let common = ["--budget", "200", "--seed", "11"];
        let mut reference = vec!["--input", full_str];
        reference.extend(common);
        let uninterrupted = super::super::run::run(&args(&reference)).unwrap();

        // "Kill" the run by only feeding it the prefix file, then resume
        // against the full stream: the final estimate must match the
        // uninterrupted run bit for bit.
        let mut interrupted = vec![
            "--input",
            prefix.to_str().unwrap(),
            "--checkpoint-dir",
            &dir_str,
            "--checkpoint-every",
            "64",
        ];
        interrupted.extend(common);
        super::super::run::run(&args(&interrupted)).unwrap();
        let resumed = run(&args(&["--checkpoint-dir", &dir_str, "--input", full_str])).unwrap();
        assert_eq!(estimate_line(&uninterrupted), estimate_line(&resumed));
        assert!(
            resumed
                .contains("resumed from:     snapshot at 250 elements + 0 WAL elements replayed"),
            "{resumed}"
        );
        assert!(resumed.contains("(185 elements this run)"), "{resumed}");

        // Resuming a finished directory is a no-op that reproduces the same
        // estimate without offering any elements.
        let again = run(&args(&["--checkpoint-dir", &dir_str, "--input", full_str])).unwrap();
        assert_eq!(estimate_line(&resumed), estimate_line(&again));
        assert!(again.contains("(0 elements this run)"), "{again}");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&prefix).ok();
    }

    #[test]
    fn resume_without_input_recovers_and_reports_only() {
        let (full, prefix) = stream_files("recover_only");
        let dir = std::env::temp_dir()
            .join("abacus_cli_resume_test")
            .join(format!("recover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        super::super::run::run(&args(&[
            "--input",
            prefix.to_str().unwrap(),
            "--checkpoint-dir",
            &dir_str,
            "--checkpoint-every",
            "64",
        ]))
        .unwrap();
        let out = run(&args(&["--checkpoint-dir", &dir_str])).unwrap();
        assert!(out.contains("(no input: recover only)"), "{out}");
        assert!(
            out.contains("committed:        250 elements durable"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&prefix).ok();
    }

    #[test]
    fn resume_validates_its_inputs() {
        assert!(matches!(
            run(&args(&[])),
            Err(CliError::MissingOption("checkpoint-dir"))
        ));
        let missing = std::env::temp_dir()
            .join("abacus_cli_resume_test")
            .join("does-not-exist");
        assert!(matches!(
            run(&args(&["--checkpoint-dir", missing.to_str().unwrap()])),
            Err(CliError::Persist(_))
        ));

        // An input shorter than the committed coverage cannot be the stream
        // the run was started on.
        let (full, prefix) = stream_files("short_input");
        let dir = std::env::temp_dir()
            .join("abacus_cli_resume_test")
            .join(format!("short-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        super::super::run::run(&args(&[
            "--input",
            full.to_str().unwrap(),
            "--checkpoint-dir",
            &dir_str,
            "--checkpoint-every",
            "64",
        ]))
        .unwrap();
        match run(&args(&[
            "--checkpoint-dir",
            &dir_str,
            "--input",
            prefix.to_str().unwrap(),
        ])) {
            Err(CliError::Persist(message)) => {
                assert!(message.contains("input ends after"), "{message}");
            }
            other => panic!("expected Persist, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&prefix).ok();
    }
}
