//! `abacus accuracy` — average relative error over repeated runs.

use super::{parse_alpha, parse_dataset};
use crate::args::Arguments;
use crate::error::CliError;
use abacus_core::{Abacus, AbacusConfig, ButterflyCounter};
use abacus_metrics::{relative_error_percent, Summary};
use abacus_stream::final_graph;

/// Runs ABACUS `--trials` times with different seeds against a generated
/// dataset analog and reports the mean / spread of the relative error, the
/// protocol of the paper's accuracy experiments (Figs. 3 and 5).
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let dataset = parse_dataset(args.require("dataset")?)?;
    let alpha = parse_alpha(args)?;
    let scale: u32 = args.parsed_or("scale", 1, "a positive integer")?;
    let budget: usize = args.parsed_or("budget", 1_500, "a positive integer")?;
    let trials: u64 = args.parsed_or("trials", 5, "a positive integer")?;
    args.reject_unused()?;
    if budget < 2 {
        return Err(CliError::InvalidValue {
            option: "budget".to_string(),
            value: budget.to_string(),
            expected: "an integer of at least 2",
        });
    }
    if trials == 0 || scale == 0 {
        return Err(CliError::InvalidValue {
            option: if trials == 0 { "trials" } else { "scale" }.to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }

    let stream = dataset.spec().scaled(scale).stream(alpha, 0);
    let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
    if truth <= 0.0 {
        return Ok(format!(
            "{}: final graph has no butterflies; nothing to estimate\n",
            dataset.name()
        ));
    }

    let summary = Summary::from_values((0..trials).map(|seed| {
        let mut abacus = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
        abacus.process_stream(&stream);
        relative_error_percent(truth, abacus.estimate())
    }));

    Ok(format!(
        "dataset:           {} (alpha {alpha}, scale {scale})\n\
         budget (edges):    {budget}\n\
         trials:            {trials}\n\
         exact butterflies: {truth:.0}\n\
         relative error:    {:.2}% mean, {:.2}% std, {:.2}% min, {:.2}% max\n",
        dataset.name(),
        summary.mean(),
        summary.std_dev(),
        summary.min(),
        summary.max(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    #[test]
    fn reports_error_statistics() {
        let out = run(&args(&[
            "--dataset",
            "movielens",
            "--budget",
            "2000",
            "--trials",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("relative error"));
        assert!(out.contains("mean"));
        assert!(out.contains("exact butterflies"));
    }

    #[test]
    fn large_budget_gives_zero_error() {
        // A budget larger than the stream makes ABACUS exact regardless of seed.
        let out = run(&args(&[
            "--dataset",
            "movielens",
            "--budget",
            "100000",
            "--trials",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("0.00% mean"), "{out}");
    }

    #[test]
    fn zero_trials_is_rejected() {
        assert!(matches!(
            run(&args(&["--dataset", "movielens", "--trials", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}
