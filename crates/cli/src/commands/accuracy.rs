//! `abacus accuracy` — average relative error over repeated runs.
//!
//! Works against a generated dataset analog (`--dataset`) *or* any stream
//! file (`--input`).  File workloads are never materialized: the ground
//! truth comes from one streaming replay into the final graph and every
//! trial re-opens the file and feeds ABACUS through the pull-based source
//! driver, keeping memory at O(final graph + budget).  Dataset workloads are
//! generated once and shared across trials.

use super::{parse_ensemble, parse_estimator_spec, WorkloadInput};
use crate::args::Arguments;
use crate::error::CliError;
use abacus_metrics::{relative_error_percent, Summary};
use abacus_stream::{replay_source, SliceSource};

/// Runs the selected estimator `--trials` times with different seeds against
/// the workload and reports the mean / spread of the relative error, the
/// protocol of the paper's accuracy experiments (Figs. 3 and 5).
///
/// `--algorithm` selects the estimator through the same engine registry as
/// `run` (default: `abacus`), and `--ensemble K` measures a K-replica
/// ensemble per trial instead of a bare estimator.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let input = WorkloadInput::from_args(args)?;
    let base = parse_estimator_spec(args, 1_500)?;
    let ensemble = parse_ensemble(args)?;
    let trials: u64 = args.parsed_or("trials", 5, "a positive integer")?;
    args.reject_unused()?;
    if trials == 0 {
        return Err(CliError::InvalidValue {
            option: "trials".to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }

    // Generated datasets materialize once and are reused across trials (the
    // generators are in-memory anyway); file inputs stay on disk and are
    // re-streamed per trial instead.
    let generated = if input.is_file() {
        None
    } else {
        Some(input.materialize()?)
    };

    // Ground truth: one streaming replay into the final graph.
    let truth = {
        let (graph, _) = match &generated {
            Some(stream) => replay_source(&mut SliceSource::new(stream)),
            None => replay_source(&mut *input.open()?),
        }
        .map_err(|e| CliError::Io(e.to_string()))?;
        abacus_graph::count_butterflies(&graph) as f64
    };
    if truth <= 0.0 {
        return Ok(format!(
            "{}: final graph has no butterflies; nothing to estimate\n",
            input.label()
        ));
    }

    let mut errors = Vec::with_capacity(trials as usize);
    for trial in 0..trials {
        // Trial t runs with seed --seed + t, so --seed shifts the whole
        // trial sequence for reproducibility instead of being ignored.
        let spec = base.with_seed(base.seed.wrapping_add(trial));
        let mut counter = super::build_counter(spec, ensemble, &[], Vec::new());
        match &generated {
            Some(stream) => counter.process_source(&mut SliceSource::new(stream)),
            None => counter.process_source(&mut *input.open()?),
        }
        .map_err(|e| CliError::Io(e.to_string()))?;
        errors.push(relative_error_percent(truth, counter.estimate()));
    }
    let summary = Summary::from_values(errors);

    let ensemble_line = match ensemble {
        None => String::new(),
        Some((replicas, mode)) => format!(
            "ensemble:          {replicas} x {mode} (per-replica budget {})\n",
            base.budget
        ),
    };
    Ok(format!(
        "workload:          {}\n\
         algorithm:         {}\n\
         {ensemble_line}\
         budget (edges):    {}\n\
         trials:            {trials}\n\
         exact butterflies: {truth:.0}\n\
         relative error:    {:.2}% mean, {:.2}% std, {:.2}% min, {:.2}% max\n",
        input.label(),
        base.kind.label(),
        base.budget,
        summary.mean(),
        summary.std_dev(),
        summary.min(),
        summary.max(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    #[test]
    fn reports_error_statistics() {
        let out = run(&args(&[
            "--dataset",
            "movielens",
            "--budget",
            "2000",
            "--trials",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("relative error"));
        assert!(out.contains("mean"));
        assert!(out.contains("exact butterflies"));
    }

    #[test]
    fn large_budget_gives_zero_error() {
        // A budget larger than the stream makes ABACUS exact regardless of seed.
        let out = run(&args(&[
            "--dataset",
            "movielens",
            "--budget",
            "100000",
            "--trials",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("0.00% mean"), "{out}");
    }

    #[test]
    fn input_files_are_streamed_per_trial() {
        use abacus_graph::Edge;
        use abacus_stream::io::write_stream_to_path;
        use abacus_stream::StreamElement;
        let dir = std::env::temp_dir().join("abacus_cli_accuracy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k33.txt");
        let mut stream = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        write_stream_to_path(&stream, &path).unwrap();
        // A covering budget makes every trial exact: 0% error across the board.
        let out = run(&args(&[
            "--input",
            path.to_str().unwrap(),
            "--budget",
            "100",
            "--trials",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("exact butterflies: 9"), "{out}");
        assert!(out.contains("0.00% mean"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_trials_is_rejected() {
        assert!(matches!(
            run(&args(&["--dataset", "movielens", "--trials", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&args(&["--dataset", "movielens", "--algorithm", "magic"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&args(&["--dataset", "movielens", "--ensemble", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn ensembles_and_algorithms_flow_through_the_registry() {
        // A covering budget makes every replicate ensemble exact, so the
        // mean error is 0 regardless of K.
        let out = run(&args(&[
            "--dataset",
            "movielens",
            "--budget",
            "100000",
            "--trials",
            "1",
            "--ensemble",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("ensemble:          2 x replicate"), "{out}");
        assert!(out.contains("0.00% mean"), "{out}");

        let fleet = run(&args(&[
            "--dataset",
            "movielens",
            "--algorithm",
            "fleet",
            "--budget",
            "2000",
            "--trials",
            "1",
        ]))
        .unwrap();
        assert!(fleet.contains("algorithm:         FLEET"), "{fleet}");
    }
}
