//! `abacus generate` — write a synthetic fully dynamic stream to a file.

use super::{parse_alpha, parse_dataset};
use crate::args::Arguments;
use crate::error::CliError;
use abacus_stream::binary::write_binary_stream_to_path;
use abacus_stream::io::write_stream_to_path;
use abacus_stream::StreamStats;

/// Output encodings of `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Binary,
}

fn parse_format(args: &Arguments) -> Result<OutputFormat, CliError> {
    match args
        .get("format")
        .unwrap_or("text")
        .to_ascii_lowercase()
        .as_str()
    {
        "text" => Ok(OutputFormat::Text),
        "binary" => Ok(OutputFormat::Binary),
        other => Err(CliError::InvalidValue {
            option: "format".to_string(),
            value: other.to_string(),
            expected: "text or binary",
        }),
    }
}

/// Generates the requested dataset analog and writes it in the `+ u v` /
/// `- u v` text format or, with `--format binary`, the compact `ABST1`
/// varint-delta binary format.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let dataset = parse_dataset(args.require("dataset")?)?;
    let output = args.require("output")?.to_string();
    let alpha = parse_alpha(args)?;
    let scale: u32 = args.parsed_or("scale", 1, "a positive integer")?;
    let trial: u64 = args.parsed_or("trial", 0, "an unsigned integer")?;
    let format = parse_format(args)?;
    if scale == 0 {
        return Err(CliError::InvalidValue {
            option: "scale".to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        });
    }
    args.reject_unused()?;

    let stream = dataset.spec().scaled(scale).stream(alpha, trial);
    match format {
        OutputFormat::Text => write_stream_to_path(&stream, &output),
        OutputFormat::Binary => write_binary_stream_to_path(&stream, &output),
    }
    .map_err(|e| CliError::Io(e.to_string()))?;
    let stats = StreamStats::compute(&stream);

    Ok(format!(
        "wrote {} ({} elements: {} insertions, {} deletions) to {} ({} format)\n",
        dataset.name(),
        stream.len(),
        stats.insertions,
        stats.deletions,
        output,
        match format {
            OutputFormat::Text => "text",
            OutputFormat::Binary => "binary",
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_stream::io::read_stream_from_path;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("abacus_cli_generate_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generates_a_readable_stream_file() {
        let path = temp_path("movielens.txt");
        let path_str = path.to_str().unwrap();
        let out = run(&args(&[
            "--dataset",
            "movielens",
            "--alpha",
            "0.2",
            "--output",
            path_str,
        ]))
        .unwrap();
        assert!(out.contains("Movielens-like"));
        assert!(out.contains("deletions"));

        let stream = read_stream_from_path(&path).unwrap();
        let expected = (Dataset::MovielensLike.spec().edges as f64 * 1.2).round() as usize;
        assert_eq!(stream.len(), expected);
        std::fs::remove_file(&path).ok();
    }

    use abacus_stream::Dataset;

    #[test]
    fn binary_format_round_trips_and_is_smaller() {
        use abacus_stream::binary::read_binary_stream_from_path;
        let text_path = temp_path("orkut.txt");
        let binary_path = temp_path("orkut.abst");
        for (path, format) in [(&text_path, "text"), (&binary_path, "binary")] {
            let out = run(&args(&[
                "--dataset",
                "orkut",
                "--alpha",
                "0.2",
                "--output",
                path.to_str().unwrap(),
                "--format",
                format,
            ]))
            .unwrap();
            assert!(out.contains(&format!("({format} format)")), "{out}");
        }
        let text = read_stream_from_path(&text_path).unwrap();
        let binary = read_binary_stream_from_path(&binary_path).unwrap();
        assert_eq!(text, binary, "formats must encode the same stream");
        let size = |p: &std::path::Path| std::fs::metadata(p).unwrap().len();
        assert!(
            size(&binary_path) < size(&text_path) / 2,
            "binary {} vs text {}",
            size(&binary_path),
            size(&text_path)
        );
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&binary_path).ok();

        assert!(matches!(
            run(&args(&[
                "--dataset",
                "orkut",
                "--output",
                "x.abst",
                "--format",
                "protobuf",
            ])),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn missing_required_options_are_reported() {
        assert!(matches!(
            run(&args(&["--output", "x.txt"])),
            Err(CliError::MissingOption("dataset"))
        ));
        assert!(matches!(
            run(&args(&["--dataset", "orkut"])),
            Err(CliError::MissingOption("output"))
        ));
    }

    #[test]
    fn typos_in_option_names_are_rejected() {
        let path = temp_path("typo.txt");
        let err = run(&args(&[
            "--dataset",
            "orkut",
            "--output",
            path.to_str().unwrap(),
            "--alfa",
            "0.3",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--alfa"));
    }

    #[test]
    fn zero_scale_is_rejected() {
        let path = temp_path("zero.txt");
        let err = run(&args(&[
            "--dataset",
            "orkut",
            "--output",
            path.to_str().unwrap(),
            "--scale",
            "0",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::InvalidValue { .. }));
    }
}
