//! `abacus stats` — Table II-style statistics of a stream's final graph.

use super::load_workload;
use crate::args::Arguments;
use crate::error::CliError;
use abacus_graph::GraphStatistics;
use abacus_stream::{final_graph, StreamStats};

/// Replays the stream into a graph and prints its statistics.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let workload = load_workload(args)?;
    args.reject_unused()?;

    let stream_stats = StreamStats::compute(&workload.stream);
    let graph = final_graph(&workload.stream);
    let graph_stats = GraphStatistics::compute(&graph);

    Ok(format!(
        "stream: {}\n\
         elements:           {}\n\
         insertions:         {}\n\
         deletions:          {}\n\
         final |E|:          {}\n\
         final |L|:          {}\n\
         final |R|:          {}\n\
         max degree:         {}\n\
         butterflies:        {}\n\
         butterfly density:  {:.3e}\n",
        workload.label,
        workload.stream.len(),
        stream_stats.insertions,
        stream_stats.deletions,
        graph_stats.edges,
        graph_stats.left_vertices,
        graph_stats.right_vertices,
        graph_stats.max_degree,
        graph_stats.butterflies,
        graph_stats.butterfly_density,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::io::write_stream_to_path;
    use abacus_stream::StreamElement;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    #[test]
    fn reports_the_exact_butterfly_count_of_a_file() {
        let dir = std::env::temp_dir().join("abacus_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("biclique.txt");
        // A 2×2 biclique plus a deleted pendant edge: exactly one butterfly.
        let stream = vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::insert(Edge::new(0, 11)),
            StreamElement::insert(Edge::new(1, 10)),
            StreamElement::insert(Edge::new(1, 11)),
            StreamElement::insert(Edge::new(2, 11)),
            StreamElement::delete(Edge::new(2, 11)),
        ];
        write_stream_to_path(&stream, &path).unwrap();

        let out = run(&args(&["--input", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("butterflies:        1"));
        assert!(out.contains("insertions:         5"));
        assert!(out.contains("deletions:          1"));
        assert!(out.contains("final |E|:          4"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn works_on_generated_datasets() {
        let out = run(&args(&["--dataset", "movielens", "--alpha", "0.1"])).unwrap();
        assert!(out.contains("Movielens-like"));
        assert!(out.contains("butterfly density"));
    }
}
