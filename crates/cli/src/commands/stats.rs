//! `abacus stats` — Table II-style statistics of a stream's final graph.
//!
//! The stream is consumed in one pull-based pass: element counters and the
//! final graph are updated per element, so peak memory is O(final graph) —
//! never O(stream), which matters for disk-resident traces with deletion
//! churn far above their live edge count.

use super::WorkloadInput;
use crate::args::Arguments;
use crate::error::CliError;
use abacus_graph::GraphStatistics;
use abacus_stream::replay_source;

/// Replays the stream into a graph and prints its statistics.
pub fn run(args: &Arguments) -> Result<String, CliError> {
    let input = WorkloadInput::from_args(args)?;
    args.reject_unused()?;

    let (graph, stream_stats) =
        replay_source(&mut *input.open()?).map_err(|e| CliError::Io(e.to_string()))?;
    let graph_stats = GraphStatistics::compute(&graph);

    Ok(format!(
        "stream: {}\n\
         elements:           {}\n\
         insertions:         {}\n\
         deletions:          {}\n\
         final |E|:          {}\n\
         final |L|:          {}\n\
         final |R|:          {}\n\
         max degree:         {}\n\
         butterflies:        {}\n\
         butterfly density:  {:.3e}\n",
        input.label(),
        stream_stats.elements,
        stream_stats.insertions,
        stream_stats.deletions,
        graph_stats.edges,
        graph_stats.left_vertices,
        graph_stats.right_vertices,
        graph_stats.max_degree,
        graph_stats.butterflies,
        graph_stats.butterfly_density,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::binary::write_binary_stream_to_path;
    use abacus_stream::io::write_stream_to_path;
    use abacus_stream::StreamElement;

    fn args(parts: &[&str]) -> Arguments {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw).unwrap()
    }

    /// A 2×2 biclique plus a deleted pendant edge: exactly one butterfly.
    fn sample_stream() -> Vec<StreamElement> {
        vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::insert(Edge::new(0, 11)),
            StreamElement::insert(Edge::new(1, 10)),
            StreamElement::insert(Edge::new(1, 11)),
            StreamElement::insert(Edge::new(2, 11)),
            StreamElement::delete(Edge::new(2, 11)),
        ]
    }

    #[test]
    fn reports_the_exact_butterfly_count_of_a_file() {
        let dir = std::env::temp_dir().join("abacus_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("biclique.txt");
        write_stream_to_path(&sample_stream(), &path).unwrap();

        let out = run(&args(&["--input", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("butterflies:        1"));
        assert!(out.contains("insertions:         5"));
        assert!(out.contains("deletions:          1"));
        assert!(out.contains("final |E|:          4"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_and_text_inputs_report_identically() {
        let dir = std::env::temp_dir().join("abacus_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("pair.txt");
        let binary = dir.join("pair.abst");
        write_stream_to_path(&sample_stream(), &text).unwrap();
        write_binary_stream_to_path(&sample_stream(), &binary).unwrap();
        let text_out = run(&args(&["--input", text.to_str().unwrap()])).unwrap();
        let binary_out = run(&args(&["--input", binary.to_str().unwrap()])).unwrap();
        // Identical apart from the first (label) line.
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&text_out), tail(&binary_out));
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&binary).ok();
    }

    #[test]
    fn works_on_generated_datasets() {
        let out = run(&args(&["--dataset", "movielens", "--alpha", "0.1"])).unwrap();
        assert!(out.contains("Movielens-like"));
        assert!(out.contains("butterfly density"));
    }
}
