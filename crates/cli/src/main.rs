//! The `abacus` binary: see [`abacus_cli`] for the command reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match abacus_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
