//! # abacus-cli
//!
//! A small command-line front end to the ABACUS / PARABACUS library, aimed at
//! users who want to count butterflies over their own edge streams without
//! writing Rust:
//!
//! ```text
//! abacus generate --dataset movielens --alpha 0.2 --output stream.txt
//! abacus stats    --input stream.txt
//! abacus run      --input stream.txt --algorithm parabacus --budget 3000 --threads 8
//! abacus accuracy --dataset movielens --budget 1500 --trials 5
//! ```
//!
//! Streams are plain text files with one element per line (`+ u v` /
//! `- u v`, the format of [`abacus_stream::io`]) or compact `ABST1` binary
//! files ([`abacus_stream::binary`]); the format is detected from the file
//! header.  `run`, `stats`, and `accuracy` ingest files through the
//! pull-based source pipeline, so they never materialize the stream —
//! memory stays O(sample budget + pull chunk) no matter how large the file
//! is (`run --ground-truth` is the documented exception: the exact count
//! needs the final graph).
//!
//! The crate deliberately avoids an argument-parsing dependency: the option
//! grammar is tiny (`--key value` pairs after a subcommand) and
//! [`args::Arguments`] implements it in a few dozen testable lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use args::Arguments;
pub use error::CliError;

/// Runs the CLI against an argument vector (excluding the program name) and
/// returns the text that should be printed to standard output.
///
/// This is the single entry point the `abacus` binary calls; keeping it in
/// the library makes every command testable without spawning processes.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = raw_args.split_first() else {
        return Ok(usage());
    };
    let arguments = Arguments::parse(rest)?;
    match command.as_str() {
        "generate" => commands::generate::run(&arguments),
        "stats" => commands::stats::run(&arguments),
        "run" => commands::run::run(&arguments),
        "resume" => commands::resume::run(&arguments),
        "accuracy" => commands::accuracy::run(&arguments),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "\
abacus — streaming butterfly counting for fully dynamic bipartite graph streams

USAGE:
    abacus <COMMAND> [--key value ...]

COMMANDS:
    generate   Generate a synthetic fully dynamic stream and write it to a file
               --dataset movielens|livejournal|trackers|orkut  (required)
               --alpha <fraction of deleted edges>             (default 0.2)
               --scale <integer dataset scale factor>          (default 1)
               --trial <deletion placement seed>               (default 0)
               --output <path>                                 (required)
               --format text|binary                            (default text; binary
                                                                is the compact ABST1
                                                                varint-delta encoding)

    stats      Print Table II-style statistics of a stream's final graph
               (files are replayed in one streaming pass, never materialized)
               --input <path> | --dataset <name> [--alpha A] [--scale S]

    run        Process a stream with one estimator and print its estimate
               (files are streamed in O(budget + chunk) memory; text or binary
                input is detected from the file header)
               --input <path> | --dataset <name> [--alpha A] [--scale S]
               --algorithm abacus|parabacus|local|fleet|cas|exact
                                                               (default abacus)
               --budget <max sampled edges per estimator>      (default 3000)
               --batch <mini-batch size, parabacus only>       (default 500)
               --threads <worker threads: parabacus counting,
                          or ensemble fan-out>                 (default all)
               --pipeline-depth <open batches, parabacus only> (default 2;
                                                                1 = alternating)
               --seed <estimator RNG seed>                     (default 0)
               --ensemble <K replicas>                         (default: none;
                                                                K=1 is bit-identical
                                                                to the bare estimator)
               --ensemble-mode replicate|partition             (default replicate:
                                                                mean of K full-stream
                                                                replicas; partition
                                                                hash-shards the stream
                                                                and sums per-shard
                                                                local counts)
               --chunk <ingest pull-chunk size>                (default 0 = the
                                                                estimator's preference)
               --ground-truth                                  (also compute the exact
                                                                count and relative error;
                                                                materializes the stream)
               --views peredge,vertex,clustering,bitruss,anomaly|all
                                                               (default: none; subscribe
                                                                incremental delta views
                                                                and print one report
                                                                line per view)
               --checkpoint-dir <dir>                          (default: none; write
                                                                ABSNAP1 snapshots + an
                                                                ABWL1 write-ahead log so
                                                                a killed run can be
                                                                finished with `resume`;
                                                                with --ensemble the run is
                                                                *supervised*: an ensemble
                                                                WAL + per-replica snapshot
                                                                dirs, so a failed replica
                                                                is quarantined while the
                                                                rest keep serving)
               --checkpoint-every <N elements>                 (default 10000)
               --fault-plan <spec>                             (default: none; inject
                                                                deterministic faults:
                                                                panic:replica=<i>@<n>,
                                                                io:replica=<i>@<n>x<f>,
                                                                io@<n>x<f>, corrupt@<n>,
                                                                stall@<n>x<ms>; replica
                                                                faults need --ensemble)

    resume     Recover a killed `run --checkpoint-dir` and finish it
               (loads the newest valid snapshot, replays the WAL, then —
                given the original input — skips the covered prefix and
                processes the remainder; the estimate is bit-identical to
                an uninterrupted run at the same checkpoint cadence.
                Supervised ensemble directories are detected from the
                layout: every replica is rebuilt and quarantined ones are
                rejoined via snapshot restore + ensemble-WAL catch-up)
               --checkpoint-dir <dir>                          (required)
               --input <path> | --dataset <name> [--alpha A] [--scale S]
                                                               (default: none; recover
                                                                and report only)

    accuracy   Average relative error over repeated runs
               (file inputs are re-streamed per trial, never materialized)
               --input <path> | --dataset <name> [--alpha A] [--scale S]
               --algorithm <name, as in run>                   (default abacus)
               --budget <max sampled edges per estimator>      (default 1500)
               --trials <number of runs>                       (default 5)
               --ensemble <K> / --ensemble-mode <mode>         (as in run)

    help       Show this message
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn empty_invocation_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("generate"));
    }

    #[test]
    fn help_prints_usage() {
        for flag in ["help", "--help", "-h"] {
            assert!(run(&argv(&[flag])).unwrap().contains("COMMANDS"));
        }
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn end_to_end_generate_stats_run() {
        let dir = std::env::temp_dir().join("abacus_cli_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.txt");
        let path_str = path.to_str().unwrap();

        let generate = run(&argv(&[
            "generate",
            "--dataset",
            "movielens",
            "--alpha",
            "0.1",
            "--output",
            path_str,
        ]))
        .unwrap();
        assert!(generate.contains("elements"));

        let stats = run(&argv(&["stats", "--input", path_str])).unwrap();
        assert!(stats.contains("butterflies"));

        let run_out = run(&argv(&[
            "run",
            "--input",
            path_str,
            "--algorithm",
            "abacus",
            "--budget",
            "500",
        ]))
        .unwrap();
        assert!(run_out.contains("ABACUS"));
        assert!(run_out.contains("estimate"));

        std::fs::remove_file(&path).ok();
    }
}
