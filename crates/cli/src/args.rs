//! Minimal `--key value` argument parsing.
//!
//! The whole CLI grammar is a subcommand followed by `--key value` pairs plus
//! boolean `--flag`s, so a dependency-free parser of a few dozen lines is
//! preferable to pulling a full argument-parsing crate into the workspace.

use crate::error::CliError;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Parsed `--key value` options of one invocation.
#[derive(Debug, Clone, Default)]
pub struct Arguments {
    values: BTreeMap<String, String>,
    flags: BTreeSet<String>,
    consumed: std::cell::RefCell<BTreeSet<String>>,
}

/// Option names that are valid without a value (boolean flags).
const FLAGS: &[&str] = &["ground-truth"];

impl Arguments {
    /// Parses everything after the subcommand.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        let mut flags = BTreeSet::new();
        let mut iter = raw.iter().peekable();
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::UnknownOption(token.clone()));
            };
            if FLAGS.contains(&key) {
                flags.insert(key.to_string());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(CliError::MissingValue(key.to_string()));
            };
            values.insert(key.to_string(), value.clone());
        }
        Ok(Arguments {
            values,
            flags,
            consumed: std::cell::RefCell::new(BTreeSet::new()),
        })
    }

    /// The raw string value of an option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().insert(key.to_string());
        self.values.get(key).map(String::as_str)
    }

    /// The string value of a required option.
    pub fn require(&self, key: &'static str) -> Result<&str, CliError> {
        self.get(key).ok_or(CliError::MissingOption(key))
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.consumed.borrow_mut().insert(key.to_string());
        self.flags.contains(key)
    }

    /// A parsed numeric or otherwise `FromStr` option with a default.
    pub fn parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::InvalidValue {
                option: key.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// Fails if any provided option was never consumed by the command —
    /// catching typos like `--tread 8` that would otherwise be ignored.
    pub fn reject_unused(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        for key in self.values.keys().chain(self.flags.iter()) {
            if !consumed.contains(key) {
                return Err(CliError::UnknownOption(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Arguments, CliError> {
        let raw: Vec<String> = parts.iter().map(|s| (*s).to_string()).collect();
        Arguments::parse(&raw)
    }

    #[test]
    fn parses_key_value_pairs_and_flags() {
        let args = parse(&["--budget", "100", "--ground-truth", "--output", "x.txt"]).unwrap();
        assert_eq!(args.get("budget"), Some("100"));
        assert_eq!(args.get("output"), Some("x.txt"));
        assert!(args.flag("ground-truth"));
        assert!(!args.flag("other-flag"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn positional_tokens_are_rejected() {
        let err = parse(&["budget", "100"]).unwrap_err();
        assert!(matches!(err, CliError::UnknownOption(_)));
    }

    #[test]
    fn missing_value_is_rejected() {
        let err = parse(&["--budget"]).unwrap_err();
        assert!(matches!(err, CliError::MissingValue(_)));
    }

    #[test]
    fn require_and_parsed_or() {
        let args = parse(&["--budget", "250"]).unwrap();
        assert_eq!(args.require("budget").unwrap(), "250");
        assert!(matches!(
            args.require("output"),
            Err(CliError::MissingOption("output"))
        ));
        assert_eq!(args.parsed_or("budget", 1usize, "an integer").unwrap(), 250);
        assert_eq!(args.parsed_or("missing", 7usize, "an integer").unwrap(), 7);

        let bad = parse(&["--budget", "many"]).unwrap();
        assert!(matches!(
            bad.parsed_or("budget", 1usize, "an integer"),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn unused_options_are_detected() {
        let args = parse(&["--budget", "10", "--typo", "3"]).unwrap();
        let _ = args.get("budget");
        let err = args.reject_unused().unwrap_err();
        assert!(err.to_string().contains("--typo"));

        let args = parse(&["--budget", "10"]).unwrap();
        let _ = args.get("budget");
        assert!(args.reject_unused().is_ok());
    }
}
