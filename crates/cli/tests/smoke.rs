//! End-to-end smoke test of the `abacus` binary: `generate` → `run` →
//! `stats` over a tiny synthetic stream, asserting exit code 0 at each step.

use std::process::Command;

fn abacus(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_abacus"))
        .args(args)
        .output()
        .expect("failed to spawn the abacus binary")
}

fn stdout_of(output: &std::process::Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn generate_run_stats_pipeline_exits_zero() {
    let dir = std::env::temp_dir().join(format!("abacus_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.txt");
    let path_str = path.to_str().unwrap();

    let generate = abacus(&[
        "generate",
        "--dataset",
        "movielens",
        "--alpha",
        "0.2",
        "--output",
        path_str,
    ]);
    assert!(
        generate.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&generate.stderr)
    );
    assert!(stdout_of(&generate).contains("elements"));
    assert!(path.exists(), "generate must write the stream file");

    let run = abacus(&[
        "run",
        "--input",
        path_str,
        "--algorithm",
        "abacus",
        "--budget",
        "500",
    ]);
    assert!(
        run.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let run_out = stdout_of(&run);
    assert!(run_out.contains("ABACUS"));
    assert!(run_out.contains("estimate"));

    let stats = abacus(&["stats", "--input", path_str]);
    assert!(
        stats.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&stats.stderr)
    );
    assert!(stdout_of(&stats).contains("butterflies"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_generate_run_accuracy_pipeline_exits_zero() {
    let dir = std::env::temp_dir().join(format!("abacus_smoke_bin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.abst");
    let path_str = path.to_str().unwrap();

    let generate = abacus(&[
        "generate",
        "--dataset",
        "movielens",
        "--alpha",
        "0.2",
        "--format",
        "binary",
        "--output",
        path_str,
    ]);
    assert!(
        generate.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&generate.stderr)
    );
    assert!(stdout_of(&generate).contains("binary format"));

    // The binary file is streamed straight from disk (no materialization).
    let run = abacus(&[
        "run",
        "--input",
        path_str,
        "--algorithm",
        "parabacus",
        "--budget",
        "500",
        "--threads",
        "2",
    ]);
    assert!(
        run.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let run_out = stdout_of(&run);
    assert!(run_out.contains("PARABACUS"), "{run_out}");
    assert!(run_out.contains("ingest:           streamed"), "{run_out}");

    let accuracy = abacus(&[
        "accuracy", "--input", path_str, "--budget", "2000", "--trials", "2",
    ]);
    assert!(
        accuracy.status.success(),
        "accuracy failed: {}",
        String::from_utf8_lossy(&accuracy.stderr)
    );
    assert!(stdout_of(&accuracy).contains("relative error"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let unknown = abacus(&["frobnicate"]);
    assert!(!unknown.status.success());

    let missing_output = abacus(&["generate", "--dataset", "movielens"]);
    assert!(!missing_output.status.success());
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let help = abacus(&["help"]);
    assert!(help.status.success());
    assert!(stdout_of(&help).contains("USAGE"));
}
