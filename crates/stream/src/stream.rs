//! In-memory graph streams and stream validation.

use crate::element::{EdgeDelta, StreamElement};
use abacus_graph::{BipartiteGraph, Edge, FxHashSet};
use std::fmt;

/// A fully dynamic bipartite graph stream held in memory.
///
/// Streams produced by the generators in this crate are plain element vectors;
/// the type alias exists to keep signatures readable.
pub type GraphStream = Vec<StreamElement>;

/// Summary statistics of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Total number of elements.
    pub elements: usize,
    /// Number of insertions.
    pub insertions: usize,
    /// Number of deletions.
    pub deletions: usize,
    /// Number of edges remaining after replaying the whole stream.
    pub final_edges: usize,
}

impl StreamStats {
    /// Computes the statistics of a stream in one pass.
    #[must_use]
    pub fn compute(stream: &[StreamElement]) -> Self {
        let insertions = stream.iter().filter(|e| e.delta.is_insert()).count();
        let deletions = stream.len() - insertions;
        StreamStats {
            elements: stream.len(),
            insertions,
            deletions,
            final_edges: insertions - deletions,
        }
    }

    /// Fraction of elements that are deletions.
    #[must_use]
    pub fn deletion_ratio(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.deletions as f64 / self.elements as f64
        }
    }
}

/// Ways a stream can violate the fully dynamic stream model of Definition 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamValidationError {
    /// An insertion arrived for an edge that already exists.
    DuplicateInsert {
        /// Position of the offending element.
        position: usize,
        /// The edge that was inserted twice.
        edge: Edge,
    },
    /// A deletion arrived for an edge that does not exist.
    DeleteMissing {
        /// Position of the offending element.
        position: usize,
        /// The edge that was deleted while absent.
        edge: Edge,
    },
}

impl fmt::Display for StreamValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamValidationError::DuplicateInsert { position, edge } => {
                write!(f, "element {position}: insertion of existing edge {edge}")
            }
            StreamValidationError::DeleteMissing { position, edge } => {
                write!(f, "element {position}: deletion of missing edge {edge}")
            }
        }
    }
}

impl std::error::Error for StreamValidationError {}

/// Checks that only absent edges are inserted and only present edges deleted.
pub fn validate_stream(stream: &[StreamElement]) -> Result<(), StreamValidationError> {
    let mut live: FxHashSet<Edge> = FxHashSet::default();
    for (position, element) in stream.iter().enumerate() {
        match element.delta {
            EdgeDelta::Insert => {
                if !live.insert(element.edge) {
                    return Err(StreamValidationError::DuplicateInsert {
                        position,
                        edge: element.edge,
                    });
                }
            }
            EdgeDelta::Delete => {
                if !live.remove(&element.edge) {
                    return Err(StreamValidationError::DeleteMissing {
                        position,
                        edge: element.edge,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Replays the stream into a [`BipartiteGraph`] and returns the final graph
/// `G(t)` — the ground-truth object for accuracy experiments.
#[must_use]
pub fn final_graph(stream: &[StreamElement]) -> BipartiteGraph {
    let mut graph = BipartiteGraph::new();
    for element in stream {
        match element.delta {
            EdgeDelta::Insert => {
                graph.insert_edge(element.edge);
            }
            EdgeDelta::Delete => {
                graph.delete_edge(element.edge);
            }
        }
    }
    graph
}

/// Streaming sibling of [`final_graph`]: replays a pull-based source into the
/// final graph `G(t)` in one pass, also tallying [`StreamStats`], without
/// ever materializing the stream — peak memory is O(final graph).
///
/// # Errors
/// Stops at the first source error and returns it.
pub fn replay_source<S: crate::source::ElementSource + ?Sized>(
    source: &mut S,
) -> Result<(BipartiteGraph, StreamStats), crate::io::StreamIoError> {
    let mut graph = BipartiteGraph::new();
    let mut stats = StreamStats::default();
    while let Some(element) = source.next_element() {
        let element = element?;
        stats.elements += 1;
        match element.delta {
            EdgeDelta::Insert => {
                stats.insertions += 1;
                graph.insert_edge(element.edge);
            }
            EdgeDelta::Delete => {
                stats.deletions += 1;
                graph.delete_edge(element.edge);
            }
        }
    }
    stats.final_edges = graph.num_edges();
    Ok((graph, stats))
}

/// Restricts a stream to its insertions (what an insert-only baseline sees
/// when deletions are simply dropped).
#[must_use]
pub fn insertions_only(stream: &[StreamElement]) -> GraphStream {
    stream
        .iter()
        .filter(|e| e.delta.is_insert())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(l: u32, r: u32) -> StreamElement {
        StreamElement::insert(Edge::new(l, r))
    }
    fn del(l: u32, r: u32) -> StreamElement {
        StreamElement::delete(Edge::new(l, r))
    }

    #[test]
    fn stats_and_ratio() {
        let stream = vec![ins(0, 1), ins(0, 2), del(0, 1), ins(1, 1)];
        let stats = StreamStats::compute(&stream);
        assert_eq!(stats.elements, 4);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.deletions, 1);
        assert_eq!(stats.final_edges, 2);
        assert!((stats.deletion_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(StreamStats::default().deletion_ratio(), 0.0);
    }

    #[test]
    fn validation_accepts_well_formed_streams() {
        let stream = vec![ins(0, 1), del(0, 1), ins(0, 1), ins(2, 3), del(2, 3)];
        assert!(validate_stream(&stream).is_ok());
    }

    #[test]
    fn validation_rejects_duplicate_insert() {
        let stream = vec![ins(0, 1), ins(0, 1)];
        let err = validate_stream(&stream).unwrap_err();
        assert_eq!(
            err,
            StreamValidationError::DuplicateInsert {
                position: 1,
                edge: Edge::new(0, 1)
            }
        );
        assert!(err.to_string().contains("element 1"));
    }

    #[test]
    fn validation_rejects_delete_of_missing_edge() {
        let stream = vec![ins(0, 1), del(2, 3)];
        let err = validate_stream(&stream).unwrap_err();
        assert!(matches!(
            err,
            StreamValidationError::DeleteMissing { position: 1, .. }
        ));
    }

    #[test]
    fn final_graph_replays_stream() {
        let stream = vec![ins(0, 1), ins(0, 2), ins(1, 1), del(0, 2)];
        let g = final_graph(&stream);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(Edge::new(0, 1)));
        assert!(!g.has_edge(Edge::new(0, 2)));
    }

    #[test]
    fn replay_source_matches_final_graph_and_stats() {
        let stream = vec![ins(0, 1), ins(0, 2), ins(1, 1), del(0, 2)];
        let (graph, stats) = replay_source(&mut crate::source::SliceSource::new(&stream)).unwrap();
        assert_eq!(graph.num_edges(), final_graph(&stream).num_edges());
        assert!(graph.has_edge(Edge::new(0, 1)));
        assert!(!graph.has_edge(Edge::new(0, 2)));
        assert_eq!(stats, StreamStats::compute(&stream));
    }

    #[test]
    fn insertions_only_drops_deletions() {
        let stream = vec![ins(0, 1), del(0, 1), ins(2, 3)];
        let only = insertions_only(&stream);
        assert_eq!(only.len(), 2);
        assert!(only.iter().all(|e| e.delta.is_insert()));
    }
}
