//! Line-oriented text format for graph streams.
//!
//! One element per line: `+ <left> <right>` for an insertion, `- <left>
//! <right>` for a deletion.  Lines starting with `#` and blank lines are
//! ignored, so real traces exported from other tools can be annotated.
//!
//! [`TextSource`] parses the format incrementally (one line per pull) so a
//! stream can be ingested from disk without ever being materialized;
//! [`read_stream`] is the materializing convenience built on top of it.

use crate::element::{EdgeDelta, StreamElement};
use crate::source::ElementSource;
use crate::stream::GraphStream;
use abacus_graph::Edge;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Errors produced while pulling elements from a stream source (text files,
/// binary files, or adapter pipelines).
#[derive(Debug)]
pub enum StreamIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// A malformed binary stream, or a source contract violation (e.g. a
    /// deletion handed to an adapter that expects an insert-only input).
    Format {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl StreamIoError {
    /// Convenience constructor for [`StreamIoError::Format`].
    #[must_use]
    pub fn format(detail: impl Into<String>) -> Self {
        StreamIoError::Format {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for StreamIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamIoError::Io(e) => write!(f, "I/O error: {e}"),
            StreamIoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            StreamIoError::Format { detail } => write!(f, "malformed stream: {detail}"),
        }
    }
}

impl std::error::Error for StreamIoError {}

impl From<io::Error> for StreamIoError {
    fn from(e: io::Error) -> Self {
        StreamIoError::Io(e)
    }
}

/// Writes a stream in the text format to any writer.
pub fn write_stream<W: Write>(stream: &[StreamElement], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for element in stream {
        let sign = match element.delta {
            EdgeDelta::Insert => '+',
            EdgeDelta::Delete => '-',
        };
        writeln!(w, "{sign} {} {}", element.edge.left, element.edge.right)?;
    }
    w.flush()
}

/// Writes a stream to a file path.
pub fn write_stream_to_path<P: AsRef<Path>>(stream: &[StreamElement], path: P) -> io::Result<()> {
    write_stream(stream, std::fs::File::create(path)?)
}

/// Parses one line of the text format.
///
/// Returns `Ok(None)` for blank and `#`-comment lines; `number` is the
/// 1-based line number used in error reports.
fn parse_line(line: &str, number: usize) -> Result<Option<StreamElement>, StreamIoError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let parse = || StreamIoError::Parse {
        line: number,
        content: trimmed.to_string(),
    };
    let sign = parts.next().ok_or_else(parse)?;
    let left: u32 = parts
        .next()
        .ok_or_else(parse)?
        .parse()
        .map_err(|_| parse())?;
    let right: u32 = parts
        .next()
        .ok_or_else(parse)?
        .parse()
        .map_err(|_| parse())?;
    if parts.next().is_some() {
        return Err(parse());
    }
    let delta = match sign {
        "+" => EdgeDelta::Insert,
        "-" => EdgeDelta::Delete,
        _ => return Err(parse()),
    };
    Ok(Some(StreamElement {
        edge: Edge::new(left, right),
        delta,
    }))
}

/// A pull-based [`ElementSource`] over the text format: one line is read and
/// parsed per pull, so memory stays O(longest line) no matter how long the
/// stream is.
#[derive(Debug)]
pub struct TextSource<R: BufRead> {
    reader: R,
    line: String,
    number: usize,
}

impl<R: BufRead> TextSource<R> {
    /// Wraps a buffered reader positioned at the start of a text stream.
    pub fn new(reader: R) -> Self {
        TextSource {
            reader,
            line: String::new(),
            number: 0,
        }
    }
}

impl TextSource<io::BufReader<std::fs::File>> {
    /// Opens a text stream file for incremental reading.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Self, StreamIoError> {
        Ok(TextSource::new(io::BufReader::new(std::fs::File::open(
            path,
        )?)))
    }
}

impl<R: BufRead> ElementSource for TextSource<R> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(StreamIoError::Io(e))),
            }
            self.number += 1;
            match parse_line(&self.line, self.number) {
                Ok(Some(element)) => return Some(Ok(element)),
                Ok(None) => {} // blank or comment line
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Reads a whole stream in the text format from any buffered reader.
pub fn read_stream<R: BufRead>(reader: R) -> Result<GraphStream, StreamIoError> {
    crate::source::read_all(&mut TextSource::new(reader))
}

/// Reads a stream from a file path.
pub fn read_stream_from_path<P: AsRef<Path>>(path: P) -> Result<GraphStream, StreamIoError> {
    read_stream(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> GraphStream {
        vec![
            StreamElement::insert(Edge::new(1, 2)),
            StreamElement::insert(Edge::new(3, 4)),
            StreamElement::delete(Edge::new(1, 2)),
        ]
    }

    #[test]
    fn round_trip_through_memory() {
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text, "+ 1 2\n+ 3 4\n- 1 2\n");
        let parsed = read_stream(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed, stream);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n+ 1 2\n   \n- 1 2\n";
        let parsed = read_stream(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], StreamElement::delete(Edge::new(1, 2)));
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        for bad in ["? 1 2", "+ x 2", "+ 1", "+ 1 2 3"] {
            let text = format!("+ 1 2\n{bad}\n");
            let err = read_stream(io::BufReader::new(text.as_bytes())).unwrap_err();
            match err {
                StreamIoError::Parse { line, .. } => assert_eq!(line, 2, "input {bad:?}"),
                other => panic!("expected parse error, got {other}"),
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("abacus_stream_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.txt");
        let stream = sample_stream();
        write_stream_to_path(&stream, &path).unwrap();
        let parsed = read_stream_from_path(&path).unwrap();
        assert_eq!(parsed, stream);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = StreamIoError::Parse {
            line: 7,
            content: "bad".to_string(),
        };
        assert!(err.to_string().contains("line 7"));
        let io_err = StreamIoError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(io_err.to_string().contains("I/O error"));
        let format_err = StreamIoError::format("truncated record");
        assert!(format_err.to_string().contains("truncated record"));
    }

    #[test]
    fn text_source_pulls_one_element_per_call() {
        let text = "# trace\n+ 1 2\n\n- 1 2\n+ 3 4";
        let mut source = TextSource::new(io::BufReader::new(text.as_bytes()));
        assert_eq!(
            source.next_element().unwrap().unwrap(),
            StreamElement::insert(Edge::new(1, 2))
        );
        assert_eq!(
            source.next_element().unwrap().unwrap(),
            StreamElement::delete(Edge::new(1, 2))
        );
        // Last line has no trailing newline; it must still parse.
        assert_eq!(
            source.next_element().unwrap().unwrap(),
            StreamElement::insert(Edge::new(3, 4))
        );
        assert!(source.next_element().is_none());
        assert!(source.next_element().is_none()); // fused at end of stream
    }

    #[test]
    fn text_source_reports_errors_with_line_numbers() {
        let text = "+ 1 2\n? 5 6\n";
        let mut source = TextSource::new(io::BufReader::new(text.as_bytes()));
        assert!(source.next_element().unwrap().is_ok());
        match source.next_element().unwrap().unwrap_err() {
            StreamIoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }
}
