//! Line-oriented text format for graph streams.
//!
//! One element per line: `+ <left> <right>` for an insertion, `- <left>
//! <right>` for a deletion.  Lines starting with `#` and blank lines are
//! ignored, so real traces exported from other tools can be annotated.

use crate::element::{EdgeDelta, StreamElement};
use crate::stream::GraphStream;
use abacus_graph::Edge;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Errors produced while parsing a stream file.
#[derive(Debug)]
pub enum StreamIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for StreamIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamIoError::Io(e) => write!(f, "I/O error: {e}"),
            StreamIoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for StreamIoError {}

impl From<io::Error> for StreamIoError {
    fn from(e: io::Error) -> Self {
        StreamIoError::Io(e)
    }
}

/// Writes a stream in the text format to any writer.
pub fn write_stream<W: Write>(stream: &[StreamElement], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for element in stream {
        let sign = match element.delta {
            EdgeDelta::Insert => '+',
            EdgeDelta::Delete => '-',
        };
        writeln!(w, "{sign} {} {}", element.edge.left, element.edge.right)?;
    }
    w.flush()
}

/// Writes a stream to a file path.
pub fn write_stream_to_path<P: AsRef<Path>>(stream: &[StreamElement], path: P) -> io::Result<()> {
    write_stream(stream, std::fs::File::create(path)?)
}

/// Reads a stream in the text format from any buffered reader.
pub fn read_stream<R: BufRead>(reader: R) -> Result<GraphStream, StreamIoError> {
    let mut out = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = || StreamIoError::Parse {
            line: index + 1,
            content: line.clone(),
        };
        let sign = parts.next().ok_or_else(parse)?;
        let left: u32 = parts
            .next()
            .ok_or_else(parse)?
            .parse()
            .map_err(|_| parse())?;
        let right: u32 = parts
            .next()
            .ok_or_else(parse)?
            .parse()
            .map_err(|_| parse())?;
        if parts.next().is_some() {
            return Err(parse());
        }
        let delta = match sign {
            "+" => EdgeDelta::Insert,
            "-" => EdgeDelta::Delete,
            _ => return Err(parse()),
        };
        out.push(StreamElement {
            edge: Edge::new(left, right),
            delta,
        });
    }
    Ok(out)
}

/// Reads a stream from a file path.
pub fn read_stream_from_path<P: AsRef<Path>>(path: P) -> Result<GraphStream, StreamIoError> {
    let file = std::fs::File::open(path)?;
    read_stream(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> GraphStream {
        vec![
            StreamElement::insert(Edge::new(1, 2)),
            StreamElement::insert(Edge::new(3, 4)),
            StreamElement::delete(Edge::new(1, 2)),
        ]
    }

    #[test]
    fn round_trip_through_memory() {
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_stream(&stream, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text, "+ 1 2\n+ 3 4\n- 1 2\n");
        let parsed = read_stream(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed, stream);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n+ 1 2\n   \n- 1 2\n";
        let parsed = read_stream(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], StreamElement::delete(Edge::new(1, 2)));
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        for bad in ["? 1 2", "+ x 2", "+ 1", "+ 1 2 3"] {
            let text = format!("+ 1 2\n{bad}\n");
            let err = read_stream(io::BufReader::new(text.as_bytes())).unwrap_err();
            match err {
                StreamIoError::Parse { line, .. } => assert_eq!(line, 2, "input {bad:?}"),
                other => panic!("expected parse error, got {other}"),
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("abacus_stream_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.txt");
        let stream = sample_stream();
        write_stream_to_path(&stream, &path).unwrap();
        let parsed = read_stream_from_path(&path).unwrap();
        assert_eq!(parsed, stream);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = StreamIoError::Parse {
            line: 7,
            content: "bad".to_string(),
        };
        assert!(err.to_string().contains("line 7"));
        let io_err = StreamIoError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(io_err.to_string().contains("I/O error"));
    }
}
