//! Deterministic fault injection: seeded, reproducible failures for
//! exercising every degraded path of the ingest and ensemble machinery.
//!
//! Production fault tolerance is only trustworthy if every failure mode it
//! claims to survive can be triggered *on demand* — in-process, in unit
//! tests, and from the CLI — and triggered at exactly the same stream
//! position every run.  This module provides that trigger:
//!
//! * [`FaultPlan`] — a declarative list of faults, each pinned to a
//!   zero-based element index: *source* faults (typed I/O errors, corrupt
//!   records, stalls) and *replica* faults (worker panics, transient
//!   persistence I/O errors) for the ensemble supervisor.
//! * [`FaultySource`] — wraps any [`ElementSource`] and fires the plan's
//!   source faults at their element indices.
//! * [`FaultPlan::parse`] — the compact text grammar behind the CLI's
//!   `--fault-plan` dev flag (`panic:replica=1@500,io@300x2,...`).
//!
//! Everything is deterministic: the same plan over the same stream produces
//! the same failure at the same element, which is what lets the fault
//! tolerance suite assert *bit-identical* recovery rather than "it didn't
//! crash".

use crate::element::StreamElement;
use crate::io::StreamIoError;
use crate::source::ElementSource;
use abacus_graph::Edge;

/// A fault injected into the element *source* (the ingest side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFaultKind {
    /// The next `transient` pulls at this element fail with a typed I/O
    /// error; the element itself is yielded afterwards.  A consumer that
    /// retries pulls survives `transient` failures; one that aborts on the
    /// first error sees a clean typed failure.
    Io {
        /// Number of consecutive failing pulls before the element appears.
        transient: u32,
    },
    /// The element is yielded with deterministically mangled endpoints — a
    /// corrupt record that parsed but carries wrong data.
    Corrupt,
    /// The pull sleeps before yielding the element — a slow/hung upstream.
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// One source fault, pinned to a zero-based element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceFault {
    /// Element index (zero-based) the fault fires at.
    pub at: u64,
    /// What goes wrong.
    pub kind: SourceFaultKind,
}

/// A fault injected into one ensemble replica's worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// The replica's worker panics while processing the element — the
    /// catch-unwind / quarantine path.
    Panic,
    /// The replica's persistence layer reports a transient I/O error for the
    /// next `failures` attempts at this element.  Fewer failures than the
    /// retry budget means the retry loop absorbs the fault; more means the
    /// replica is quarantined with a typed persistence error.
    Io {
        /// Number of consecutive failing attempts.
        failures: u32,
    },
}

/// One replica fault: which replica, at which element, failing how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFault {
    /// Replica index the fault targets.
    pub replica: usize,
    /// Element index (zero-based, in stream order) the fault fires at.
    pub at: u64,
    /// What goes wrong.
    pub kind: ReplicaFaultKind,
}

/// A declarative, deterministic set of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults fired by [`FaultySource`] at their element indices.
    pub source: Vec<SourceFault>,
    /// Faults fired by the ensemble supervisor at their element indices.
    pub replicas: Vec<ReplicaFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Returns the plan with a source fault appended.
    #[must_use]
    pub fn with_source_fault(mut self, at: u64, kind: SourceFaultKind) -> Self {
        self.source.push(SourceFault { at, kind });
        self
    }

    /// Returns the plan with a replica fault appended.
    #[must_use]
    pub fn with_replica_fault(mut self, replica: usize, at: u64, kind: ReplicaFaultKind) -> Self {
        self.replicas.push(ReplicaFault { replica, at, kind });
        self
    }

    /// Whether the plan holds no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.source.is_empty() && self.replicas.is_empty()
    }

    /// The replica fault (if any) targeting `replica` at element `at`.
    #[must_use]
    pub fn replica_fault(&self, replica: usize, at: u64) -> Option<ReplicaFaultKind> {
        self.replicas
            .iter()
            .find(|f| f.replica == replica && f.at == at)
            .map(|f| f.kind)
    }

    /// Parses the compact `--fault-plan` grammar: comma-separated entries of
    ///
    /// * `panic:replica=<i>@<n>` — replica `i` panics at element `n`,
    /// * `io:replica=<i>@<n>` / `io:replica=<i>@<n>x<f>` — replica `i` sees
    ///   `f` (default 1) transient persistence I/O failures at element `n`,
    /// * `io@<n>` / `io@<n>x<f>` — the source fails `f` pulls at element `n`,
    /// * `corrupt@<n>` — the source yields a mangled record at element `n`,
    /// * `stall@<n>x<ms>` — the source stalls `ms` milliseconds at element
    ///   `n` (`stall@<n>` stalls 1 ms).
    ///
    /// # Errors
    /// A human-readable description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (head, at_spec) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault '{entry}' is missing its '@<element>' position"))?;
            let (at, arg) = match at_spec.split_once('x') {
                Some((at, arg)) => (at, Some(arg)),
                None => (at_spec, None),
            };
            let at: u64 = at
                .parse()
                .map_err(|_| format!("fault '{entry}': '{at}' is not an element index"))?;
            let arg =
                match arg {
                    None => None,
                    Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
                        format!("fault '{entry}': '{raw}' is not an unsigned integer")
                    })?),
                };
            let (kind, target) = match head.split_once(':') {
                Some((kind, target)) => (kind, Some(target)),
                None => (head, None),
            };
            let replica = match target {
                None => None,
                Some(target) => {
                    let index = target.strip_prefix("replica=").ok_or_else(|| {
                        format!("fault '{entry}': expected 'replica=<i>', got '{target}'")
                    })?;
                    Some(index.parse::<usize>().map_err(|_| {
                        format!("fault '{entry}': '{index}' is not a replica index")
                    })?)
                }
            };
            match (kind, replica) {
                ("panic", Some(replica)) => {
                    if arg.is_some() {
                        return Err(format!("fault '{entry}': panic takes no 'x' argument"));
                    }
                    plan.replicas.push(ReplicaFault {
                        replica,
                        at,
                        kind: ReplicaFaultKind::Panic,
                    });
                }
                ("panic", None) => {
                    return Err(format!(
                        "fault '{entry}': panic faults target a replica ('panic:replica=<i>@<n>')"
                    ));
                }
                ("io", Some(replica)) => plan.replicas.push(ReplicaFault {
                    replica,
                    at,
                    kind: ReplicaFaultKind::Io {
                        failures: u32::try_from(arg.unwrap_or(1))
                            .map_err(|_| format!("fault '{entry}': failure count too large"))?,
                    },
                }),
                ("io", None) => plan.source.push(SourceFault {
                    at,
                    kind: SourceFaultKind::Io {
                        transient: u32::try_from(arg.unwrap_or(1))
                            .map_err(|_| format!("fault '{entry}': failure count too large"))?,
                    },
                }),
                ("corrupt", None) => {
                    plan.source.push(SourceFault {
                        at,
                        kind: SourceFaultKind::Corrupt,
                    });
                }
                ("stall", None) => plan.source.push(SourceFault {
                    at,
                    kind: SourceFaultKind::Stall {
                        millis: arg.unwrap_or(1),
                    },
                }),
                (other, Some(_)) => {
                    return Err(format!(
                        "fault '{entry}': '{other}' is not a replica fault (panic, io)"
                    ));
                }
                (other, None) => {
                    return Err(format!(
                        "fault '{entry}': '{other}' is not a source fault (io, corrupt, stall)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// Deterministically mangles a stream element — the payload of a
/// [`SourceFaultKind::Corrupt`] fault.  The element keeps its delta but the
/// endpoints are avalanche-flipped, so the corruption is obvious in tests
/// yet stable across runs.
#[must_use]
pub fn corrupt_element(element: StreamElement) -> StreamElement {
    let edge = Edge::new(
        element.edge.left ^ 0x5A5A_5A5A,
        element.edge.right ^ 0xA5A5_A5A5,
    );
    StreamElement {
        edge,
        delta: element.delta,
    }
}

/// Wraps any [`ElementSource`] and fires a [`FaultPlan`]'s source faults at
/// their element indices.
///
/// Indices are zero-based over the elements the *inner* source yields; a
/// fault past the end of the stream simply never fires.  Faults at the same
/// index fire in plan order.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    faults: Vec<SourceFault>,
    /// Index of the next element to pull from the inner source.
    index: u64,
    /// An element pulled but withheld while its Io fault burns down.
    stalled: Option<(StreamElement, u32)>,
}

impl<S: ElementSource> FaultySource<S> {
    /// Wraps `inner`, injecting the plan's source faults (replica faults are
    /// ignored here — they belong to the ensemble supervisor).
    #[must_use]
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        FaultySource {
            inner,
            faults: plan.source.clone(),
            index: 0,
            stalled: None,
        }
    }

    fn take_fault(&mut self, at: u64) -> Option<SourceFaultKind> {
        let position = self.faults.iter().position(|f| f.at == at)?;
        Some(self.faults.remove(position).kind)
    }
}

impl<S: ElementSource> ElementSource for FaultySource<S> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        if let Some((element, remaining)) = self.stalled.take() {
            if remaining > 0 {
                self.stalled = Some((element, remaining - 1));
                return Some(Err(StreamIoError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("injected transient I/O fault at element {}", self.index),
                ))));
            }
            self.index += 1;
            return Some(Ok(element));
        }
        let at = self.index;
        let element = match self.inner.next_element()? {
            Ok(element) => element,
            Err(error) => return Some(Err(error)),
        };
        match self.take_fault(at) {
            None => {
                self.index += 1;
                Some(Ok(element))
            }
            Some(SourceFaultKind::Io { transient }) => {
                // Withhold the element and fail the next `transient` pulls.
                self.stalled = Some((element, transient));
                self.next_element()
            }
            Some(SourceFaultKind::Corrupt) => {
                self.index += 1;
                Some(Ok(corrupt_element(element)))
            }
            Some(SourceFaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.index += 1;
                Some(Ok(element))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, upper) = self.inner.size_hint();
        let stalled = usize::from(self.stalled.is_some());
        (lower + stalled, upper.map(|u| u + stalled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{read_all, SliceSource};

    fn stream(n: u32) -> Vec<StreamElement> {
        (0..n)
            .map(|i| StreamElement::insert(Edge::new(i, i + 100)))
            .collect()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let base = stream(10);
        let mut source = FaultySource::new(SliceSource::new(&base), &FaultPlan::new());
        assert_eq!(read_all(&mut source).unwrap(), base);
    }

    #[test]
    fn io_fault_fails_n_pulls_then_yields_the_element() {
        let base = stream(5);
        let plan = FaultPlan::new().with_source_fault(2, SourceFaultKind::Io { transient: 2 });
        let mut source = FaultySource::new(SliceSource::new(&base), &plan);
        let mut out = Vec::new();
        let mut errors = 0;
        loop {
            match source.next_element() {
                None => break,
                Some(Ok(element)) => out.push(element),
                Some(Err(StreamIoError::Io(e))) => {
                    errors += 1;
                    assert!(e.to_string().contains("element 2"), "{e}");
                }
                Some(Err(other)) => panic!("unexpected error {other}"),
            }
        }
        assert_eq!(errors, 2, "exactly `transient` pulls fail");
        assert_eq!(out, base, "no element is lost or reordered");
    }

    #[test]
    fn corrupt_fault_mangles_exactly_one_element_deterministically() {
        let base = stream(6);
        let plan = FaultPlan::new().with_source_fault(3, SourceFaultKind::Corrupt);
        let run = || {
            let mut source = FaultySource::new(SliceSource::new(&base), &plan);
            read_all(&mut source).unwrap()
        };
        let out = run();
        assert_eq!(out.len(), base.len());
        for (i, (got, want)) in out.iter().zip(&base).enumerate() {
            if i == 3 {
                assert_eq!(*got, corrupt_element(*want));
                assert_ne!(got.edge, want.edge);
            } else {
                assert_eq!(got, want);
            }
        }
        assert_eq!(run(), out, "corruption is deterministic");
    }

    #[test]
    fn stall_fault_delays_but_preserves_the_stream() {
        let base = stream(4);
        let plan = FaultPlan::new().with_source_fault(1, SourceFaultKind::Stall { millis: 1 });
        let mut source = FaultySource::new(SliceSource::new(&base), &plan);
        assert_eq!(read_all(&mut source).unwrap(), base);
    }

    #[test]
    fn plan_parser_round_trips_the_grammar() {
        let plan = FaultPlan::parse(
            "panic:replica=1@500, io:replica=0@100x2, io@300, corrupt@600, stall@250x20",
        )
        .unwrap();
        assert_eq!(
            plan.replicas,
            vec![
                ReplicaFault {
                    replica: 1,
                    at: 500,
                    kind: ReplicaFaultKind::Panic
                },
                ReplicaFault {
                    replica: 0,
                    at: 100,
                    kind: ReplicaFaultKind::Io { failures: 2 }
                },
            ]
        );
        assert_eq!(
            plan.source,
            vec![
                SourceFault {
                    at: 300,
                    kind: SourceFaultKind::Io { transient: 1 }
                },
                SourceFault {
                    at: 600,
                    kind: SourceFaultKind::Corrupt
                },
                SourceFault {
                    at: 250,
                    kind: SourceFaultKind::Stall { millis: 20 }
                },
            ]
        );
        assert_eq!(plan.replica_fault(1, 500), Some(ReplicaFaultKind::Panic));
        assert_eq!(plan.replica_fault(1, 501), None);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn plan_parser_rejects_malformed_entries() {
        for bad in [
            "panic@5",             // panic needs a replica target
            "corrupt:replica=1@5", // corrupt is a source fault
            "panic:replica=1",     // missing position
            "io@x",                // not an index
            "io:worker=1@5",       // bad target syntax
            "explode@5",           // unknown kind
            "panic:replica=2@5x9", // panic takes no argument
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("fault"), "{bad}: {err}");
        }
    }
}
