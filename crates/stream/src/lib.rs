//! # abacus-stream
//!
//! The fully dynamic bipartite graph *stream* model of the paper
//! (Definition 1), plus everything needed to produce realistic workloads:
//!
//! * [`element`] — stream elements `e(t) = ({u, v}, δ)` with δ ∈ {+, −},
//! * [`stream`] — in-memory streams, validation, replay into a graph,
//! * [`deletion`] — the paper's α-deletion injection procedure (§VI-A
//!   *Deletions*): pick α% of the edges and place each deletion uniformly at
//!   random after its corresponding insertion,
//! * [`generators`] — synthetic bipartite graph generators (uniform,
//!   Chung–Lu power-law, block/community model) and the four scaled-down
//!   analogs of the paper's KONECT datasets (Table II),
//! * [`source`] — the pull-based [`ElementSource`] ingestion abstraction:
//!   bounded-memory adapters over slices, iterators, files, and an on-the-fly
//!   deletion injector,
//! * [`counter`] — the [`ButterflyCounter`] trait: the *consumer* half of the
//!   stream model, implemented by every estimator in the workspace (ABACUS,
//!   PARABACUS, the exact oracle, the insert-only baselines, ensembles) and
//!   driven through the pull-based source machinery above,
//! * [`view`] — the [`DeltaView`] contract of the incremental delta circuit:
//!   consumers that fold per-element graph deltas (butterfly enumerations,
//!   degree changes, estimates) into live derived state,
//! * [`io`] — the line-oriented text format (incremental [`io::TextSource`]
//!   plus materializing helpers),
//! * [`persist`] — the `ABWL1` append-only write-ahead log and the
//!   committed-watermark protocol behind estimator checkpoint/restore,
//! * [`binary`] — the compact `ABST1` varint-delta binary format,
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   driving a [`FaultySource`] wrapper (typed I/O errors, corrupt records,
//!   stalls) plus replica-worker fault descriptions consumed by the engine's
//!   ensemble supervisor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod counter;
pub mod deletion;
pub mod element;
pub mod fault;
pub mod generators;
pub mod io;
pub mod persist;
pub mod source;
pub mod stream;
pub mod view;

pub use binary::{BinarySource, BinaryStreamWriter, BINARY_MAGIC};
pub use counter::{ButterflyCounter, DEFAULT_SOURCE_CHUNK};
pub use deletion::{inject_deletions, inject_deletions_fast, DeletionConfig};
pub use element::{EdgeDelta, StreamElement};
pub use fault::{
    FaultPlan, FaultySource, ReplicaFault, ReplicaFaultKind, SourceFault, SourceFaultKind,
};
pub use generators::dataset::{Dataset, DatasetSpec};
pub use generators::wipe::VertexWipeInjector;
pub use io::{StreamIoError, TextSource};
pub use persist::{
    read_watermark, replay_wal, seal_tail, with_retry, write_watermark, write_watermark_with_retry,
    RetryPolicy, WalRecovery, WalWriter, WAL_MAGIC, WATERMARK_FILE,
};
pub use source::{
    open_path_source, read_all, DeletionInjector, ElementSource, IterSource, SliceSource,
};
pub use stream::{
    final_graph, replay_source, validate_stream, GraphStream, StreamStats, StreamValidationError,
};
pub use view::{DeltaEvent, DeltaView};
