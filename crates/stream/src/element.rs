//! Stream elements.
//!
//! A fully dynamic bipartite graph stream is a sequence of elements
//! `e(t) = ({u(t), v(t)}, δ)` where δ = `+` inserts a new edge and δ = `−`
//! deletes an existing one (Definition 1 of the paper).

use abacus_graph::Edge;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of change an element applies to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDelta {
    /// δ = `+`: the edge is inserted (it must not currently exist).
    Insert,
    /// δ = `−`: the edge is deleted (it must currently exist).
    Delete,
}

impl EdgeDelta {
    /// `sgn(δ)`: +1 for insertions, −1 for deletions (Algorithm 1, line 6).
    #[inline]
    #[must_use]
    pub fn sign(self) -> i64 {
        match self {
            EdgeDelta::Insert => 1,
            EdgeDelta::Delete => -1,
        }
    }

    /// `true` for insertions.
    #[inline]
    #[must_use]
    pub fn is_insert(self) -> bool {
        matches!(self, EdgeDelta::Insert)
    }

    /// `true` for deletions.
    #[inline]
    #[must_use]
    pub fn is_delete(self) -> bool {
        matches!(self, EdgeDelta::Delete)
    }
}

impl fmt::Display for EdgeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeDelta::Insert => write!(f, "+"),
            EdgeDelta::Delete => write!(f, "-"),
        }
    }
}

/// One element of a fully dynamic bipartite graph stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamElement {
    /// The edge `{u, v}` affected by this element.
    pub edge: Edge,
    /// Whether the edge is inserted or deleted.
    pub delta: EdgeDelta,
}

impl StreamElement {
    /// An insertion of `edge`.
    #[inline]
    #[must_use]
    pub fn insert(edge: Edge) -> Self {
        StreamElement {
            edge,
            delta: EdgeDelta::Insert,
        }
    }

    /// A deletion of `edge`.
    #[inline]
    #[must_use]
    pub fn delete(edge: Edge) -> Self {
        StreamElement {
            edge,
            delta: EdgeDelta::Delete,
        }
    }

    /// `sgn(δ)` of the element.
    #[inline]
    #[must_use]
    pub fn sign(&self) -> i64 {
        self.delta.sign()
    }
}

impl fmt::Display for StreamElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.delta, self.edge.left, self.edge.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs() {
        assert_eq!(EdgeDelta::Insert.sign(), 1);
        assert_eq!(EdgeDelta::Delete.sign(), -1);
        assert!(EdgeDelta::Insert.is_insert());
        assert!(EdgeDelta::Delete.is_delete());
        assert!(!EdgeDelta::Delete.is_insert());
    }

    #[test]
    fn constructors_and_display() {
        let e = Edge::new(3, 7);
        let ins = StreamElement::insert(e);
        let del = StreamElement::delete(e);
        assert_eq!(ins.sign(), 1);
        assert_eq!(del.sign(), -1);
        assert_eq!(ins.to_string(), "+ 3 7");
        assert_eq!(del.to_string(), "- 3 7");
        assert_ne!(ins, del);
    }
}
