//! Injection of edge deletions into an insert-only stream.
//!
//! The paper's datasets are insertion-only, so fully dynamic workloads are
//! produced by the procedure of §VI-A: (a) keep the insertions in their
//! natural order, (b) select α% of the edges, (c) place each selected edge's
//! deletion at a position chosen uniformly at random *after* its insertion.
//! The default ratio is α = 20%, motivated by measurements of up to 30% edge
//! deletions on real Twitter data.

use crate::element::StreamElement;
use crate::stream::GraphStream;
use abacus_graph::Edge;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Configuration of the deletion-injection procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeletionConfig {
    /// Fraction of edges that also receive a deletion (the paper's α), in
    /// `[0, 1]`.
    pub ratio: f64,
}

impl Default for DeletionConfig {
    fn default() -> Self {
        // The paper's default: α = 20%.
        DeletionConfig { ratio: 0.20 }
    }
}

impl DeletionConfig {
    /// A configuration with the given α.
    ///
    /// # Panics
    /// Panics if `ratio` is not in `[0, 1]`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "deletion ratio must be in [0, 1]"
        );
        DeletionConfig { ratio }
    }
}

/// Builds a fully dynamic stream from an ordered list of distinct edges by
/// injecting deletions for `config.ratio` of the edges.
///
/// The relative order of the insertions is preserved; each injected deletion
/// is placed uniformly at random in the suffix following its insertion.
pub fn inject_deletions<R: Rng + ?Sized>(
    edges: &[Edge],
    config: DeletionConfig,
    rng: &mut R,
) -> GraphStream {
    let n = edges.len();
    let num_deletions = ((n as f64) * config.ratio).round() as usize;

    // (b) choose which edges get deleted.
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let delete_set: Vec<usize> = indices.into_iter().take(num_deletions).collect();

    // Start from the insert-only stream...
    let mut stream: Vec<StreamElement> = edges.iter().map(|&e| StreamElement::insert(e)).collect();

    // ...and (c) insert each deletion at a random position after its insertion.
    // Deletions are inserted one at a time; positions refer to the stream as it
    // grows, which keeps every deletion strictly after its own insertion and
    // yields a uniform position in the current suffix.
    for &edge_index in &delete_set {
        let edge = edges[edge_index];
        // Position of the insertion in the *current* stream.
        let insert_pos = stream
            .iter()
            .position(|e| e.edge == edge && e.delta.is_insert())
            .expect("insertion must be present");
        let pos = rng.random_range(insert_pos + 1..=stream.len());
        stream.insert(pos, StreamElement::delete(edge));
    }
    stream
}

/// Same as [`inject_deletions`] but avoids the quadratic re-scan for the
/// insertion position by tracking positions incrementally.  Produces streams
/// with the same distributional properties; preferred for large workloads.
pub fn inject_deletions_fast<R: Rng + ?Sized>(
    edges: &[Edge],
    config: DeletionConfig,
    rng: &mut R,
) -> GraphStream {
    let n = edges.len();
    let num_deletions = ((n as f64) * config.ratio).round() as usize;

    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let mut is_deleted = vec![false; n];
    for &i in indices.iter().take(num_deletions) {
        is_deleted[i] = true;
    }

    // For each deleted edge choose the insertion index (in the insert-only
    // order) *after which* the deletion will be emitted: uniform in [i, n-1].
    // Emitting the deletion right after the chosen insertion position spreads
    // deletions uniformly over the remainder of the stream without a quadratic
    // pass.
    let mut pending_deletions: Vec<Vec<Edge>> = vec![Vec::new(); n];
    for i in 0..n {
        if is_deleted[i] {
            let after = rng.random_range(i..n);
            pending_deletions[after].push(edges[i]);
        }
    }

    let mut stream = Vec::with_capacity(n + num_deletions);
    for i in 0..n {
        stream.push(StreamElement::insert(edges[i]));
        for &edge in &pending_deletions[i] {
            stream.push(StreamElement::delete(edge));
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{validate_stream, StreamStats};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1000)).collect()
    }

    #[test]
    fn zero_ratio_keeps_stream_insert_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let stream = inject_deletions(&edges(50), DeletionConfig::new(0.0), &mut rng);
        assert_eq!(stream.len(), 50);
        assert!(stream.iter().all(|e| e.delta.is_insert()));
    }

    #[test]
    fn ratio_controls_number_of_deletions() {
        let mut rng = StdRng::seed_from_u64(2);
        for &ratio in &[0.05, 0.1, 0.2, 0.3, 1.0] {
            let stream = inject_deletions(&edges(200), DeletionConfig::new(ratio), &mut rng);
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, 200);
            assert_eq!(stats.deletions, (200.0 * ratio).round() as usize);
            validate_stream(&stream).expect("stream must be well-formed");
        }
    }

    #[test]
    fn deletions_follow_their_insertions() {
        let mut rng = StdRng::seed_from_u64(3);
        let stream = inject_deletions(&edges(100), DeletionConfig::new(0.5), &mut rng);
        validate_stream(&stream).expect("every deletion must follow its insertion");
    }

    #[test]
    fn fast_variant_is_well_formed_and_matches_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        for &ratio in &[0.0, 0.2, 0.3, 1.0] {
            let stream = inject_deletions_fast(&edges(500), DeletionConfig::new(ratio), &mut rng);
            validate_stream(&stream).expect("well-formed");
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, 500);
            assert_eq!(stats.deletions, (500.0 * ratio).round() as usize);
        }
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = edges(100);
        let stream = inject_deletions_fast(&input, DeletionConfig::default(), &mut rng);
        let inserted: Vec<Edge> = stream
            .iter()
            .filter(|e| e.delta.is_insert())
            .map(|e| e.edge)
            .collect();
        assert_eq!(inserted, input);
    }

    #[test]
    #[should_panic(expected = "deletion ratio")]
    fn invalid_ratio_panics() {
        let _ = DeletionConfig::new(1.5);
    }

    #[test]
    fn empty_edge_list_is_fine_at_edge_ratios() {
        for &ratio in &[0.0, 1.0] {
            let mut rng = StdRng::seed_from_u64(9);
            assert!(inject_deletions(&[], DeletionConfig::new(ratio), &mut rng).is_empty());
            assert!(inject_deletions_fast(&[], DeletionConfig::new(ratio), &mut rng).is_empty());
        }
    }

    #[test]
    fn full_deletion_ratio_deletes_every_edge() {
        let mut rng = StdRng::seed_from_u64(10);
        let input = edges(64);
        for stream in [
            inject_deletions(&input, DeletionConfig::new(1.0), &mut rng),
            inject_deletions_fast(&input, DeletionConfig::new(1.0), &mut rng),
        ] {
            validate_stream(&stream).expect("well-formed");
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, 64);
            assert_eq!(stats.deletions, 64);
            assert!(crate::final_graph(&stream).is_empty());
        }
    }

    #[test]
    fn single_edge_at_edge_ratios() {
        let input = edges(1);
        let mut rng = StdRng::seed_from_u64(11);
        let kept = inject_deletions(&input, DeletionConfig::new(0.0), &mut rng);
        assert_eq!(kept.len(), 1);
        let gone = inject_deletions(&input, DeletionConfig::new(1.0), &mut rng);
        assert_eq!(gone.len(), 2);
        assert!(gone[0].delta.is_insert());
        assert!(!gone[1].delta.is_insert());
        let gone_fast = inject_deletions_fast(&input, DeletionConfig::new(1.0), &mut rng);
        assert_eq!(gone_fast.len(), 2);
        validate_stream(&gone_fast).expect("well-formed");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = inject_deletions_fast(
            &edges(300),
            DeletionConfig::default(),
            &mut StdRng::seed_from_u64(42),
        );
        let b = inject_deletions_fast(
            &edges(300),
            DeletionConfig::default(),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn both_variants_always_produce_valid_streams(
            n in 1u32..120,
            ratio in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let input = edges(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let slow = inject_deletions(&input, DeletionConfig::new(ratio), &mut rng);
            prop_assert!(validate_stream(&slow).is_ok());
            let fast = inject_deletions_fast(&input, DeletionConfig::new(ratio), &mut rng);
            prop_assert!(validate_stream(&fast).is_ok());
            prop_assert_eq!(
                StreamStats::compute(&slow).deletions,
                StreamStats::compute(&fast).deletions
            );
        }
    }
}
