//! Injection of edge deletions into an insert-only stream.
//!
//! The paper's datasets are insertion-only, so fully dynamic workloads are
//! produced by the procedure of §VI-A: (a) keep the insertions in their
//! natural order, (b) select α% of the edges, (c) place each selected edge's
//! deletion at a position chosen uniformly at random *after* its insertion.
//! The default ratio is α = 20%, motivated by measurements of up to 30% edge
//! deletions on real Twitter data.

use crate::element::StreamElement;
use crate::stream::GraphStream;
use abacus_graph::Edge;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Configuration of the deletion-injection procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeletionConfig {
    /// Fraction of edges that also receive a deletion (the paper's α), in
    /// `[0, 1]`.
    pub ratio: f64,
}

impl Default for DeletionConfig {
    fn default() -> Self {
        // The paper's default: α = 20%.
        DeletionConfig { ratio: 0.20 }
    }
}

impl DeletionConfig {
    /// A configuration with the given α.
    ///
    /// # Panics
    /// Panics if `ratio` is not in `[0, 1]`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "deletion ratio must be in [0, 1]"
        );
        DeletionConfig { ratio }
    }
}

/// Builds a fully dynamic stream from an ordered list of distinct edges by
/// injecting deletions for `config.ratio` of the edges.
///
/// The relative order of the insertions is preserved; each injected deletion
/// is placed uniformly at random in the suffix following its insertion.
pub fn inject_deletions<R: Rng + ?Sized>(
    edges: &[Edge],
    config: DeletionConfig,
    rng: &mut R,
) -> GraphStream {
    let n = edges.len();
    let num_deletions = ((n as f64) * config.ratio).round() as usize;

    // (b) choose which edges get deleted.
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let delete_set: Vec<usize> = indices.into_iter().take(num_deletions).collect();

    // Start from the insert-only stream...
    let mut stream: Vec<StreamElement> = edges.iter().map(|&e| StreamElement::insert(e)).collect();

    // ...and (c) insert each deletion at a random position after its insertion.
    // Deletions are inserted one at a time; positions refer to the stream as it
    // grows, which keeps every deletion strictly after its own insertion and
    // yields a uniform position in the current suffix.
    for &edge_index in &delete_set {
        let edge = edges[edge_index];
        // Position of the insertion in the *current* stream.  Every chosen
        // edge comes from `edges`, so its insertion is always found; skipping
        // an (impossible) miss just drops that one scheduled deletion.
        let Some(insert_pos) = stream
            .iter()
            .position(|e| e.edge == edge && e.delta.is_insert())
        else {
            continue;
        };
        let pos = rng.random_range(insert_pos + 1..=stream.len());
        stream.insert(pos, StreamElement::delete(edge));
    }
    stream
}

/// A Fenwick (binary indexed) tree over per-gap placement weights, supporting
/// O(log n) point updates, prefix sums, and weighted selection.
struct GapWeights {
    tree: Vec<usize>,
}

impl GapWeights {
    /// All `n` gaps start with weight 1 (an empty gap still offers exactly
    /// one placement position: immediately after its insertion).
    fn new(n: usize) -> Self {
        let mut tree = vec![0usize; n + 1];
        for i in 1..=n {
            tree[i] += 1;
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                let carried = tree[i];
                tree[parent] += carried;
            }
        }
        GapWeights { tree }
    }

    fn add(&mut self, mut index: usize, delta: usize) {
        index += 1;
        while index < self.tree.len() {
            self.tree[index] += delta;
            index += index & index.wrapping_neg();
        }
    }

    /// Sum of the weights of gaps `0..index`.
    fn prefix(&self, mut index: usize) -> usize {
        let mut sum = 0;
        while index > 0 {
            sum += self.tree[index];
            index -= index & index.wrapping_neg();
        }
        sum
    }

    /// The smallest gap index whose prefix sum exceeds `target` (i.e. the gap
    /// holding the `target`-th placement position, 0-based).
    fn select(&self, mut target: usize) -> usize {
        let mut index = 0usize;
        let mut mask = (self.tree.len() - 1).next_power_of_two();
        while mask > 0 {
            let next = index + mask;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                index = next;
            }
            mask >>= 1;
        }
        index // 0-based gap
    }
}

/// Same as [`inject_deletions`] but replaces the quadratic re-scan and
/// `Vec::insert` shifting with weighted gap sampling, for O((n + d) log n)
/// expected work.  The sampled distribution is *identical* to the sequential
/// procedure's: both place each deletion (in the same shuffled order)
/// uniformly at random over the positions of the growing suffix after its
/// insertion — preferred for large workloads.
///
/// # Equivalence
///
/// Model the stream as `n` insertion slots, each followed by a *gap* holding
/// the deletions emitted before the next insertion.  When the sequential
/// procedure places the deletion of edge `i`, the candidate positions after
/// insertion `i` are: one per deletion already sitting in a gap `j ≥ i`, plus
/// one at the end of each such gap — i.e. gap `j` offers `c_j + 1` positions,
/// where `c_j` is its current occupancy.  Drawing a gap with probability
/// proportional to `c_j + 1` (a Fenwick-tree weighted draw over the suffix)
/// and then a uniform offset within the chosen gap is therefore exactly the
/// sequential procedure's uniform draw, without ever shifting the stream.
/// The `tests::fast_variant_matches_slow_distribution` test checks this
/// empirically on the full interleaving-pattern distribution.
pub fn inject_deletions_fast<R: Rng + ?Sized>(
    edges: &[Edge],
    config: DeletionConfig,
    rng: &mut R,
) -> GraphStream {
    let n = edges.len();
    let num_deletions = ((n as f64) * config.ratio).round() as usize;

    // (b) choose which edges get deleted, in the same shuffled placement
    // order the sequential variant uses.
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);

    // (c) place each deletion: weighted gap draw over [i, n), then a uniform
    // offset among the chosen gap's c_j + 1 positions.
    let mut gaps: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut weights = GapWeights::new(n);
    for &i in indices.iter().take(num_deletions) {
        let before = weights.prefix(i);
        let total = weights.prefix(n);
        let gap = weights.select(before + rng.random_range(0..total - before));
        debug_assert!(gap >= i, "a deletion may never precede its insertion");
        let offset = rng.random_range(0..=gaps[gap].len());
        gaps[gap].insert(offset, edges[i]);
        weights.add(gap, 1);
    }

    let mut stream = Vec::with_capacity(n + num_deletions);
    for i in 0..n {
        stream.push(StreamElement::insert(edges[i]));
        for &edge in &gaps[i] {
            stream.push(StreamElement::delete(edge));
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{validate_stream, StreamStats};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1000)).collect()
    }

    #[test]
    fn zero_ratio_keeps_stream_insert_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let stream = inject_deletions(&edges(50), DeletionConfig::new(0.0), &mut rng);
        assert_eq!(stream.len(), 50);
        assert!(stream.iter().all(|e| e.delta.is_insert()));
    }

    #[test]
    fn ratio_controls_number_of_deletions() {
        let mut rng = StdRng::seed_from_u64(2);
        for &ratio in &[0.05, 0.1, 0.2, 0.3, 1.0] {
            let stream = inject_deletions(&edges(200), DeletionConfig::new(ratio), &mut rng);
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, 200);
            assert_eq!(stats.deletions, (200.0 * ratio).round() as usize);
            validate_stream(&stream).expect("stream must be well-formed");
        }
    }

    #[test]
    fn deletions_follow_their_insertions() {
        let mut rng = StdRng::seed_from_u64(3);
        let stream = inject_deletions(&edges(100), DeletionConfig::new(0.5), &mut rng);
        validate_stream(&stream).expect("every deletion must follow its insertion");
    }

    #[test]
    fn fast_variant_is_well_formed_and_matches_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        for &ratio in &[0.0, 0.2, 0.3, 1.0] {
            let stream = inject_deletions_fast(&edges(500), DeletionConfig::new(ratio), &mut rng);
            validate_stream(&stream).expect("well-formed");
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, 500);
            assert_eq!(stats.deletions, (500.0 * ratio).round() as usize);
        }
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = edges(100);
        let stream = inject_deletions_fast(&input, DeletionConfig::default(), &mut rng);
        let inserted: Vec<Edge> = stream
            .iter()
            .filter(|e| e.delta.is_insert())
            .map(|e| e.edge)
            .collect();
        assert_eq!(inserted, input);
    }

    #[test]
    #[should_panic(expected = "deletion ratio")]
    fn invalid_ratio_panics() {
        let _ = DeletionConfig::new(1.5);
    }

    #[test]
    fn empty_edge_list_is_fine_at_edge_ratios() {
        for &ratio in &[0.0, 1.0] {
            let mut rng = StdRng::seed_from_u64(9);
            assert!(inject_deletions(&[], DeletionConfig::new(ratio), &mut rng).is_empty());
            assert!(inject_deletions_fast(&[], DeletionConfig::new(ratio), &mut rng).is_empty());
        }
    }

    #[test]
    fn full_deletion_ratio_deletes_every_edge() {
        let mut rng = StdRng::seed_from_u64(10);
        let input = edges(64);
        for stream in [
            inject_deletions(&input, DeletionConfig::new(1.0), &mut rng),
            inject_deletions_fast(&input, DeletionConfig::new(1.0), &mut rng),
        ] {
            validate_stream(&stream).expect("well-formed");
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, 64);
            assert_eq!(stats.deletions, 64);
            assert!(crate::final_graph(&stream).is_empty());
        }
    }

    #[test]
    fn single_edge_at_edge_ratios() {
        let input = edges(1);
        let mut rng = StdRng::seed_from_u64(11);
        let kept = inject_deletions(&input, DeletionConfig::new(0.0), &mut rng);
        assert_eq!(kept.len(), 1);
        let gone = inject_deletions(&input, DeletionConfig::new(1.0), &mut rng);
        assert_eq!(gone.len(), 2);
        assert!(gone[0].delta.is_insert());
        assert!(!gone[1].delta.is_insert());
        let gone_fast = inject_deletions_fast(&input, DeletionConfig::new(1.0), &mut rng);
        assert_eq!(gone_fast.len(), 2);
        validate_stream(&gone_fast).expect("well-formed");
    }

    /// Frequency map of sign patterns (e.g. `"+-++--"`) over repeated runs.
    fn pattern_histogram(
        variant: fn(&[Edge], DeletionConfig, &mut StdRng) -> GraphStream,
        n: u32,
        ratio: f64,
        trials: usize,
        seed: u64,
    ) -> std::collections::BTreeMap<String, usize> {
        let input = edges(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut histogram = std::collections::BTreeMap::new();
        for _ in 0..trials {
            let stream = variant(&input, DeletionConfig::new(ratio), &mut rng);
            let pattern: String = stream
                .iter()
                .map(|e| if e.delta.is_insert() { '+' } else { '-' })
                .collect();
            *histogram.entry(pattern).or_insert(0) += 1;
        }
        histogram
    }

    /// Total variation distance between two pattern histograms.
    fn total_variation(
        a: &std::collections::BTreeMap<String, usize>,
        b: &std::collections::BTreeMap<String, usize>,
        trials: usize,
    ) -> f64 {
        let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
        let mass = |h: &std::collections::BTreeMap<String, usize>, k: &String| {
            *h.get(k).unwrap_or(&0) as f64 / trials as f64
        };
        keys.iter()
            .map(|k| (mass(a, k) - mass(b, k)).abs())
            .sum::<f64>()
            / 2.0
    }

    /// Regression for the distribution bug: the old fast variant placed each
    /// deletion uniformly over *insertion slots* `[i, n-1]`, ignoring how many
    /// deletions already occupied each gap, so its interleaving-pattern
    /// distribution measurably diverged from the sequential procedure's
    /// occupancy-weighted draw (e.g. at n = 2, α = 1 it produced `+-+-` with
    /// probability 1/2 instead of 5/12).  The fixed variant must match the
    /// sequential one on the full sign-pattern distribution.
    #[test]
    fn fast_variant_matches_slow_distribution() {
        const TRIALS: usize = 30_000;
        let slow = pattern_histogram(inject_deletions, 4, 1.0, TRIALS, 0xD15_7A11);
        let fast = pattern_histogram(inject_deletions_fast, 4, 1.0, TRIALS, 0xD15_7B22);
        // Calibration: two independent samplings of the *same* (sequential)
        // distribution, bounding the sampling noise of the statistic.
        let slow2 = pattern_histogram(inject_deletions, 4, 1.0, TRIALS, 0xD15_7C33);
        let noise = total_variation(&slow, &slow2, TRIALS);
        let distance = total_variation(&slow, &fast, TRIALS);
        assert!(
            distance < 0.04,
            "fast/slow pattern distributions diverge: TV {distance:.4} (noise floor {noise:.4})"
        );
        assert!(
            distance < 3.0 * noise.max(0.01),
            "fast/slow TV {distance:.4} is far above the sampling noise {noise:.4}"
        );
    }

    /// The coarser statistic of the same bug: the mean (normalized) stream
    /// position of deletions must agree between the variants.
    #[test]
    fn deletion_positions_match_between_variants() {
        const TRIALS: usize = 2_000;
        let mean_position = |variant: fn(&[Edge], DeletionConfig, &mut StdRng) -> GraphStream,
                             seed: u64| {
            let input = edges(30);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for _ in 0..TRIALS {
                let stream = variant(&input, DeletionConfig::new(0.3), &mut rng);
                let last = (stream.len() - 1) as f64;
                for (position, element) in stream.iter().enumerate() {
                    if element.delta.is_delete() {
                        sum += position as f64 / last;
                        count += 1;
                    }
                }
            }
            sum / count as f64
        };
        let slow = mean_position(inject_deletions, 51);
        let fast = mean_position(inject_deletions_fast, 52);
        assert!(
            (slow - fast).abs() < 0.01,
            "mean deletion position: slow {slow:.4} vs fast {fast:.4}"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = inject_deletions_fast(
            &edges(300),
            DeletionConfig::default(),
            &mut StdRng::seed_from_u64(42),
        );
        let b = inject_deletions_fast(
            &edges(300),
            DeletionConfig::default(),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn both_variants_always_produce_valid_streams(
            n in 1u32..120,
            ratio in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let input = edges(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let slow = inject_deletions(&input, DeletionConfig::new(ratio), &mut rng);
            prop_assert!(validate_stream(&slow).is_ok());
            let fast = inject_deletions_fast(&input, DeletionConfig::new(ratio), &mut rng);
            prop_assert!(validate_stream(&fast).is_ok());
            prop_assert_eq!(
                StreamStats::compute(&slow).deletions,
                StreamStats::compute(&fast).deletions
            );
        }
    }
}
