//! The common interface of every streaming butterfly counter in the workspace.

use crate::{ElementSource, SliceSource, StreamElement, StreamIoError};

/// Pull-chunk size of the source drivers when an estimator does not override
/// [`ButterflyCounter::preferred_chunk`] (PARABACUS substitutes its mini-batch
/// size).  Small enough that the staging buffer is noise next to any sample
/// budget, large enough to amortize the per-chunk bookkeeping.
pub const DEFAULT_SOURCE_CHUNK: usize = 4_096;

/// A streaming butterfly-count estimator.
///
/// Implemented by ABACUS, PARABACUS, the exact oracle, and the insert-only
/// baselines (FLEET, CAS), so that the experiment harness can drive all of
/// them through one code path.
pub trait ButterflyCounter {
    /// Processes one stream element (edge insertion or deletion).
    fn process(&mut self, element: StreamElement);

    /// Processes a slice of stream elements in order and flushes any internal
    /// buffering ([`finish`](Self::finish)), so the estimate reflects the
    /// entire input.
    ///
    /// This is the materialized convenience path; it is defined as driving
    /// [`process_source_chunked`](Self::process_source_chunked) over a
    /// [`SliceSource`], so the materialized and streamed drivers are the same
    /// code and produce bit-identical results.
    fn process_stream(&mut self, stream: &[StreamElement]) {
        let mut source = SliceSource::new(stream);
        self.process_source_chunked(&mut source, self.preferred_chunk())
            // lint:allow(panic-policy): SliceSource is infallible (no I/O), so the chunked driver cannot return an error here
            .expect("in-memory sources never fail");
    }

    /// The driver's preferred pull-chunk size for
    /// [`process_source`](Self::process_source).
    ///
    /// Defaults to [`DEFAULT_SOURCE_CHUNK`]; PARABACUS overrides it with its
    /// mini-batch size so one pull stages exactly one batch.
    fn preferred_chunk(&self) -> usize {
        DEFAULT_SOURCE_CHUNK
    }

    /// Processes every element of a pull-based source in order, then flushes
    /// ([`finish`](Self::finish)).  Returns the number of elements processed.
    ///
    /// Peak additional memory is O(`preferred_chunk`) — the staging buffer —
    /// regardless of stream length: this is the bounded-memory ingestion
    /// path for disk-resident or generated-on-the-fly workloads.
    ///
    /// # Errors
    ///
    /// Stops at the first source error and returns it; the chunks staged
    /// before the erroring one have been processed, the partially staged
    /// chunk is discarded, and `finish` has *not* been called.
    fn process_source(&mut self, source: &mut dyn ElementSource) -> Result<u64, StreamIoError> {
        let chunk = self.preferred_chunk();
        self.process_source_chunked(source, chunk)
    }

    /// [`process_source`](Self::process_source) with an explicit pull-chunk
    /// size.
    ///
    /// Chunking only affects staging granularity, never semantics: every
    /// element is handed to [`process`](Self::process) in stream order and
    /// the single [`finish`](Self::finish) happens at the end of the source,
    /// so estimates, sampler state, and work counters are bit-identical
    /// across chunk sizes and to [`process_stream`](Self::process_stream).
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    ///
    /// # Errors
    /// See [`process_source`](Self::process_source).
    fn process_source_chunked(
        &mut self,
        source: &mut dyn ElementSource,
        chunk: usize,
    ) -> Result<u64, StreamIoError> {
        assert!(chunk >= 1, "pull chunk must hold at least one element");
        let mut staged: Vec<StreamElement> = Vec::new();
        let mut total = 0u64;
        loop {
            staged.clear();
            while staged.len() < chunk {
                match source.next_element() {
                    Some(Ok(element)) => staged.push(element),
                    Some(Err(error)) => return Err(error),
                    None => break,
                }
            }
            total += staged.len() as u64;
            for &element in &staged {
                self.process(element);
            }
            if staged.len() < chunk {
                break; // the source is exhausted
            }
        }
        self.finish();
        Ok(total)
    }

    /// The current butterfly-count estimate.
    ///
    /// Buffered implementations (PARABACUS) may lag behind the elements
    /// handed to [`process`](Self::process): the estimate reflects only
    /// completed mini-batches.  Use [`finish`](Self::finish) for a final
    /// estimate covering everything.
    fn estimate(&self) -> f64;

    /// Flushes any internal buffering and returns the final estimate.
    ///
    /// For eager estimators (ABACUS, the exact oracle, the insert-only
    /// baselines) this is simply [`estimate`](Self::estimate) — every element
    /// is fully accounted for as soon as `process` returns, so the default
    /// implementation suffices.  PARABACUS overrides it to process the
    /// partially filled mini-batch buffer and drain its pipeline first, so
    /// the returned value — and the statistics accessors afterwards — match
    /// what sequential ABACUS would report over the same stream.
    fn finish(&mut self) -> f64 {
        self.estimate()
    }

    /// Resident memory of the estimator in edge equivalents (one edge = two
    /// `u32` endpoints): the sample size for approximate estimators, the full
    /// graph for the exact oracle, **plus** any counting-side duplicates of
    /// that state — ABACUS/PARABACUS charge their memoised sorted hub copies
    /// and frozen CSR snapshot arenas here, so the Table 2 memory numbers
    /// reflect what is actually allocated.
    fn memory_edges(&self) -> usize;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Introspection hook for callers holding the estimator behind
    /// `dyn ButterflyCounter` (the engine registry, ensemble replicas, the
    /// bench harness) that need a concrete type back — per-thread workload
    /// counters, sampler state for parity fingerprints, and the like.
    ///
    /// Returns `None` by default so trivial implementations (test stubs,
    /// wrappers without interesting state) need not opt in; every first-class
    /// estimator in the workspace overrides it with `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Serializes the estimator's full durable state to a byte payload the
    /// matching [`restore_state`](Self::restore_state) can rebuild exactly.
    ///
    /// Takes `&mut self` because saving normalizes buffered work first
    /// (PARABACUS flushes its mini-batch pipeline), so the payload describes
    /// a single well-defined point in the stream.  Two estimators in equal
    /// state produce byte-identical payloads — the recovery parity suite
    /// compares them directly.
    ///
    /// # Errors
    /// [`PersistError::Unsupported`](abacus_graph::persist::PersistError::Unsupported)
    /// by default; estimators opt in by
    /// overriding both this and [`restore_state`](Self::restore_state).
    fn save_state(&mut self) -> Result<Vec<u8>, abacus_graph::persist::PersistError> {
        Err(abacus_graph::persist::PersistError::Unsupported(
            self.name(),
        ))
    }

    /// Restores state captured by [`save_state`](Self::save_state) into an
    /// estimator freshly built from the *same* spec.  After a successful
    /// restore the estimator is bit-identical to the one that saved:
    /// estimates, sampler and RNG state, work counters, and memory
    /// accounting all match.
    ///
    /// # Errors
    /// [`PersistError::Unsupported`](abacus_graph::persist::PersistError::Unsupported)
    /// by default; typed decode errors
    /// (truncation, corruption, wrong estimator kind) when overridden.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), abacus_graph::persist::PersistError> {
        let _ = state;
        Err(abacus_graph::persist::PersistError::Unsupported(
            self.name(),
        ))
    }

    /// Subscribes an incrementally maintained
    /// [`DeltaView`](crate::view::DeltaView) to this estimator's ingest
    /// path, if the estimator hosts one.
    ///
    /// Only delta-circuit hosts (the `Circuit` wrapper in `abacus-core`)
    /// accept subscriptions — they own the authoritative graph each view
    /// folds against.  Everything else keeps the default implementation,
    /// which declines by handing the view back so the caller can rewrap or
    /// report a configuration error instead of silently dropping state.
    ///
    /// # Errors
    /// Returns `Err(view)` (the unconsumed view) when this estimator cannot
    /// host views.
    fn subscribe_view(
        &mut self,
        view: Box<dyn crate::view::DeltaView + Send>,
    ) -> Result<(), Box<dyn crate::view::DeltaView + Send>> {
        Err(view)
    }
}

/// Boxed counters forward every method to the boxed value, so wrappers
/// generic over `C: ButterflyCounter` (the delta circuit, the windowed
/// monitor) can host `Box<dyn ButterflyCounter + Send>` estimators built by
/// the engine registry without a separate dynamic code path.
impl<C: ButterflyCounter + ?Sized> ButterflyCounter for Box<C> {
    fn process(&mut self, element: StreamElement) {
        (**self).process(element);
    }

    fn process_stream(&mut self, stream: &[StreamElement]) {
        (**self).process_stream(stream);
    }

    fn preferred_chunk(&self) -> usize {
        (**self).preferred_chunk()
    }

    fn process_source(&mut self, source: &mut dyn ElementSource) -> Result<u64, StreamIoError> {
        (**self).process_source(source)
    }

    fn process_source_chunked(
        &mut self,
        source: &mut dyn ElementSource,
        chunk: usize,
    ) -> Result<u64, StreamIoError> {
        (**self).process_source_chunked(source, chunk)
    }

    fn estimate(&self) -> f64 {
        (**self).estimate()
    }

    fn finish(&mut self) -> f64 {
        (**self).finish()
    }

    fn memory_edges(&self) -> usize {
        (**self).memory_edges()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }

    fn save_state(&mut self) -> Result<Vec<u8>, abacus_graph::persist::PersistError> {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), abacus_graph::persist::PersistError> {
        (**self).restore_state(state)
    }

    fn subscribe_view(
        &mut self,
        view: Box<dyn crate::view::DeltaView + Send>,
    ) -> Result<(), Box<dyn crate::view::DeltaView + Send>> {
        (**self).subscribe_view(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;

    /// A trivial counter used to exercise the default source drivers.
    #[derive(Default)]
    struct CountingStub {
        processed: usize,
        finishes: usize,
    }

    impl ButterflyCounter for CountingStub {
        fn process(&mut self, _element: StreamElement) {
            self.processed += 1;
        }
        fn estimate(&self) -> f64 {
            self.processed as f64
        }
        fn finish(&mut self) -> f64 {
            self.finishes += 1;
            self.estimate()
        }
        fn memory_edges(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "stub"
        }
    }

    fn stream_of(n: u32) -> Vec<StreamElement> {
        (0..n)
            .map(|i| StreamElement::insert(Edge::new(i, i)))
            .collect()
    }

    #[test]
    fn default_process_stream_visits_every_element_and_finishes_once() {
        let mut stub = CountingStub::default();
        stub.process_stream(&stream_of(10));
        assert_eq!(stub.estimate(), 10.0);
        assert_eq!(stub.finishes, 1);
        assert_eq!(stub.name(), "stub");
        assert_eq!(stub.memory_edges(), 0);
        assert_eq!(stub.preferred_chunk(), DEFAULT_SOURCE_CHUNK);
    }

    #[test]
    fn source_driver_is_chunk_size_independent() {
        let stream = stream_of(23);
        for chunk in [1usize, 7, 23, 1_000] {
            let mut stub = CountingStub::default();
            let mut source = SliceSource::new(&stream);
            let total = stub.process_source_chunked(&mut source, chunk).unwrap();
            assert_eq!(total, 23, "chunk {chunk}");
            assert_eq!(stub.processed, 23, "chunk {chunk}");
            assert_eq!(stub.finishes, 1, "chunk {chunk}");
        }
        // Empty sources still finish (flushing buffered work is semantics,
        // not an optimization).
        let mut stub = CountingStub::default();
        let total = stub.process_source(&mut SliceSource::new(&[])).unwrap();
        assert_eq!(total, 0);
        assert_eq!(stub.finishes, 1);
    }

    #[test]
    fn source_driver_stops_at_the_first_error() {
        struct FailingSource {
            yielded: usize,
        }
        impl ElementSource for FailingSource {
            fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
                if self.yielded < 3 {
                    self.yielded += 1;
                    Some(Ok(StreamElement::insert(Edge::new(0, self.yielded as u32))))
                } else {
                    Some(Err(StreamIoError::format("boom")))
                }
            }
        }
        let mut stub = CountingStub::default();
        let err = stub
            .process_source_chunked(&mut FailingSource { yielded: 0 }, 2)
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        // The first full chunk (2 elements) was processed before the error
        // surfaced in the second chunk; no finish happened.
        assert_eq!(stub.processed, 2);
        assert_eq!(stub.finishes, 0);
    }

    #[test]
    #[should_panic(expected = "chunk")]
    fn zero_chunk_panics() {
        let mut stub = CountingStub::default();
        let _ = stub.process_source_chunked(&mut SliceSource::new(&[]), 0);
    }

    #[test]
    fn boxed_counters_forward_and_decline_view_subscriptions_by_default() {
        struct NullView;
        impl crate::view::DeltaView for NullView {
            fn name(&self) -> &'static str {
                "null"
            }
            fn apply_delta(&mut self, _event: &crate::view::DeltaEvent<'_>) {}
            fn report(&self, _graph: &abacus_graph::BipartiteGraph) -> Vec<String> {
                Vec::new()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let mut boxed: Box<dyn ButterflyCounter + Send> = Box::new(CountingStub::default());
        boxed.process_stream(&stream_of(4));
        assert_eq!(boxed.estimate(), 4.0);
        assert_eq!(boxed.name(), "stub");
        assert_eq!(boxed.memory_edges(), 0);
        assert!(boxed.as_any().is_none());
        // The default subscription hook declines and hands the view back
        // unconsumed, including through the box.
        let declined = boxed
            .subscribe_view(Box::new(NullView))
            .expect_err("stubs host no views");
        assert_eq!(declined.name(), "null");
    }
}
