//! Correlated-deletion injection: GDPR-style *vertex wipes*.
//!
//! The α-deletion model ([`DeletionInjector`](crate::DeletionInjector))
//! deletes individual edges independently, which is the paper's workload but
//! not the hardest real-world one: a right-to-erasure request removes **one
//! vertex's entire edge set at once** — a burst of correlated deletions that
//! destroys every butterfly through that vertex in a single stream instant.
//! [`VertexWipeInjector`] layers that workload onto any element source:
//!
//! * `wipes` wipe events are scheduled at uniformly random element slots
//!   (drawn up front from a caller-supplied seed, so the stream is
//!   deterministic per seed),
//! * at each slot a uniformly random *live* left vertex is chosen and
//!   deletions of its whole current neighborhood are emitted as one burst,
//! * the injector tracks live adjacency as the stream flows, so every
//!   emitted deletion targets a live edge and the output always validates —
//!   and upstream deletions of already-wiped edges (e.g. scheduled earlier
//!   by a [`DeletionInjector`](crate::DeletionInjector) running below this
//!   adapter) are swallowed rather than emitted twice.
//!
//! # Memory
//!
//! O(live edges): the injector must know each vertex's current neighborhood
//! to erase it.  This is a *generator-side* cost for building hostile
//! workloads — the estimators consuming the stream stay O(budget).

use crate::element::StreamElement;
use crate::io::StreamIoError;
use crate::source::ElementSource;
use abacus_graph::Edge;
use rand::{Rng, RngExt};
use std::collections::VecDeque;

/// Wraps an element source and injects `wipes` whole-vertex deletion bursts
/// at uniformly random slots.  See the module docs for semantics.
#[derive(Debug)]
pub struct VertexWipeInjector<S, R> {
    inner: S,
    rng: R,
    /// Remaining wipe slots, sorted descending so the next one pops cheaply.
    slots: Vec<u64>,
    /// Live adjacency: left vertex -> its current right neighbors.  Vertex
    /// keys are kept sorted so the wiped-vertex draw is deterministic per
    /// seed regardless of hash-map iteration order.
    adjacency: abacus_graph::FxHashMap<u32, Vec<u32>>,
    ready: VecDeque<StreamElement>,
    /// Index of the next element to pull from the inner source.
    index: u64,
    done: bool,
    wiped_edges: u64,
}

impl<S: ElementSource, R: Rng> VertexWipeInjector<S, R> {
    /// Wraps `inner`, scheduling `wipes` vertex wipes at slots drawn
    /// uniformly from `[0, expected_len)`.  `expected_len` should be the
    /// number of elements the base source yields; wipes scheduled past an
    /// early end of the stream fire at the end instead (still after their
    /// insertions), and a wipe that finds no live vertex is skipped.
    pub fn new(inner: S, wipes: usize, expected_len: u64, mut rng: R) -> Self {
        let mut slots: Vec<u64> = (0..wipes)
            .map(|_| {
                if expected_len == 0 {
                    0
                } else {
                    rng.random_range(0..expected_len)
                }
            })
            .collect();
        slots.sort_unstable_by(|a, b| b.cmp(a));
        VertexWipeInjector {
            inner,
            rng,
            slots,
            adjacency: abacus_graph::FxHashMap::default(),
            ready: VecDeque::new(),
            index: 0,
            done: false,
            wiped_edges: 0,
        }
    }

    /// Total edges erased by wipe bursts so far.
    #[must_use]
    pub fn wiped_edges(&self) -> u64 {
        self.wiped_edges
    }

    /// Applies one pass-through element to the live adjacency.  Returns
    /// `false` for a deletion of an edge that is no longer live (already
    /// wiped) — the caller swallows it.
    fn track(&mut self, element: StreamElement) -> bool {
        let Edge { left, right } = element.edge;
        if element.delta.is_insert() {
            self.adjacency.entry(left).or_default().push(right);
            return true;
        }
        let Some(neighbors) = self.adjacency.get_mut(&left) else {
            return false;
        };
        let Some(position) = neighbors.iter().position(|&r| r == right) else {
            return false;
        };
        neighbors.remove(position);
        if neighbors.is_empty() {
            self.adjacency.remove(&left);
        }
        true
    }

    /// Erases one uniformly random live left vertex: removes its adjacency
    /// entry and queues deletions of its whole neighborhood.
    fn fire_wipe(&mut self) {
        if self.adjacency.is_empty() {
            return; // nothing live to erase
        }
        let mut vertices: Vec<u32> = self.adjacency.keys().copied().collect();
        vertices.sort_unstable();
        let victim = vertices[self.rng.random_range(0..vertices.len())];
        // The victim was drawn from the live key list built just above, so
        // removal always succeeds; an (impossible) miss wipes nothing.
        let Some(neighbors) = self.adjacency.remove(&victim) else {
            return;
        };
        self.wiped_edges += neighbors.len() as u64;
        for right in neighbors {
            self.ready
                .push_back(StreamElement::delete(Edge::new(victim, right)));
        }
    }

    /// Fires every wipe scheduled at or before `slot` (or all remaining).
    fn release(&mut self, slot: Option<u64>) {
        while let Some(&next) = self.slots.last() {
            if slot.is_some_and(|s| next > s) {
                break;
            }
            self.slots.pop();
            self.fire_wipe();
        }
    }
}

impl<S: ElementSource, R: Rng> ElementSource for VertexWipeInjector<S, R> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        loop {
            if let Some(element) = self.ready.pop_front() {
                return Some(Ok(element));
            }
            if self.done {
                return None;
            }
            match self.inner.next_element() {
                None => {
                    // Stream ended before every scheduled slot: fire the
                    // remaining wipes over whatever is still live.
                    self.done = true;
                    self.release(None);
                }
                Some(Err(error)) => return Some(Err(error)),
                Some(Ok(element)) => {
                    let slot = self.index;
                    self.index += 1;
                    let live = self.track(element);
                    if live {
                        self.ready.push_back(element);
                    }
                    // Wipes at this slot fire after the element passes
                    // through, so the burst never precedes its insertions.
                    self.release(Some(slot));
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, _) = self.inner.size_hint();
        // Wipes add deletions and swallow duplicates; only the lower bound
        // net of queued output is meaningful.
        (lower + self.ready.len(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::uniform_bipartite;
    use crate::source::{read_all, SliceSource};
    use crate::stream::{validate_stream, StreamStats};
    use crate::{DeletionConfig, DeletionInjector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_inserts(edges: usize, seed: u64) -> Vec<StreamElement> {
        uniform_bipartite(40, 40, edges, &mut StdRng::seed_from_u64(seed))
            .into_iter()
            .map(StreamElement::insert)
            .collect()
    }

    #[test]
    fn wiped_stream_stays_valid_and_erases_whole_neighborhoods() {
        let base = base_inserts(400, 3);
        let mut injector = VertexWipeInjector::new(
            SliceSource::new(&base),
            6,
            base.len() as u64,
            StdRng::seed_from_u64(9),
        );
        let stream = read_all(&mut injector).unwrap();
        validate_stream(&stream).expect("every deletion follows its live insertion");
        let stats = StreamStats::compute(&stream);
        assert_eq!(stats.insertions, base.len());
        assert_eq!(stats.deletions as u64, injector.wiped_edges());
        assert!(injector.wiped_edges() > 0, "wipes found live vertices");
    }

    #[test]
    fn wipes_compose_with_alpha_deletions() {
        let base = base_inserts(500, 11);
        let alpha = DeletionInjector::new(
            SliceSource::new(&base),
            DeletionConfig::new(0.2),
            base.len(),
            StdRng::seed_from_u64(1),
        );
        // The wipe layer runs downstream of the α-injector and must swallow
        // any α-deletion whose edge a wipe already erased.
        let mut injector = VertexWipeInjector::new(
            alpha,
            8,
            (base.len() as f64 * 1.2) as u64,
            StdRng::seed_from_u64(2),
        );
        let stream = read_all(&mut injector).unwrap();
        validate_stream(&stream).expect("composed stream is well-formed");
        let stats = StreamStats::compute(&stream);
        assert_eq!(stats.insertions, base.len());
        assert!(stats.deletions > 0);
    }

    #[test]
    fn wipe_streams_are_deterministic_per_seed() {
        let base = base_inserts(300, 5);
        let run = |seed: u64| {
            read_all(&mut VertexWipeInjector::new(
                SliceSource::new(&base),
                5,
                base.len() as u64,
                StdRng::seed_from_u64(seed),
            ))
            .unwrap()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }

    #[test]
    fn zero_wipes_is_transparent_and_empty_streams_are_safe() {
        let base = base_inserts(50, 1);
        let mut none = VertexWipeInjector::new(
            SliceSource::new(&base),
            0,
            base.len() as u64,
            StdRng::seed_from_u64(0),
        );
        assert_eq!(read_all(&mut none).unwrap(), base);

        let empty: Vec<StreamElement> = Vec::new();
        let mut wiped =
            VertexWipeInjector::new(SliceSource::new(&empty), 3, 0, StdRng::seed_from_u64(0));
        assert!(read_all(&mut wiped).unwrap().is_empty());
    }
}
