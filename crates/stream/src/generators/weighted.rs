//! Weighted discrete sampling via the alias method (Vose's algorithm).
//!
//! The Chung–Lu generator needs to draw millions of vertices proportionally to
//! per-vertex weights; the alias method gives O(1) draws after an O(n) build.

use rand::{Rng, RngExt};

/// Samples indices `0..n` with probability proportional to the construction
/// weights, in O(1) per draw.
#[derive(Debug, Clone)]
pub struct WeightedAliasSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedAliasSampler {
    /// Builds the sampler from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must not be empty");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0usize; n];

        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical residue: remaining columns are full.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }

        WeightedAliasSampler { prob, alias }
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the sampler has no categories (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Power-law weights `w_i = (i + 1)^(-1/(γ - 1))`, the standard expected-degree
/// profile used by Chung–Lu style generators (γ is the degree exponent).
#[must_use]
pub fn power_law_weights(n: usize, exponent: f64) -> Vec<f64> {
    assert!(exponent > 1.0, "power-law exponent must exceed 1");
    let beta = 1.0 / (exponent - 1.0);
    (0..n).map(|i| ((i + 1) as f64).powf(-beta)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_all_categories() {
        let sampler = WeightedAliasSampler::new(&[1.0; 8]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..16_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_600..2_400).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn skewed_weights_are_respected() {
        let sampler = WeightedAliasSampler::new(&[8.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let p0 = f64::from(counts[0]) / 50_000.0;
        assert!((p0 - 0.8).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zero_weight_categories_are_never_drawn() {
        let sampler = WeightedAliasSampler::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = sampler.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn single_category() {
        let sampler = WeightedAliasSampler::new(&[3.5]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.len(), 1);
        assert!(!sampler.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_weights_panic() {
        let _ = WeightedAliasSampler::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = WeightedAliasSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn power_law_weights_are_decreasing() {
        let w = power_law_weights(100, 2.5);
        assert_eq!(w.len(), 100);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert!((w[0] - 1.0).abs() < 1e-12);
    }
}
