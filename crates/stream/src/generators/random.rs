//! Uniform random bipartite graphs.

use abacus_graph::{Edge, FxHashSet};
use rand::{Rng, RngExt};

/// Generates `edges` distinct edges drawn uniformly at random from the
/// complete bipartite graph `K_{left_vertices, right_vertices}`.
///
/// # Panics
/// Panics if more edges are requested than exist in the complete graph.
pub fn uniform_bipartite<R: Rng + ?Sized>(
    left_vertices: u32,
    right_vertices: u32,
    edges: usize,
    rng: &mut R,
) -> Vec<Edge> {
    let capacity = u64::from(left_vertices) * u64::from(right_vertices);
    assert!(
        edges as u64 <= capacity,
        "requested {edges} edges but only {capacity} exist in K_{{{left_vertices},{right_vertices}}}"
    );
    assert!(left_vertices > 0 && right_vertices > 0 || edges == 0);

    // Dense request: enumerate and partially shuffle to avoid rejection storms.
    if edges as u64 * 2 >= capacity {
        let mut all: Vec<Edge> = Vec::with_capacity(capacity as usize);
        for l in 0..left_vertices {
            for r in 0..right_vertices {
                all.push(Edge::new(l, r));
            }
        }
        // Partial Fisher–Yates: the first `edges` positions become a uniform
        // sample without replacement.
        for i in 0..edges {
            let j = rng.random_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(edges);
        return all;
    }

    // Sparse request: rejection sampling with a seen-set.
    let mut seen: FxHashSet<Edge> = FxHashSet::default();
    let mut out = Vec::with_capacity(edges);
    while out.len() < edges {
        let e = Edge::new(
            rng.random_range(0..left_vertices),
            rng.random_range(0..right_vertices),
        );
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn produces_requested_number_of_distinct_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = uniform_bipartite(100, 50, 2_000, &mut rng);
        assert_eq!(edges.len(), 2_000);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), 2_000);
        assert!(edges.iter().all(|e| e.left < 100 && e.right < 50));
    }

    #[test]
    fn dense_request_uses_enumeration_path() {
        let mut rng = StdRng::seed_from_u64(2);
        let edges = uniform_bipartite(10, 10, 90, &mut rng);
        assert_eq!(edges.len(), 90);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), 90);
    }

    #[test]
    fn full_graph_request() {
        let mut rng = StdRng::seed_from_u64(3);
        let edges = uniform_bipartite(5, 4, 20, &mut rng);
        assert_eq!(edges.len(), 20);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn zero_edges_is_fine() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(uniform_bipartite(5, 4, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_edges_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = uniform_bipartite(3, 3, 10, &mut rng);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = uniform_bipartite(50, 50, 500, &mut StdRng::seed_from_u64(9));
        let b = uniform_bipartite(50, 50, 500, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn always_distinct_and_in_range(
            l in 1u32..40,
            r in 1u32..40,
            frac in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let cap = (l as usize) * (r as usize);
            let m = ((cap as f64) * frac) as usize;
            let mut rng = StdRng::seed_from_u64(seed);
            let edges = uniform_bipartite(l, r, m, &mut rng);
            prop_assert_eq!(edges.len(), m);
            let unique: BTreeSet<_> = edges.iter().copied().collect();
            prop_assert_eq!(unique.len(), m);
            prop_assert!(edges.iter().all(|e| e.left < l && e.right < r));
        }
    }
}
