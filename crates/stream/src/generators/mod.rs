//! Synthetic bipartite graph generators.
//!
//! The paper evaluates on four KONECT datasets that are too large to ship or
//! to replay at full scale on a development machine, so this module provides
//! generators that produce *scaled-down analogs* with the same qualitative
//! shape (degree skew, left/right imbalance, butterfly-density ordering).
//! See `DESIGN.md` §3 for the substitution rationale.
//!
//! * [`random`] — uniform (Erdős–Rényi-style) bipartite graphs,
//! * [`chung_lu`] — power-law expected-degree (Chung–Lu) bipartite graphs,
//! * [`block`] — community/block-structured bipartite graphs (butterfly-dense
//!   clusters, used for anomaly-detection style examples),
//! * [`weighted`] — the alias-method weighted sampler backing the generators,
//! * [`dataset`] — the four named analogs of Table II,
//! * [`wipe`] — correlated whole-vertex deletion bursts (GDPR erase-user).

pub mod block;
pub mod chung_lu;
pub mod dataset;
pub mod random;
pub mod weighted;
pub mod wipe;

pub use block::{block_bipartite, BlockConfig};
pub use chung_lu::{chung_lu_bipartite, ChungLuConfig};
pub use dataset::{Dataset, DatasetSpec};
pub use random::uniform_bipartite;
pub use weighted::WeightedAliasSampler;
pub use wipe::VertexWipeInjector;
