//! Block-structured (community) bipartite graphs.
//!
//! Many butterfly-counting applications — anomaly and fraud detection in
//! particular — care about graphs where small groups of left vertices interact
//! densely with small groups of right vertices (e.g. a botnet of accounts
//! rating the same products).  The block model partitions both sides into
//! blocks and places a configurable fraction of edges inside the diagonal
//! blocks, producing butterfly-dense communities on top of a sparse
//! background.

use abacus_graph::{Edge, FxHashSet};
use rand::{Rng, RngExt};

/// Parameters of the block/community generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockConfig {
    /// Number of left vertices.
    pub left_vertices: u32,
    /// Number of right vertices.
    pub right_vertices: u32,
    /// Number of distinct edges to generate.
    pub edges: usize,
    /// Number of diagonal blocks (communities).
    pub blocks: u32,
    /// Probability that an edge is placed inside a randomly chosen block
    /// rather than uniformly across the whole graph.
    pub intra_block_probability: f64,
}

impl BlockConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on an empty partition with non-zero edges, more edges than the
    /// complete graph, zero blocks, or an out-of-range probability.
    pub fn validate(&self) {
        let capacity = u64::from(self.left_vertices) * u64::from(self.right_vertices);
        assert!(self.edges as u64 <= capacity, "too many edges requested");
        assert!(self.blocks >= 1, "at least one block is required");
        assert!(
            (0.0..=1.0).contains(&self.intra_block_probability),
            "intra-block probability must be in [0, 1]"
        );
        assert!(self.edges == 0 || (self.left_vertices > 0 && self.right_vertices > 0));
        assert!(
            self.blocks <= self.left_vertices.max(1) && self.blocks <= self.right_vertices.max(1),
            "more blocks than vertices on one side"
        );
    }
}

/// Generates a bipartite graph with community structure.
pub fn block_bipartite<R: Rng + ?Sized>(config: BlockConfig, rng: &mut R) -> Vec<Edge> {
    config.validate();
    if config.edges == 0 {
        return Vec::new();
    }

    let left_block_size = config.left_vertices.div_ceil(config.blocks);
    let right_block_size = config.right_vertices.div_ceil(config.blocks);

    let mut seen: FxHashSet<Edge> = FxHashSet::default();
    let mut out = Vec::with_capacity(config.edges);
    let max_attempts = config.edges.saturating_mul(200).max(10_000);
    let mut attempts = 0usize;

    while out.len() < config.edges && attempts < max_attempts {
        attempts += 1;
        let e = if rng.random_bool(config.intra_block_probability) {
            // Pick a block, then endpoints inside that block.
            let b = rng.random_range(0..config.blocks);
            let l_lo = b * left_block_size;
            let l_hi = ((b + 1) * left_block_size).min(config.left_vertices);
            let r_lo = b * right_block_size;
            let r_hi = ((b + 1) * right_block_size).min(config.right_vertices);
            if l_lo >= l_hi || r_lo >= r_hi {
                continue;
            }
            Edge::new(rng.random_range(l_lo..l_hi), rng.random_range(r_lo..r_hi))
        } else {
            Edge::new(
                rng.random_range(0..config.left_vertices),
                rng.random_range(0..config.right_vertices),
            )
        };
        if seen.insert(e) {
            out.push(e);
        }
    }
    // Saturated blocks: top up with background edges.
    while out.len() < config.edges {
        let e = Edge::new(
            rng.random_range(0..config.left_vertices),
            rng.random_range(0..config.right_vertices),
        );
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

/// Membership helper: the block a left/right vertex belongs to under the
/// given configuration (used by the anomaly-detection example to label
/// planted communities).
#[must_use]
pub fn block_of(config: &BlockConfig, left_id: u32) -> u32 {
    let left_block_size = config.left_vertices.div_ceil(config.blocks);
    (left_id / left_block_size).min(config.blocks - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::{count_butterflies, BipartiteGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn config(intra: f64) -> BlockConfig {
        BlockConfig {
            left_vertices: 600,
            right_vertices: 600,
            edges: 12_000,
            blocks: 12,
            intra_block_probability: intra,
        }
    }

    #[test]
    fn produces_requested_distinct_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = block_bipartite(config(0.8), &mut rng);
        assert_eq!(edges.len(), 12_000);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), 12_000);
    }

    #[test]
    fn community_structure_increases_butterflies() {
        let mut rng = StdRng::seed_from_u64(2);
        let clustered = BipartiteGraph::from_edges(block_bipartite(config(0.9), &mut rng));
        let uniform = BipartiteGraph::from_edges(block_bipartite(config(0.0), &mut rng));
        let b_clustered = count_butterflies(&clustered);
        let b_uniform = count_butterflies(&uniform);
        assert!(
            b_clustered > 3 * b_uniform,
            "clustered {b_clustered} vs uniform {b_uniform}"
        );
    }

    #[test]
    fn block_of_maps_vertices_to_blocks() {
        let cfg = config(0.5);
        assert_eq!(block_of(&cfg, 0), 0);
        assert_eq!(block_of(&cfg, 599), 11);
        assert!(block_of(&cfg, 300) < cfg.blocks);
    }

    #[test]
    fn zero_edges_and_single_block() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = BlockConfig {
            left_vertices: 10,
            right_vertices: 10,
            edges: 0,
            blocks: 1,
            intra_block_probability: 1.0,
        };
        assert!(block_bipartite(cfg, &mut rng).is_empty());
    }

    #[test]
    fn saturated_block_falls_back_to_background() {
        // One block of 4x4 = 16 possible intra edges but 50 requested edges.
        let cfg = BlockConfig {
            left_vertices: 20,
            right_vertices: 20,
            edges: 50,
            blocks: 5,
            intra_block_probability: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let edges = block_bipartite(cfg, &mut rng);
        assert_eq!(edges.len(), 50);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        config(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let mut cfg = config(0.5);
        cfg.blocks = 0;
        cfg.validate();
    }
}
