//! Bipartite Chung–Lu (expected power-law degree) graphs.
//!
//! Real bipartite interaction graphs (user–product, domain–tracker, …) have
//! heavily skewed degree distributions.  The Chung–Lu model draws each edge's
//! endpoints proportionally to per-vertex weights; with power-law weights the
//! resulting degree sequences follow a power law in expectation, which is the
//! property that drives butterfly density and per-edge counting cost.

use super::weighted::{power_law_weights, WeightedAliasSampler};
use abacus_graph::{Edge, FxHashSet};
use rand::{Rng, RngExt};

/// Parameters of the bipartite Chung–Lu generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLuConfig {
    /// Number of left vertices.
    pub left_vertices: u32,
    /// Number of right vertices.
    pub right_vertices: u32,
    /// Number of distinct edges to generate.
    pub edges: usize,
    /// Power-law exponent of the left degree distribution (must be > 1).
    pub left_exponent: f64,
    /// Power-law exponent of the right degree distribution (must be > 1).
    pub right_exponent: f64,
}

impl ChungLuConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if a partition is empty while edges are requested, if the
    /// requested edge count exceeds the complete graph, or if an exponent is
    /// not greater than 1.
    pub fn validate(&self) {
        let capacity = u64::from(self.left_vertices) * u64::from(self.right_vertices);
        assert!(
            self.edges as u64 <= capacity,
            "requested {} edges but only {capacity} are possible",
            self.edges
        );
        assert!(self.left_exponent > 1.0 && self.right_exponent > 1.0);
        assert!(self.edges == 0 || (self.left_vertices > 0 && self.right_vertices > 0));
    }
}

/// Generates a bipartite graph with power-law expected degrees.
///
/// Edges are drawn by sampling a left endpoint and a right endpoint from their
/// respective weight distributions and keeping distinct pairs until the
/// requested count is reached.  Vertex ids are randomly permuted so that the
/// id order carries no information about degree.
pub fn chung_lu_bipartite<R: Rng + ?Sized>(config: ChungLuConfig, rng: &mut R) -> Vec<Edge> {
    config.validate();
    if config.edges == 0 {
        return Vec::new();
    }

    let left_weights = power_law_weights(config.left_vertices as usize, config.left_exponent);
    let right_weights = power_law_weights(config.right_vertices as usize, config.right_exponent);
    let left_sampler = WeightedAliasSampler::new(&left_weights);
    let right_sampler = WeightedAliasSampler::new(&right_weights);

    // Random id permutations decouple vertex id from expected degree.
    let left_perm = random_permutation(config.left_vertices, rng);
    let right_perm = random_permutation(config.right_vertices, rng);

    let mut seen: FxHashSet<Edge> = FxHashSet::default();
    let mut out = Vec::with_capacity(config.edges);
    // Rejection sampling; hub–hub collisions are common, so bound the attempts
    // per accepted edge generously before degrading to uniform fill.
    let max_attempts = config.edges.saturating_mul(200).max(10_000);
    let mut attempts = 0usize;
    while out.len() < config.edges && attempts < max_attempts {
        attempts += 1;
        let l = left_perm[left_sampler.sample(rng)];
        let r = right_perm[right_sampler.sample(rng)];
        let e = Edge::new(l, r);
        if seen.insert(e) {
            out.push(e);
        }
    }
    // Extremely skewed configurations may exhaust the attempt budget because
    // the heavy hubs are saturated; top up with uniform edges to honour the
    // requested edge count (this only perturbs the tail of the distribution).
    while out.len() < config.edges {
        let e = Edge::new(
            rng.random_range(0..config.left_vertices),
            rng.random_range(0..config.right_vertices),
        );
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

fn random_permutation<R: Rng + ?Sized>(n: u32, rng: &mut R) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::{BipartiteGraph, Side};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn config(edges: usize) -> ChungLuConfig {
        ChungLuConfig {
            left_vertices: 2_000,
            right_vertices: 500,
            edges,
            left_exponent: 2.2,
            right_exponent: 2.0,
        }
    }

    #[test]
    fn produces_distinct_edges_of_requested_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = chung_lu_bipartite(config(20_000), &mut rng);
        assert_eq!(edges.len(), 20_000);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), 20_000);
        assert!(edges.iter().all(|e| e.left < 2_000 && e.right < 500));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let edges = chung_lu_bipartite(config(20_000), &mut rng);
        let g = BipartiteGraph::from_edges(edges);
        let max_right = g.max_degree(Side::Right);
        let avg_right = 20_000.0 / g.num_right_vertices() as f64;
        // A power-law right side must have a hub far above the average degree.
        assert!(
            (max_right as f64) > 4.0 * avg_right,
            "max {max_right} vs avg {avg_right}"
        );
    }

    #[test]
    fn zero_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(chung_lu_bipartite(config(0), &mut rng).is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = chung_lu_bipartite(config(5_000), &mut StdRng::seed_from_u64(5));
        let b = chung_lu_bipartite(config(5_000), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn saturated_configuration_still_completes() {
        // Tiny complete-ish graph forces the uniform top-up path.
        let cfg = ChungLuConfig {
            left_vertices: 20,
            right_vertices: 20,
            edges: 390,
            left_exponent: 1.5,
            right_exponent: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let edges = chung_lu_bipartite(cfg, &mut rng);
        assert_eq!(edges.len(), 390);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), 390);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn over_capacity_panics() {
        let cfg = ChungLuConfig {
            left_vertices: 3,
            right_vertices: 3,
            edges: 100,
            left_exponent: 2.0,
            right_exponent: 2.0,
        };
        chung_lu_bipartite(cfg, &mut StdRng::seed_from_u64(0));
    }
}
