//! Scaled-down analogs of the paper's KONECT datasets (Table II).
//!
//! The paper evaluates on MovieLens (10M edges), LiveJournal (112M), Trackers
//! (140.6M), and Orkut (327M).  Those graphs cannot be redistributed here and
//! are far too large for a laptop-scale reproduction, so each dataset is
//! replaced by a deterministic synthetic analog with:
//!
//! * ≈100–1000× fewer edges,
//! * the same left/right size *ratio* as the original (Table II),
//! * a power-law (Chung–Lu) degree profile whose exponents are tuned so that
//!   the **butterfly-density ordering** of Table II is preserved
//!   (MovieLens ≫ LiveJournal ≳ Trackers > Orkut, density defined as B/|E|⁴),
//! * a fixed per-dataset RNG seed so every experiment sees the same graph.
//!
//! Because the streaming estimators' accuracy depends on the sample-size to
//! stream-size *ratio* rather than on absolute scale, the experiment harness
//! also scales the paper's sample sizes (75K/150K/300K) by the same factor.

use super::chung_lu::{chung_lu_bipartite, ChungLuConfig};
use crate::deletion::{inject_deletions_fast, DeletionConfig};
use crate::stream::GraphStream;
use abacus_graph::Edge;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four dataset analogs used throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Analog of MovieLens: user–movie ratings; small, very butterfly-dense.
    MovielensLike,
    /// Analog of LiveJournal: user–group memberships.
    LivejournalLike,
    /// Analog of Trackers: domain–tracker edges, extreme hub skew.
    TrackersLike,
    /// Analog of Orkut: user–group memberships; largest and sparsest.
    OrkutLike,
}

impl Dataset {
    /// All datasets in the order of Table II.
    #[must_use]
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::MovielensLike,
            Dataset::LivejournalLike,
            Dataset::TrackersLike,
            Dataset::OrkutLike,
        ]
    }

    /// Short display name used in experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dataset::MovielensLike => "Movielens-like",
            Dataset::LivejournalLike => "LiveJournal-like",
            Dataset::TrackersLike => "Trackers-like",
            Dataset::OrkutLike => "Orkut-like",
        }
    }

    /// The generator specification of the analog.
    #[must_use]
    pub fn spec(self) -> DatasetSpec {
        match self {
            // Original: |E|=10M, |L|=69.8K users, |R|=10.6K movies.
            // Analog keeps the ~6.6:1 L:R ratio and a dense right side.
            Dataset::MovielensLike => DatasetSpec {
                dataset: self,
                left_vertices: 2_600,
                right_vertices: 400,
                edges: 60_000,
                left_exponent: 2.2,
                right_exponent: 2.3,
                seed: 0xAB_AC_05_01,
                paper_edges: 10_000_000,
                paper_left: 69_800,
                paper_right: 10_600,
                paper_butterflies: 1.1e12,
            },
            // Original: |E|=112M, |L|=3.2M, |R|=10.7M.
            Dataset::LivejournalLike => DatasetSpec {
                dataset: self,
                left_vertices: 6_000,
                right_vertices: 20_000,
                edges: 110_000,
                left_exponent: 2.1,
                right_exponent: 2.3,
                seed: 0xAB_AC_05_02,
                paper_edges: 112_000_000,
                paper_left: 3_200_000,
                paper_right: 10_700_000,
                paper_butterflies: 3.3e12,
            },
            // Original: |E|=140.6M, |L|=27.6M domains, |R|=12.7M trackers.
            Dataset::TrackersLike => DatasetSpec {
                dataset: self,
                left_vertices: 20_000,
                right_vertices: 9_000,
                edges: 130_000,
                left_exponent: 2.2,
                right_exponent: 2.0,
                seed: 0xAB_AC_05_03,
                paper_edges: 140_600_000,
                paper_left: 27_600_000,
                paper_right: 12_700_000,
                paper_butterflies: 2.0e13,
            },
            // Original: |E|=327M, |L|=2.7M users, |R|=8.73M groups.
            Dataset::OrkutLike => DatasetSpec {
                dataset: self,
                left_vertices: 16_000,
                right_vertices: 40_000,
                edges: 150_000,
                left_exponent: 2.3,
                right_exponent: 2.6,
                seed: 0xAB_AC_05_04,
                paper_edges: 327_000_000,
                paper_left: 2_700_000,
                paper_right: 8_730_000,
                paper_butterflies: 2.21e13,
            },
        }
    }

    /// Generates the (deterministic) insert-only edge list of the analog.
    #[must_use]
    pub fn edges(self) -> Vec<Edge> {
        self.spec().generate_edges()
    }

    /// Generates a fully dynamic stream with deletion ratio `alpha`, seeded by
    /// `trial` so repeated trials see different deletion placements (as in the
    /// paper's 10-trial averages) while the underlying graph stays fixed.
    #[must_use]
    pub fn stream(self, alpha: f64, trial: u64) -> GraphStream {
        self.spec().stream(alpha, trial)
    }

    /// The edge-count scale factor of the analog relative to the original
    /// dataset (used to scale the paper's sample sizes).
    #[must_use]
    pub fn scale_factor(self) -> f64 {
        let spec = self.spec();
        spec.paper_edges as f64 / spec.edges as f64
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full parameterisation of a dataset analog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub dataset: Dataset,
    /// Left vertices of the analog.
    pub left_vertices: u32,
    /// Right vertices of the analog.
    pub right_vertices: u32,
    /// Edges of the analog.
    pub edges: usize,
    /// Power-law exponent of the left side.
    pub left_exponent: f64,
    /// Power-law exponent of the right side.
    pub right_exponent: f64,
    /// Deterministic generator seed.
    pub seed: u64,
    /// |E| of the original dataset (Table II).
    pub paper_edges: u64,
    /// |L| of the original dataset (Table II).
    pub paper_left: u64,
    /// |R| of the original dataset (Table II).
    pub paper_right: u64,
    /// Butterfly count of the original dataset (Table II).
    pub paper_butterflies: f64,
}

impl DatasetSpec {
    /// Returns the spec scaled up by `factor`: `factor` times as many edges
    /// and vertices on both sides, same degree exponents and seed.
    ///
    /// The accuracy experiments run on the default (≈100×-reduced) analogs so
    /// that exact ground truths stay cheap; the throughput / speedup
    /// experiments (Figs. 4, 8–10) use scaled-up analogs so that the sample
    /// is a paper-like small fraction of the live edges and the per-edge
    /// set-intersection work dominates, as it does at the paper's scale.
    #[must_use]
    pub fn scaled(mut self, factor: u32) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        self.left_vertices *= factor;
        self.right_vertices *= factor;
        self.edges *= factor as usize;
        self
    }

    /// Generates a fully dynamic stream with deletion ratio `alpha`, seeded by
    /// `trial` exactly as [`Dataset::stream`] does.
    #[must_use]
    pub fn stream(&self, alpha: f64, trial: u64) -> GraphStream {
        let edges = self.generate_edges();
        let mut rng = StdRng::seed_from_u64(self.seed ^ (0x5EED_0000 + trial));
        inject_deletions_fast(&edges, DeletionConfig::new(alpha), &mut rng)
    }

    /// Generates the (deterministic) insert-only edge list described by this
    /// spec.
    #[must_use]
    pub fn generate_edges(&self) -> Vec<Edge> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        chung_lu_bipartite(
            ChungLuConfig {
                left_vertices: self.left_vertices,
                right_vertices: self.right_vertices,
                edges: self.edges,
                left_exponent: self.left_exponent,
                right_exponent: self.right_exponent,
            },
            &mut rng,
        )
    }

    /// Butterfly density of the original dataset (Table II definition B/|E|⁴).
    #[must_use]
    pub fn paper_density(&self) -> f64 {
        let e = self.paper_edges as f64;
        self.paper_butterflies / (e * e * e * e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{validate_stream, StreamStats};
    use std::collections::BTreeSet;

    #[test]
    fn specs_are_self_consistent() {
        for d in Dataset::all() {
            let spec = d.spec();
            assert_eq!(spec.dataset, d);
            assert!(spec.edges > 10_000, "{d}: too few edges");
            assert!(spec.scale_within_bounds(), "{d}: scale factor out of range");
            assert!(spec.paper_density() > 0.0);
            assert!(!d.name().is_empty());
        }
    }

    impl DatasetSpec {
        fn scale_within_bounds(&self) -> bool {
            let f = self.paper_edges as f64 / self.edges as f64;
            (50.0..5_000.0).contains(&f)
        }
    }

    #[test]
    fn edges_are_distinct_and_in_range() {
        let spec = Dataset::MovielensLike.spec();
        let edges = spec.generate_edges();
        assert_eq!(edges.len(), spec.edges);
        let unique: BTreeSet<_> = edges.iter().copied().collect();
        assert_eq!(unique.len(), spec.edges);
        assert!(edges
            .iter()
            .all(|e| e.left < spec.left_vertices && e.right < spec.right_vertices));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::OrkutLike.edges();
        let b = Dataset::OrkutLike.edges();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_respects_alpha_and_is_valid() {
        let stream = Dataset::MovielensLike.stream(0.2, 0);
        validate_stream(&stream).expect("valid stream");
        let stats = StreamStats::compute(&stream);
        let spec = Dataset::MovielensLike.spec();
        assert_eq!(stats.insertions, spec.edges);
        assert_eq!(stats.deletions, (spec.edges as f64 * 0.2).round() as usize);
    }

    #[test]
    fn different_trials_differ_but_same_trial_repeats() {
        let a = Dataset::MovielensLike.stream(0.2, 0);
        let b = Dataset::MovielensLike.stream(0.2, 0);
        let c = Dataset::MovielensLike.stream(0.2, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_names_cover_paper_datasets() {
        let names: Vec<&str> = Dataset::all().iter().map(|d| d.name()).collect();
        assert!(names.contains(&"Movielens-like"));
        assert!(names.contains(&"Orkut-like"));
        assert_eq!(Dataset::TrackersLike.to_string(), "Trackers-like");
    }

    #[test]
    fn movielens_analog_is_densest_paper_side() {
        // Check the *paper's* density ordering encoded in the specs (the
        // empirical analog ordering is asserted in the integration tests,
        // which can afford exact butterfly counting).
        let d = |ds: Dataset| ds.spec().paper_density();
        assert!(d(Dataset::MovielensLike) > d(Dataset::LivejournalLike));
        assert!(d(Dataset::LivejournalLike) > d(Dataset::OrkutLike));
        assert!(d(Dataset::TrackersLike) > d(Dataset::OrkutLike));
    }
}
