//! Compact binary stream format (`ABST1`): varint-delta encoded elements.
//!
//! The text format costs ~10 bytes per element and a full integer parse per
//! field; for disk-resident workloads at production scale the ingest path
//! should be I/O- and branch-cheap.  This format stores each element as two
//! LEB128 varints after a fixed magic header:
//!
//! ```text
//! header   := b"ABST1"                        (4-byte magic + format version)
//! element  := varint(zigzag(Δleft) << 1 | is_delete) varint(zigzag(Δright))
//! ```
//!
//! `Δleft`/`Δright` are the differences against the previous element's
//! endpoints (starting from `(0, 0)`), zigzag-mapped to unsigned so small
//! negative jumps stay short.  Generator output and real traces are locally
//! clustered, so most elements fit in 2–3 bytes — a 3–4× size reduction over
//! text — and decoding is a handful of shifts per element with no allocation.
//!
//! [`BinarySource`] decodes incrementally (O(1) memory per pull);
//! [`BinaryStreamWriter`] encodes incrementally; the `write_binary_stream*` /
//! `read_binary_stream*` helpers cover the materialized convenience paths.

use crate::element::{EdgeDelta, StreamElement};
use crate::io::StreamIoError;
use crate::source::ElementSource;
use crate::stream::GraphStream;
use abacus_graph::persist::format;
use abacus_graph::Edge;
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Magic header introducing a binary stream file (from the persist-format
/// registry in `abacus_graph::persist::format`).
pub const BINARY_MAGIC: &[u8] = format::STREAM_SEGMENT.magic();

/// Maps a signed delta to an unsigned varint payload (zigzag encoding).
#[inline]
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Writes an LEB128 varint.
fn write_varint<W: Write>(writer: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            return writer.write_all(&[byte]);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

/// Reads one byte; `Ok(None)` at a clean end of stream.
fn read_byte<R: Read>(reader: &mut R) -> Result<Option<u8>, StreamIoError> {
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StreamIoError::Io(e)),
        }
    }
}

/// Reads an LEB128 varint; `Ok(None)` if the stream ended *before* the first
/// byte (a clean record boundary), an error if it ended mid-varint.
fn read_varint<R: Read>(reader: &mut R) -> Result<Option<u64>, StreamIoError> {
    let Some(first) = read_byte(reader)? else {
        return Ok(None);
    };
    let mut value = u64::from(first & 0x7F);
    let mut shift = 7u32;
    let mut byte = first;
    while byte & 0x80 != 0 {
        if shift >= 64 {
            return Err(StreamIoError::format("varint longer than 64 bits"));
        }
        byte = read_byte(reader)?
            .ok_or_else(|| StreamIoError::format("stream ended inside a varint"))?;
        let payload = byte & 0x7F;
        // The 10th byte holds only bit 63: any higher payload bit would be
        // shifted out silently, decoding a corrupt record to a plausible
        // value instead of an error.
        if shift == 63 && payload > 1 {
            return Err(StreamIoError::format("varint overflows 64 bits"));
        }
        value |= u64::from(payload) << shift;
        shift += 7;
    }
    Ok(Some(value))
}

/// An incremental encoder of the binary format.
///
/// Writes the magic header up front and one varint-delta record per
/// [`write_element`](Self::write_element); call [`finish`](Self::finish) to
/// flush.  Unlike the slice helpers this never needs the whole stream, so
/// generators can pipe directly to disk.
#[derive(Debug)]
pub struct BinaryStreamWriter<W: Write> {
    writer: W,
    previous: (u32, u32),
}

impl<W: Write> BinaryStreamWriter<W> {
    /// Starts a binary stream on `writer` (the magic header is written
    /// immediately).
    pub fn new(mut writer: W) -> io::Result<Self> {
        writer.write_all(BINARY_MAGIC)?;
        Ok(BinaryStreamWriter {
            writer,
            previous: (0, 0),
        })
    }

    /// Appends one element.
    pub fn write_element(&mut self, element: StreamElement) -> io::Result<()> {
        let delta_left = i64::from(element.edge.left) - i64::from(self.previous.0);
        let delta_right = i64::from(element.edge.right) - i64::from(self.previous.1);
        let flag = u64::from(element.delta.is_delete());
        write_varint(&mut self.writer, (zigzag(delta_left) << 1) | flag)?;
        write_varint(&mut self.writer, zigzag(delta_right))?;
        self.previous = (element.edge.left, element.edge.right);
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Writes a whole stream in the binary format.
pub fn write_binary_stream<W: Write>(stream: &[StreamElement], writer: W) -> io::Result<()> {
    let mut writer = BinaryStreamWriter::new(BufWriter::new(writer))?;
    for &element in stream {
        writer.write_element(element)?;
    }
    writer.finish().map(|_| ())
}

/// Writes a stream in the binary format to a file path.
pub fn write_binary_stream_to_path<P: AsRef<Path>>(
    stream: &[StreamElement],
    path: P,
) -> io::Result<()> {
    write_binary_stream(stream, std::fs::File::create(path)?)
}

/// A pull-based [`ElementSource`] decoding the binary format: O(1) memory
/// per pull regardless of stream length.
#[derive(Debug)]
pub struct BinarySource<R: BufRead> {
    reader: R,
    previous: (u32, u32),
    elements_read: u64,
}

impl<R: BufRead> BinarySource<R> {
    /// Wraps a reader positioned at the magic header, which is validated
    /// immediately.
    pub fn new(mut reader: R) -> Result<Self, StreamIoError> {
        let mut magic = [0u8; BINARY_MAGIC.len()];
        reader.read_exact(&mut magic).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StreamIoError::format("file shorter than the ABST1 magic header")
            } else {
                StreamIoError::Io(e)
            }
        })?;
        if magic != BINARY_MAGIC {
            return Err(StreamIoError::format(format!(
                "bad magic {magic:?}, expected {BINARY_MAGIC:?} (is this a text stream?)"
            )));
        }
        Ok(BinarySource {
            reader,
            previous: (0, 0),
            elements_read: 0,
        })
    }

    /// Number of elements decoded so far.
    #[must_use]
    pub fn elements_read(&self) -> u64 {
        self.elements_read
    }

    fn decode_endpoint(&self, previous: u32, delta: i64, side: &str) -> Result<u32, StreamIoError> {
        u32::try_from(i64::from(previous) + delta).map_err(|_| {
            StreamIoError::format(format!(
                "element {}: {side} endpoint out of the u32 range",
                self.elements_read
            ))
        })
    }
}

impl<R: BufRead> ElementSource for BinarySource<R> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        let first = match read_varint(&mut self.reader) {
            Ok(None) => return None, // clean end of stream
            Ok(Some(value)) => value,
            Err(e) => return Some(Err(e)),
        };
        let second = match read_varint(&mut self.reader) {
            Ok(Some(value)) => value,
            Ok(None) => {
                return Some(Err(StreamIoError::format(format!(
                    "element {}: stream ended between the two varints of a record",
                    self.elements_read
                ))))
            }
            Err(e) => return Some(Err(e)),
        };
        let delta = if first & 1 == 1 {
            EdgeDelta::Delete
        } else {
            EdgeDelta::Insert
        };
        let left = match self.decode_endpoint(self.previous.0, unzigzag(first >> 1), "left") {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        let right = match self.decode_endpoint(self.previous.1, unzigzag(second), "right") {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        self.previous = (left, right);
        self.elements_read += 1;
        Some(Ok(StreamElement {
            edge: Edge::new(left, right),
            delta,
        }))
    }
}

impl BinarySource<io::BufReader<std::fs::File>> {
    /// Opens a binary stream file for incremental reading.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Self, StreamIoError> {
        BinarySource::new(io::BufReader::new(std::fs::File::open(path)?))
    }
}

/// Reads a whole binary stream from a reader.
pub fn read_binary_stream<R: BufRead>(reader: R) -> Result<GraphStream, StreamIoError> {
    crate::source::read_all(&mut BinarySource::new(reader)?)
}

/// Reads a binary stream from a file path.
pub fn read_binary_stream_from_path<P: AsRef<Path>>(path: P) -> Result<GraphStream, StreamIoError> {
    read_binary_stream(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::read_all;

    fn sample_stream() -> GraphStream {
        vec![
            StreamElement::insert(Edge::new(1, 2)),
            StreamElement::insert(Edge::new(3, 4)),
            StreamElement::insert(Edge::new(u32::MAX, 0)),
            StreamElement::delete(Edge::new(1, 2)),
        ]
    }

    #[test]
    fn round_trip_through_memory() {
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_binary_stream(&stream, &mut buf).unwrap();
        assert_eq!(&buf[..BINARY_MAGIC.len()], BINARY_MAGIC);
        let parsed = read_binary_stream(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed, stream);
    }

    #[test]
    fn empty_stream_is_just_the_header() {
        let mut buf = Vec::new();
        write_binary_stream(&[], &mut buf).unwrap();
        assert_eq!(buf, BINARY_MAGIC);
        assert!(read_binary_stream(io::BufReader::new(&buf[..]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn incremental_writer_matches_slice_writer() {
        let stream = sample_stream();
        let mut whole = Vec::new();
        write_binary_stream(&stream, &mut whole).unwrap();
        let mut writer = BinaryStreamWriter::new(Vec::new()).unwrap();
        for &element in &stream {
            writer.write_element(element).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), whole);
    }

    #[test]
    fn encoding_is_compact_for_clustered_streams() {
        // Consecutive ids: every record fits in two bytes.
        let stream: GraphStream = (0..1_000u32)
            .map(|i| StreamElement::insert(Edge::new(i, i + 1)))
            .collect();
        let mut buf = Vec::new();
        write_binary_stream(&stream, &mut buf).unwrap();
        assert!(
            buf.len() <= BINARY_MAGIC.len() + 2 * stream.len(),
            "got {} bytes",
            buf.len()
        );
    }

    #[test]
    fn source_decodes_incrementally_and_counts() {
        let stream = sample_stream();
        let mut buf = Vec::new();
        write_binary_stream(&stream, &mut buf).unwrap();
        let mut source = BinarySource::new(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(source.next_element().unwrap().unwrap(), stream[0]);
        assert_eq!(source.elements_read(), 1);
        assert_eq!(read_all(&mut source).unwrap(), stream[1..].to_vec());
        assert!(source.next_element().is_none());
        assert_eq!(source.elements_read(), stream.len() as u64);
    }

    #[test]
    fn overlong_varints_are_rejected_not_truncated() {
        // 9 continuation bytes then a 10th whose payload exceeds bit 63: the
        // excess bits must be an error, never silently discarded.
        let mut buf = BINARY_MAGIC.to_vec();
        buf.extend_from_slice(&[0x80; 9]);
        buf.push(0x02);
        let mut source = BinarySource::new(io::BufReader::new(&buf[..])).unwrap();
        let err = source.next_element().unwrap().unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
        // Bit 63 itself is still representable (payload 0x01).
        let mut buf = BINARY_MAGIC.to_vec();
        buf.extend_from_slice(&[0x80; 9]);
        buf.push(0x01);
        buf.push(0x00); // complete the record with a zero Δright
        let mut source = BinarySource::new(io::BufReader::new(&buf[..])).unwrap();
        // The decoded delta is astronomically out of u32 range, which is the
        // *endpoint* error — the varint layer accepted it.
        let err = source.next_element().unwrap().unwrap_err();
        assert!(err.to_string().contains("endpoint"), "{err}");
    }

    #[test]
    fn bad_magic_and_truncation_are_reported() {
        let err = BinarySource::new(io::BufReader::new(&b"not a stream"[..])).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let err = BinarySource::new(io::BufReader::new(&b"AB"[..])).unwrap_err();
        assert!(err.to_string().contains("shorter"), "{err}");

        let stream = sample_stream();
        let mut buf = Vec::new();
        write_binary_stream(&stream, &mut buf).unwrap();
        // Truncating the last byte cuts a record in half.
        buf.pop();
        let mut source = BinarySource::new(io::BufReader::new(&buf[..])).unwrap();
        let mut last = None;
        while let Some(result) = source.next_element() {
            last = Some(result);
        }
        assert!(
            last.expect("some pull must happen").is_err(),
            "truncated record must surface an error"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("abacus_stream_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.abst");
        let stream = sample_stream();
        write_binary_stream_to_path(&stream, &path).unwrap();
        assert_eq!(read_binary_stream_from_path(&path).unwrap(), stream);
        let text_len = {
            let mut text = Vec::new();
            crate::io::write_stream(&stream, &mut text).unwrap();
            text.len()
        };
        let binary_len = std::fs::metadata(&path).unwrap().len() as usize;
        assert!(binary_len < text_len, "{binary_len} vs {text_len}");
        std::fs::remove_file(&path).ok();
    }
}
