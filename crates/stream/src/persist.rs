//! The `ABWL1` append-only write-ahead log and the committed-watermark file.
//!
//! Durability for the estimators follows the classic stream-processor
//! recipe: every element is appended to a WAL *before* it is processed, the
//! estimator state is snapshotted every N elements, and recovery is
//! *load-latest-valid-snapshot + replay-WAL-from-there*.  This module owns
//! the log half of that contract; the snapshot half lives next to the
//! estimators in `abacus-core`.
//!
//! # Segment layout
//!
//! The log is a directory of segment files named `wal-<first_seq>.abwl`,
//! where `first_seq` is the zero-based index of the first stream element the
//! segment holds:
//!
//! ```text
//! segment  := b"ABWL1" u64_le(first_seq) record* seal?
//! record   := varint(payload_len) payload
//! payload  := varint(left << 1 | is_delete) varint(right)
//! seal     := varint(0) u32_le(crc32 of all record bytes) u64_le(count)
//! ```
//!
//! Records are length-prefixed so a torn tail (the process died mid-write)
//! is detected byte-exactly; segments are *sealed* with a CRC32 and record
//! count when the log rotates at a checkpoint, so a bit flip in any sealed
//! segment fails closed.  Exactly one segment — the last — may be unsealed.
//!
//! # Watermark protocol
//!
//! `COMMITTED` holds the element count durably covered by the latest
//! snapshot.  It is written to a temp file, synced, then renamed over the old
//! watermark, so it is always either the previous or the new value — never a
//! torn mix.  On recovery, elements *before* the chosen snapshot's position
//! are skipped (overlap), a log that starts *after* it is a
//! [`PersistError::Gap`], and the unsealed tail past the watermark is
//! replayed record-by-record until the first torn byte.

use crate::element::{EdgeDelta, StreamElement};
use abacus_graph::persist::{crc32, format, Crc32, PersistError};
use abacus_graph::Edge;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Bounded retry with jittered exponential backoff for *transient* I/O
/// failures ([`PersistError::Io`]); every other [`PersistError`] is
/// structural (corruption, gaps, format) and is never retried.
///
/// The policy is deterministic per seed: jitter comes from a splitmix64
/// avalanche of `(seed, attempt)`, so tests can assert exact retry counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub attempts: u32,
    /// Backoff before retry k is `base_delay · 2^(k-1)`, jittered ±50%.
    pub base_delay: Duration,
    /// Seed of the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` total attempts and the default 10 ms base
    /// backoff.
    #[must_use]
    pub fn new(attempts: u32) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The default three attempts with zero backoff — for tests and for
    /// in-process fault injection, where sleeping only slows the suite.
    #[must_use]
    pub fn no_delay() -> Self {
        RetryPolicy {
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The jittered backoff before retry attempt `attempt` (1-based).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let base = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        // Deterministic jitter in [0.5, 1.5): splitmix64 of (seed, attempt).
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(jitter / 2.0)
    }
}

/// Runs `op` under `policy`: up to `policy.attempts` calls, sleeping the
/// jittered backoff between them, retrying **only** [`PersistError::Io`].
/// The closure receives the zero-based attempt number (so fault injectors
/// and rollback logic can tell a retry from a first try).
///
/// # Errors
/// The last [`PersistError::Io`] once attempts are exhausted, or the first
/// non-transient [`PersistError`] immediately.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, PersistError>,
) -> Result<T, PersistError> {
    let attempts = policy.attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(PersistError::Io(error)) if attempt + 1 < attempts => {
                attempt += 1;
                let delay = policy.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                drop(error);
            }
            Err(error) => return Err(error),
        }
    }
}

/// Magic header of a WAL segment file (from the persist-format registry).
pub const WAL_MAGIC: &[u8] = format::WAL_SEGMENT.magic();

/// Magic header of the committed-watermark file (from the registry).
pub const WATERMARK_MAGIC: &[u8] = format::WATERMARK.magic();

/// File name of the committed-watermark file inside a checkpoint directory.
pub const WATERMARK_FILE: &str = "COMMITTED";

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.abwl")
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `bytes` at `offset`; `None` when the buffer ends
/// before the varint does (a torn tail, not an error at this layer).
fn read_varint_at(bytes: &[u8], offset: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*offset)?;
        *offset += 1;
        if shift >= 64 || (shift == 63 && (byte & 0x7F) > 1) {
            // Overlong varints cannot appear in well-formed segments; treat
            // them as a torn/corrupt boundary rather than silently wrapping.
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

fn encode_record(element: StreamElement) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12);
    let flag = u64::from(element.delta.is_delete());
    push_varint(&mut payload, (u64::from(element.edge.left) << 1) | flag);
    push_varint(&mut payload, u64::from(element.edge.right));
    let mut record = Vec::with_capacity(payload.len() + 2);
    push_varint(&mut record, payload.len() as u64);
    record.extend_from_slice(&payload);
    record
}

fn decode_payload(payload: &[u8]) -> Result<StreamElement, PersistError> {
    let mut offset = 0usize;
    let first = read_varint_at(payload, &mut offset)
        .ok_or_else(|| PersistError::Corrupt("WAL record payload ends inside a varint".into()))?;
    let second = read_varint_at(payload, &mut offset).ok_or_else(|| {
        PersistError::Corrupt("WAL record payload missing its right endpoint".into())
    })?;
    if offset != payload.len() {
        return Err(PersistError::Corrupt(format!(
            "WAL record payload has {} trailing bytes",
            payload.len() - offset
        )));
    }
    let delta = if first & 1 == 1 {
        EdgeDelta::Delete
    } else {
        EdgeDelta::Insert
    };
    let left = u32::try_from(first >> 1)
        .map_err(|_| PersistError::Corrupt("WAL record left endpoint exceeds u32".into()))?;
    let right = u32::try_from(second)
        .map_err(|_| PersistError::Corrupt("WAL record right endpoint exceeds u32".into()))?;
    Ok(StreamElement {
        edge: Edge::new(left, right),
        delta,
    })
}

/// The append half of the WAL: one open (unsealed) segment at a time.
///
/// Appends are flushed to the OS per element; [`seal`](WalWriter::seal) (at
/// checkpoint rotation) additionally `fsync`s, which is the durability point
/// of the protocol.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    path: PathBuf,
    file: File,
    first_seq: u64,
    records: u64,
    crc: Crc32,
    /// Bytes durably owed to the file so far (header + whole records) — the
    /// rollback point [`append_with_retry`](WalWriter::append_with_retry)
    /// truncates to before re-attempting a failed append.
    written: u64,
}

impl WalWriter {
    /// Opens a fresh segment whose first record will be stream element
    /// `first_seq`.
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure (including a pre-existing
    /// segment of the same name, which recovery is expected to have removed
    /// or sealed).
    pub fn create(dir: &Path, first_seq: u64) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(segment_file_name(first_seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&first_seq.to_le_bytes())?;
        file.flush()?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            path,
            file,
            first_seq,
            records: 0,
            crc: Crc32::new(),
            written: (WAL_MAGIC.len() + 8) as u64,
        })
    }

    /// Sequence number the next appended element will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.first_seq + self.records
    }

    /// Appends one element and flushes it to the OS.  Returns the element's
    /// sequence number.
    ///
    /// # Errors
    /// [`PersistError::Io`] on write failure.
    pub fn append(&mut self, element: StreamElement) -> Result<u64, PersistError> {
        let record = encode_record(element);
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.crc.update(&record);
        self.written += record.len() as u64;
        let seq = self.next_seq();
        self.records += 1;
        Ok(seq)
    }

    /// [`append`](WalWriter::append) with bounded retry on transient I/O
    /// failure.  Before each retry the file is truncated back to the last
    /// whole record, so a half-written record from a failed attempt can
    /// never survive into the log.
    ///
    /// # Errors
    /// The last [`PersistError::Io`] once the policy's attempts are
    /// exhausted.
    pub fn append_with_retry(
        &mut self,
        element: StreamElement,
        policy: &RetryPolicy,
    ) -> Result<u64, PersistError> {
        let record = encode_record(element);
        let file = &mut self.file;
        let rollback = self.written;
        with_retry(policy, |attempt| {
            if attempt > 0 {
                file.set_len(rollback)?;
                file.seek(SeekFrom::End(0))?;
            }
            file.write_all(&record)?;
            file.flush()?;
            Ok(())
        })?;
        self.crc.update(&record);
        self.written += record.len() as u64;
        let seq = self.next_seq();
        self.records += 1;
        Ok(seq)
    }

    /// Seals the open segment (writes the CRC trailer and `fsync`s) and
    /// returns the sequence number after its last record.  An empty segment
    /// is deleted instead of sealed, so rotation never leaves zero-record
    /// files behind.
    ///
    /// # Errors
    /// [`PersistError::Io`] on write/sync failure.
    pub fn seal(mut self) -> Result<u64, PersistError> {
        let end = self.next_seq();
        if self.records == 0 {
            drop(self.file);
            fs::remove_file(&self.path)?;
            return Ok(end);
        }
        let mut trailer = Vec::with_capacity(13);
        push_varint(&mut trailer, 0);
        trailer.extend_from_slice(&self.crc.finalize().to_le_bytes());
        trailer.extend_from_slice(&self.records.to_le_bytes());
        self.file.write_all(&trailer)?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(end)
    }

    /// Seals the open segment and opens the next one starting at the same
    /// position — the checkpoint-time rotation.
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure.
    pub fn rotate(self) -> Result<WalWriter, PersistError> {
        let dir = self.dir.clone();
        let next = self.seal()?;
        WalWriter::create(&dir, next)
    }
}

/// One decoded WAL segment.
#[derive(Debug)]
pub struct SegmentReplay {
    /// First element sequence number the segment covers.
    pub first_seq: u64,
    /// The decoded elements, in stream order.
    pub elements: Vec<StreamElement>,
    /// Whether the segment carried (and passed) its seal trailer.
    pub sealed: bool,
    /// Whether a torn tail was dropped (only ever `true` on the last,
    /// unsealed segment of a log).
    pub torn: bool,
}

fn read_segment(path: &Path, is_last: bool) -> Result<SegmentReplay, PersistError> {
    let bytes = fs::read(path)?;
    let header_len = WAL_MAGIC.len() + 8;
    if bytes.len() < WAL_MAGIC.len() {
        return Err(PersistError::Truncated(format!(
            "{} is shorter than the ABWL1 magic",
            path.display()
        )));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(PersistError::BadMagic {
            expected: format::WAL_SEGMENT.name,
            found: bytes[..WAL_MAGIC.len()].to_vec(),
        });
    }
    if bytes.len() < header_len {
        return Err(PersistError::Truncated(format!(
            "{} ends inside its sequence header",
            path.display()
        )));
    }
    let mut seq_raw = [0u8; 8];
    seq_raw.copy_from_slice(&bytes[WAL_MAGIC.len()..header_len]);
    let first_seq = u64::from_le_bytes(seq_raw);

    let mut elements = Vec::new();
    let mut offset = header_len;
    let mut crc = Crc32::new();
    let mut sealed = false;
    let mut torn = false;
    loop {
        let record_start = offset;
        let Some(len) = read_varint_at(&bytes, &mut offset) else {
            if record_start == bytes.len() {
                break; // clean end of an unsealed segment
            }
            torn = true;
            break;
        };
        if len == 0 {
            // Seal trailer: crc32 + record count, then end of file.
            if bytes.len() < offset + 12 {
                // The process died while writing the trailer; treat it as an
                // unsealed segment torn at the trailer start.
                torn = true;
                break;
            }
            let mut raw = [0u8; 4];
            raw.copy_from_slice(&bytes[offset..offset + 4]);
            let stored_crc = u32::from_le_bytes(raw);
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[offset + 4..offset + 12]);
            let stored_count = u64::from_le_bytes(raw);
            offset += 12;
            if offset != bytes.len() {
                return Err(PersistError::Corrupt(format!(
                    "{}: {} bytes after the seal trailer",
                    path.display(),
                    bytes.len() - offset
                )));
            }
            if stored_count != elements.len() as u64 {
                return Err(PersistError::Corrupt(format!(
                    "{}: seal trailer claims {stored_count} records, segment holds {}",
                    path.display(),
                    elements.len()
                )));
            }
            if stored_crc != crc.finalize() {
                return Err(PersistError::Corrupt(format!(
                    "{}: segment CRC mismatch (stored {stored_crc:#010x}, computed {:#010x})",
                    path.display(),
                    crc.finalize()
                )));
            }
            sealed = true;
            break;
        }
        let len = usize::try_from(len).map_err(|_| {
            PersistError::Corrupt("WAL record length exceeds the address space".into())
        })?;
        if bytes.len() < offset + len {
            torn = true;
            break;
        }
        let payload = &bytes[offset..offset + len];
        let element = decode_payload(payload)?;
        offset += len;
        crc.update(&bytes[record_start..offset]);
        elements.push(element);
    }

    if !sealed && !is_last {
        return Err(PersistError::Corrupt(format!(
            "{} is unsealed but not the final segment — the log rotated without sealing",
            path.display()
        )));
    }
    if torn && !is_last {
        return Err(PersistError::Corrupt(format!(
            "{} has a torn tail but is not the final segment",
            path.display()
        )));
    }
    Ok(SegmentReplay {
        first_seq,
        elements,
        sealed,
        torn,
    })
}

/// The outcome of replaying a whole WAL directory.
#[derive(Debug)]
pub struct WalRecovery {
    /// Elements from `from_seq` (inclusive) to the end of the durable log,
    /// in stream order.
    pub elements: Vec<StreamElement>,
    /// The sequence number after the last durable element — where processing
    /// resumes.
    pub next_seq: u64,
    /// Whether a torn tail was dropped from the final segment.
    pub dropped_torn_tail: bool,
}

/// Lists the WAL segment paths of `dir`, ordered by their file-name sequence
/// number.
///
/// # Errors
/// [`PersistError::Io`] on directory-read failure.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, PersistError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") && name.ends_with(".abwl") {
            segments.push(entry.path());
        }
    }
    segments.sort();
    Ok(segments)
}

/// Replays every WAL segment in `dir`, returning the elements from
/// `from_seq` onward.
///
/// Validates the full chain: segments must be contiguous (each segment's
/// header sequence equals the previous segment's end, else
/// [`PersistError::Gap`]), every non-final segment must be sealed with a
/// matching CRC, and `from_seq` must fall inside the covered range.
/// Elements before `from_seq` (the overlap between the snapshot and the
/// segment it rotated out of) are skipped; a torn tail on the final segment
/// is dropped cleanly.
///
/// # Errors
/// Any [`PersistError`] surfaced by segment validation, or
/// [`PersistError::Gap`] when the log does not reach back to `from_seq`.
pub fn replay_wal(dir: &Path, from_seq: u64) -> Result<WalRecovery, PersistError> {
    let paths = list_segments(dir)?;
    if paths.is_empty() {
        if from_seq != 0 {
            return Err(PersistError::Gap {
                expected: from_seq,
                found: 0,
            });
        }
        return Ok(WalRecovery {
            elements: Vec::new(),
            next_seq: 0,
            dropped_torn_tail: false,
        });
    }
    let mut elements = Vec::new();
    let mut expected_seq: Option<u64> = None;
    let mut next_seq = 0u64;
    let mut dropped_torn_tail = false;
    let last_index = paths.len() - 1;
    for (index, path) in paths.iter().enumerate() {
        let segment = read_segment(path, index == last_index)?;
        if let Some(expected) = expected_seq {
            if segment.first_seq != expected {
                return Err(PersistError::Gap {
                    expected,
                    found: segment.first_seq,
                });
            }
        } else if segment.first_seq > from_seq {
            // The log starts after the snapshot position: elements are
            // missing between the snapshot and the first surviving segment.
            return Err(PersistError::Gap {
                expected: from_seq,
                found: segment.first_seq,
            });
        }
        for (offset, &element) in segment.elements.iter().enumerate() {
            let seq = segment.first_seq + offset as u64;
            if seq >= from_seq {
                elements.push(element);
            }
        }
        next_seq = segment.first_seq + segment.elements.len() as u64;
        dropped_torn_tail |= segment.torn;
        expected_seq = Some(next_seq);
    }
    if from_seq > next_seq {
        return Err(PersistError::Gap {
            expected: from_seq,
            found: next_seq,
        });
    }
    Ok(WalRecovery {
        elements,
        next_seq,
        dropped_torn_tail,
    })
}

/// Seals (or removes, when empty) the final unsealed segment of `dir` so a
/// recovering process can open a fresh segment at `next_seq` without name
/// collisions or unsealed non-final segments.  Torn tail bytes are truncated
/// to the last clean record boundary first.  A log whose final segment is
/// already sealed is left untouched.
///
/// Returns `true` when a torn (partially written) tail record was dropped —
/// the caller is the only one who can still report that to the operator,
/// since the tear no longer exists on disk afterwards.
///
/// # Errors
/// Any [`PersistError`] surfaced by reading the tail segment, or I/O errors
/// while rewriting it.
pub fn seal_tail(dir: &Path) -> Result<bool, PersistError> {
    let paths = list_segments(dir)?;
    let Some(path) = paths.last() else {
        return Ok(false);
    };
    let segment = read_segment(path, true)?;
    if segment.sealed {
        return Ok(false);
    }
    if segment.elements.is_empty() {
        fs::remove_file(path)?;
        return Ok(segment.torn);
    }
    // Rewrite the records we trust (drops any torn tail), then seal.
    let mut writer = {
        let tmp = path.with_extension("abwl.tmp");
        let _ = fs::remove_file(&tmp);
        let mut file = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&segment.first_seq.to_le_bytes())?;
        WalWriter {
            dir: dir.to_path_buf(),
            path: tmp,
            file,
            first_seq: segment.first_seq,
            records: 0,
            crc: Crc32::new(),
            written: (WAL_MAGIC.len() + 8) as u64,
        }
    };
    for &element in &segment.elements {
        writer.append(element)?;
    }
    let tmp_path = writer.path.clone();
    let mut trailer = Vec::with_capacity(13);
    push_varint(&mut trailer, 0);
    trailer.extend_from_slice(&writer.crc.finalize().to_le_bytes());
    trailer.extend_from_slice(&writer.records.to_le_bytes());
    writer.file.write_all(&trailer)?;
    writer.file.flush()?;
    writer.file.sync_data()?;
    drop(writer);
    fs::rename(&tmp_path, path)?;
    Ok(segment.torn)
}

/// Atomically records `committed` (an element count) as the durable
/// watermark of `dir`.
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure.
pub fn write_watermark(dir: &Path, committed: u64) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(17);
    bytes.extend_from_slice(WATERMARK_MAGIC);
    bytes.extend_from_slice(&committed.to_le_bytes());
    bytes.extend_from_slice(&crc32(&committed.to_le_bytes()).to_le_bytes());
    let tmp = dir.join(format!("{WATERMARK_FILE}.tmp"));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, dir.join(WATERMARK_FILE))?;
    Ok(())
}

/// [`write_watermark`] with bounded retry on transient I/O failure.  The
/// whole temp-write + fsync + rename sequence is idempotent, so each retry
/// simply starts over.
///
/// # Errors
/// The last [`PersistError::Io`] once the policy's attempts are exhausted.
pub fn write_watermark_with_retry(
    dir: &Path,
    committed: u64,
    policy: &RetryPolicy,
) -> Result<(), PersistError> {
    with_retry(policy, |_| write_watermark(dir, committed))
}

/// Reads the committed watermark of `dir`; `Ok(None)` when no watermark has
/// been written yet.
///
/// # Errors
/// Typed [`PersistError`]s for a short, mis-tagged, or checksum-failing file.
pub fn read_watermark(dir: &Path) -> Result<Option<u64>, PersistError> {
    let path = dir.join(WATERMARK_FILE);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::Io(e)),
    };
    if bytes.len() < WATERMARK_MAGIC.len() {
        return Err(PersistError::Truncated(
            "watermark file shorter than its magic".into(),
        ));
    }
    if &bytes[..WATERMARK_MAGIC.len()] != WATERMARK_MAGIC {
        return Err(PersistError::BadMagic {
            expected: format::WATERMARK.name,
            found: bytes[..WATERMARK_MAGIC.len()].to_vec(),
        });
    }
    if bytes.len() != WATERMARK_MAGIC.len() + 12 {
        return Err(PersistError::Truncated(format!(
            "watermark file is {} bytes, expected {}",
            bytes.len(),
            WATERMARK_MAGIC.len() + 12
        )));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[5..13]);
    let committed = u64::from_le_bytes(raw);
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[13..17]);
    let stored_crc = u32::from_le_bytes(raw);
    if stored_crc != crc32(&committed.to_le_bytes()) {
        return Err(PersistError::Corrupt("watermark CRC mismatch".into()));
    }
    Ok(Some(committed))
}

/// Removes every sealed segment that ends at or before `keep_from` — the
/// checkpoint-time garbage collection (segments older than the oldest
/// retained snapshot can never be replayed again).
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure; segments that fail to parse
/// are left in place (pruning must never turn a readable log unreadable).
pub fn prune_segments(dir: &Path, keep_from: u64) -> Result<(), PersistError> {
    let paths = list_segments(dir)?;
    if paths.len() <= 1 {
        return Ok(());
    }
    let last_index = paths.len() - 1;
    for (index, path) in paths.iter().enumerate() {
        if index == last_index {
            break; // never prune the open tail
        }
        let Ok(segment) = read_segment(path, false) else {
            continue;
        };
        let end = segment.first_seq + segment.elements.len() as u64;
        if end <= keep_from {
            fs::remove_file(path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(label: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "abacus_wal_{label}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn elements(n: u32) -> Vec<StreamElement> {
        (0..n)
            .map(|i| {
                if i % 5 == 4 {
                    StreamElement::delete(Edge::new(i, i + 1))
                } else {
                    StreamElement::insert(Edge::new(i * 3, i))
                }
            })
            .collect()
    }

    #[test]
    fn append_rotate_replay_round_trip() {
        let dir = temp_dir("round_trip");
        let stream = elements(25);
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for (i, &element) in stream.iter().enumerate() {
            assert_eq!(writer.append(element).unwrap(), i as u64);
            if (i + 1) % 10 == 0 {
                writer = writer.rotate().unwrap();
            }
        }
        drop(writer);
        let recovery = replay_wal(&dir, 0).unwrap();
        assert_eq!(recovery.elements, stream);
        assert_eq!(recovery.next_seq, 25);
        assert!(!recovery.dropped_torn_tail);
        // Replay from a mid-segment position skips the overlap.
        let recovery = replay_wal(&dir, 13).unwrap();
        assert_eq!(recovery.elements, stream[13..].to_vec());
        assert_eq!(recovery.next_seq, 25);
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let dir = temp_dir("torn");
        let stream = elements(8);
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for &element in &stream {
            writer.append(element).unwrap();
        }
        drop(writer);
        let path = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.pop(); // tear the final record
        fs::write(&path, &bytes).unwrap();
        let recovery = replay_wal(&dir, 0).unwrap();
        assert_eq!(recovery.elements, stream[..7].to_vec());
        assert_eq!(recovery.next_seq, 7);
        assert!(recovery.dropped_torn_tail);
    }

    #[test]
    fn bit_flip_in_sealed_segment_fails_closed() {
        let dir = temp_dir("flip");
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for &element in &elements(10) {
            writer.append(element).unwrap();
        }
        writer.seal().unwrap();
        let path = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let target = WAL_MAGIC.len() + 8 + 3;
        bytes[target] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let err = replay_wal(&dir, 0).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(_)),
            "bit flip must be Corrupt, got {err}"
        );
    }

    #[test]
    fn bad_magic_and_gaps_are_typed() {
        let dir = temp_dir("magic");
        fs::write(dir.join(segment_file_name(0)), b"NOTALOG....").unwrap();
        assert!(matches!(
            replay_wal(&dir, 0).unwrap_err(),
            PersistError::BadMagic { .. }
        ));

        let dir = temp_dir("gap");
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for &element in &elements(5) {
            writer.append(element).unwrap();
        }
        writer.seal().unwrap();
        // Next segment starts at 9 instead of 5: a hole.
        let mut writer = WalWriter::create(&dir, 9).unwrap();
        writer
            .append(StreamElement::insert(Edge::new(1, 1)))
            .unwrap();
        drop(writer);
        assert!(matches!(
            replay_wal(&dir, 0).unwrap_err(),
            PersistError::Gap {
                expected: 5,
                found: 9
            }
        ));

        // A log that starts after the requested position is also a gap.
        let dir = temp_dir("gap_start");
        let mut writer = WalWriter::create(&dir, 100).unwrap();
        writer
            .append(StreamElement::insert(Edge::new(1, 1)))
            .unwrap();
        drop(writer);
        assert!(matches!(
            replay_wal(&dir, 50).unwrap_err(),
            PersistError::Gap { .. }
        ));
    }

    #[test]
    fn seal_tail_heals_unsealed_and_torn_logs() {
        let dir = temp_dir("heal");
        let stream = elements(6);
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for &element in &stream {
            writer.append(element).unwrap();
        }
        drop(writer); // crash: unsealed tail
        seal_tail(&dir).unwrap();
        let segment = read_segment(&list_segments(&dir).unwrap()[0], true).unwrap();
        assert!(segment.sealed);
        assert_eq!(segment.elements, stream);
        // Sealing is idempotent.
        seal_tail(&dir).unwrap();
        // A fresh segment can now be opened at the end without collision.
        let writer = WalWriter::create(&dir, 6).unwrap();
        drop(writer);
        seal_tail(&dir).unwrap(); // empty tail is removed
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
    }

    #[test]
    fn watermark_round_trips_and_fails_closed() {
        let dir = temp_dir("watermark");
        assert_eq!(read_watermark(&dir).unwrap(), None);
        write_watermark(&dir, 12_345).unwrap();
        assert_eq!(read_watermark(&dir).unwrap(), Some(12_345));
        write_watermark(&dir, 99_999).unwrap();
        assert_eq!(read_watermark(&dir).unwrap(), Some(99_999));

        let path = dir.join(WATERMARK_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[7] ^= 0x01; // flip a committed-count bit
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_watermark(&dir).unwrap_err(),
            PersistError::Corrupt(_)
        ));
        fs::write(&path, b"XX").unwrap();
        assert!(matches!(
            read_watermark(&dir).unwrap_err(),
            PersistError::Truncated(_)
        ));
    }

    /// A flaky filesystem op: fails its first `failures` calls with a
    /// transient I/O error, then succeeds — the injected-fault driver of the
    /// retry unit tests.
    struct FlakyOp {
        failures: u32,
        calls: u32,
    }

    impl FlakyOp {
        fn new(failures: u32) -> Self {
            FlakyOp { failures, calls: 0 }
        }

        fn call(&mut self) -> Result<u32, PersistError> {
            self.calls += 1;
            if self.calls <= self.failures {
                return Err(PersistError::Io(std::io::Error::other("flaky")));
            }
            Ok(self.calls)
        }
    }

    #[test]
    fn retry_absorbs_transient_io_up_to_the_attempt_budget() {
        let policy = RetryPolicy::no_delay();
        assert_eq!(policy.attempts, 3);

        // Fewer failures than attempts: the op succeeds.
        let mut op = FlakyOp::new(2);
        assert_eq!(with_retry(&policy, |_| op.call()).unwrap(), 3);
        assert_eq!(op.calls, 3);

        // As many failures as attempts: the last error surfaces.
        let mut op = FlakyOp::new(3);
        assert!(matches!(
            with_retry(&policy, |_| op.call()),
            Err(PersistError::Io(_))
        ));
        assert_eq!(op.calls, 3, "never more than `attempts` calls");
    }

    #[test]
    fn retry_never_touches_structural_errors() {
        let mut calls = 0;
        let result: Result<(), PersistError> = with_retry(&RetryPolicy::no_delay(), |_| {
            calls += 1;
            Err(PersistError::Corrupt("structural".into()))
        });
        assert!(matches!(result, Err(PersistError::Corrupt(_))));
        assert_eq!(calls, 1, "corruption is not transient; no retry");
    }

    #[test]
    fn retry_backoff_is_deterministic_and_jittered() {
        let policy = RetryPolicy::new(5);
        let a: Vec<_> = (1..4).map(|k| policy.backoff(k)).collect();
        let b: Vec<_> = (1..4).map(|k| policy.backoff(k)).collect();
        assert_eq!(a, b, "same seed, same backoffs");
        for (k, delay) in a.iter().enumerate() {
            let base = policy.base_delay * (1 << (k + 1)) as u32;
            assert!(
                *delay >= base / 4 && *delay <= base,
                "attempt {k}: {delay:?}"
            );
        }
        assert_eq!(RetryPolicy::no_delay().backoff(2), Duration::ZERO);
    }

    #[test]
    fn append_with_retry_round_trips_like_plain_append() {
        let dir = temp_dir("retry_append");
        let stream = elements(12);
        let policy = RetryPolicy::no_delay();
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for (i, &element) in stream.iter().enumerate() {
            assert_eq!(
                writer.append_with_retry(element, &policy).unwrap(),
                i as u64
            );
        }
        writer.seal().unwrap();
        let recovery = replay_wal(&dir, 0).unwrap();
        assert_eq!(recovery.elements, stream);
        assert_eq!(recovery.next_seq, 12);
    }

    #[test]
    fn watermark_with_retry_round_trips() {
        let dir = temp_dir("retry_watermark");
        write_watermark_with_retry(&dir, 777, &RetryPolicy::no_delay()).unwrap();
        assert_eq!(read_watermark(&dir).unwrap(), Some(777));
    }

    #[test]
    fn prune_drops_fully_committed_segments_only() {
        let dir = temp_dir("prune");
        let mut writer = WalWriter::create(&dir, 0).unwrap();
        for (i, &element) in elements(30).iter().enumerate() {
            writer.append(element).unwrap();
            if (i + 1) % 10 == 0 {
                writer = writer.rotate().unwrap();
            }
        }
        drop(writer);
        assert_eq!(list_segments(&dir).unwrap().len(), 4); // 3 sealed + open tail
        prune_segments(&dir, 20).unwrap();
        let remaining = list_segments(&dir).unwrap();
        assert_eq!(remaining.len(), 2); // segment [20,30) + open tail
        let recovery = replay_wal(&dir, 20).unwrap();
        assert_eq!(recovery.elements.len(), 10);
        assert_eq!(recovery.next_seq, 30);
    }
}
