//! The view half of the incremental delta circuit.
//!
//! A fully dynamic stream element is a weight-±1 delta on the edge relation
//! (the DBSP/ZSet view of Definition 1), and every derived quantity beyond
//! the global estimate — per-edge supports, per-vertex counts, clustering
//! coefficient, bitruss tiers, anomaly windows — can be maintained by folding
//! those deltas instead of recomputing offline.  [`DeltaView`] is the
//! interface such a consumer implements; the delta circuit in `abacus-core`
//! owns the authoritative graph, enumerates each mutation's butterflies
//! once, and fans the resulting [`DeltaEvent`] out to every subscribed view.
//!
//! The trait lives here (not in `abacus-core`) because it is part of the
//! counter contract: [`ButterflyCounter::subscribe_view`] is the hook through
//! which a driver asks any estimator whether it can host views, and the
//! element/graph types a view consumes are this crate's and `abacus-graph`'s.
//!
//! [`ButterflyCounter::subscribe_view`]: crate::counter::ButterflyCounter::subscribe_view

use crate::element::StreamElement;
use abacus_graph::BipartiteGraph;
use std::any::Any;

/// One graph mutation, fanned out by the delta circuit to every view.
///
/// The borrow conventions mirror the exact oracle's processing order:
///
/// * for an **insertion**, `graph` is the pre-insert graph (the edge is added
///   after the fan-out), so degree-dependent deltas see the state the
///   butterflies were enumerated against;
/// * for a **deletion**, `graph` is the post-delete graph (the edge was
///   removed before the fan-out).
///
/// Either way `graph` does *not* contain `element.edge`, and `butterflies`
/// holds the `(x, w)` partner pairs of every butterfly the mutation creates
/// or destroys, exactly as enumerated by
/// [`for_each_butterfly_with_edge`](abacus_graph::for_each_butterfly_with_edge).
#[derive(Debug)]
pub struct DeltaEvent<'a> {
    /// The stream element being applied.
    pub element: StreamElement,
    /// Whether the element actually mutated the graph.  `false` for a
    /// duplicate insertion or a deletion of an absent edge: the graph (and
    /// thus every graph-derived quantity) is unchanged, so graph-maintaining
    /// views must ignore the event, while element-counting views (the anomaly
    /// series) still observe it.
    pub applied: bool,
    /// The authoritative graph, pre-insert / post-delete (see above).
    pub graph: &'a BipartiteGraph,
    /// `(x, w)` butterfly partner pairs of the mutated edge `{u, v}`: each
    /// pair completes one butterfly `{u, v, x, w}`.  Empty when `applied` is
    /// `false` or when no subscribed view asked for enumeration.
    pub butterflies: &'a [(u32, u32)],
    /// The hosting estimator's running estimate after this element.
    pub estimate: f64,
    /// Stream elements processed so far, including this one.
    pub elements: u64,
}

/// An incrementally maintained consumer of graph deltas.
///
/// Implementations fold one [`DeltaEvent`] at a time and must stay bit-exact
/// with their offline recomputation on the same graph — the contract enforced
/// by `tests/view_parity.rs`.
pub trait DeltaView {
    /// Short name used for CLI registration and report lines.
    fn name(&self) -> &'static str;

    /// Whether this view needs the `butterflies` enumeration.  Views that
    /// only read the estimate or degrees return `false`; the circuit skips
    /// the per-edge enumeration entirely when no subscribed view needs it.
    fn needs_butterflies(&self) -> bool {
        true
    }

    /// Whether this view reads the authoritative graph replica (`event.graph`
    /// or the `applied` flag, which is derived from it).  Views that consume
    /// only the estimate and element count return `false`; when *no*
    /// subscribed view needs the replica the circuit skips graph maintenance
    /// entirely and reports every element as `applied`.  Needing butterflies
    /// implies needing the graph — enumeration runs against the replica — so
    /// the circuit ORs the two flags.
    fn needs_graph(&self) -> bool {
        true
    }

    /// Folds one delta into the view's state.
    fn apply_delta(&mut self, event: &DeltaEvent<'_>);

    /// Called once when the hosting estimator finishes, with the final
    /// (flushed) estimate — the hook the anomaly view uses to record a
    /// trailing partial window.
    fn finish(&mut self, estimate: f64) {
        let _ = estimate;
    }

    /// Human-readable summary lines for the end-of-run report, evaluated
    /// against the final `graph`.
    fn report(&self, graph: &BipartiteGraph) -> Vec<String>;

    /// Concrete-type access for callers that need the maintained state back
    /// (parity tests, the CLI report path).
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;

    struct CountingView {
        deltas: usize,
        finished: Option<f64>,
    }

    impl DeltaView for CountingView {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
            assert!(!event.graph.has_edge(event.element.edge));
            self.deltas += 1;
        }
        fn finish(&mut self, estimate: f64) {
            self.finished = Some(estimate);
        }
        fn report(&self, _graph: &BipartiteGraph) -> Vec<String> {
            vec![format!("{} deltas", self.deltas)]
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn view_contract_defaults() {
        let mut view = CountingView {
            deltas: 0,
            finished: None,
        };
        assert!(view.needs_butterflies());
        assert!(view.needs_graph());
        let graph = BipartiteGraph::new();
        let event = DeltaEvent {
            element: StreamElement::insert(Edge::new(0, 1)),
            applied: true,
            graph: &graph,
            butterflies: &[],
            estimate: 0.0,
            elements: 1,
        };
        view.apply_delta(&event);
        view.finish(42.0);
        assert_eq!(view.deltas, 1);
        assert_eq!(view.finished, Some(42.0));
        assert_eq!(view.report(&graph), vec!["1 deltas".to_string()]);
        assert!(view.as_any().downcast_ref::<CountingView>().is_some());
    }
}
