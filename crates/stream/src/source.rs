//! Pull-based stream sources: bounded-memory ingestion for unbounded streams.
//!
//! Every path into the estimators used to materialize the whole workload as a
//! `Vec<StreamElement>`, making peak memory O(stream) even though
//! ABACUS/PARABACUS only ever need O(budget) state.  [`ElementSource`] inverts
//! that: estimators *pull* elements one at a time (or in small chunks) and the
//! source owns however little buffering its backing medium needs — a slice
//! cursor, one text line, or a few bytes of a binary record.
//!
//! Adapters provided by this crate:
//!
//! * [`SliceSource`] / [`IterSource`] — in-memory streams (the materialized
//!   path, re-expressed as a source),
//! * [`TextSource`] — the `+ u v` / `- u v` text
//!   format, parsed incrementally line by line,
//! * [`BinarySource`] — the compact varint-delta
//!   binary format,
//! * [`DeletionInjector`] — on-the-fly α-deletion injection over an
//!   insert-only source, so fully dynamic workloads no longer require a
//!   materialized edge list,
//! * [`open_path_source`] — opens a file as text or binary by sniffing the
//!   magic header.

use crate::binary::{BinarySource, BINARY_MAGIC};
use crate::element::StreamElement;
use crate::io::{StreamIoError, TextSource};
use crate::stream::GraphStream;
use abacus_graph::Edge;
use rand::{Rng, RngExt};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// A pull-based source of stream elements.
///
/// Semantically an iterator of `Result<StreamElement, StreamIoError>`;
/// `None` marks the end of the stream.  Implementations should be fused
/// (keep returning `None` once exhausted).  The trait is object safe so
/// drivers can accept `&mut dyn ElementSource`.
pub trait ElementSource {
    /// Pulls the next stream element.
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>>;

    /// Bounds on the number of elements remaining, iterator-style.
    ///
    /// The default is the uninformative `(0, None)`; in-memory sources
    /// override it with their exact remainder.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

impl<S: ElementSource + ?Sized> ElementSource for &mut S {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        (**self).next_element()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

impl<S: ElementSource + ?Sized> ElementSource for Box<S> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        (**self).next_element()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// Drains a source into a materialized stream (the O(stream)-memory path,
/// for callers that genuinely need the whole workload, e.g. ground truth).
pub fn read_all<S: ElementSource + ?Sized>(source: &mut S) -> Result<GraphStream, StreamIoError> {
    let mut out = Vec::with_capacity(source.size_hint().0);
    while let Some(element) = source.next_element() {
        out.push(element?);
    }
    Ok(out)
}

/// An infallible source over a borrowed slice.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    slice: &'a [StreamElement],
    cursor: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice; elements are yielded in order.
    #[must_use]
    pub fn new(slice: &'a [StreamElement]) -> Self {
        SliceSource { slice, cursor: 0 }
    }
}

impl ElementSource for SliceSource<'_> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        let element = self.slice.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(Ok(element))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.slice.len() - self.cursor;
        (remaining, Some(remaining))
    }
}

/// An infallible source over any in-memory iterator of elements (an owned
/// `Vec`, a generator chain, ...).
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = StreamElement>> IterSource<I> {
    /// Wraps an iterator of stream elements.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = StreamElement>> ElementSource for IterSource<I> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        self.iter.next().map(Ok)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// A source backing a file on disk, text or binary resolved by sniffing the
/// magic header (see [`open_path_source`]).
pub type FileSource = Box<dyn ElementSource>;

/// Opens a stream file for incremental reading, detecting the format from its
/// first bytes: files starting with the [`BINARY_MAGIC`] header are parsed as
/// the compact binary format, everything else as the `+ u v` text format.
pub fn open_path_source<P: AsRef<Path>>(path: P) -> Result<FileSource, StreamIoError> {
    let mut file = std::fs::File::open(path)?;
    let mut probe = [0u8; BINARY_MAGIC.len()];
    let mut read = 0usize;
    while read < probe.len() {
        match file.read(&mut probe[read..])? {
            0 => break,
            n => read += n,
        }
    }
    file.seek(SeekFrom::Start(0))?;
    let reader = BufReader::new(file);
    if &probe[..read] == BINARY_MAGIC {
        Ok(Box::new(BinarySource::new(reader)?))
    } else {
        Ok(Box::new(TextSource::new(reader)))
    }
}

/// A deletion scheduled but not yet emitted by [`DeletionInjector`], ordered
/// by the insertion slot it trails (random tiebreak shuffles the order of
/// deletions sharing a slot).
#[derive(Debug, Clone, Copy)]
struct PendingDeletion {
    after: usize,
    tiebreak: u64,
    edge: Edge,
}

impl PartialEq for PendingDeletion {
    fn eq(&self, other: &Self) -> bool {
        (self.after, self.tiebreak) == (other.after, other.tiebreak)
    }
}
impl Eq for PendingDeletion {}
impl PartialOrd for PendingDeletion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDeletion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we pop the smallest slot.
        (other.after, other.tiebreak).cmp(&(self.after, self.tiebreak))
    }
}

/// On-the-fly α-deletion injection over an insert-only source (§VI-A).
///
/// For each of the `insertions` edges the source will yield, the injector
/// decides up front (without materializing anything) whether the edge is one
/// of the `round(α·n)` deleted ones, and if so schedules its deletion after
/// an insertion slot drawn uniformly from the remainder of the base stream.
/// Deletions sharing a slot are emitted in uniformly random order.
///
/// # Memory
///
/// O(pending deletions): only edges whose deletion has been scheduled but not
/// yet emitted are held (at most `round(α·n)`, typically far fewer at any
/// instant) — never the insert-only edge list itself.
///
/// # Distribution
///
/// This is the *uniform-slot* placement model: each deletion's slot is drawn
/// independently and uniformly over the insertion slots at or after its own
/// insertion.  The offline [`inject_deletions`](crate::inject_deletions) /
/// [`inject_deletions_fast`](crate::inject_deletions_fast) procedures instead
/// place each deletion uniformly over the *growing suffix* of the stream
/// (deletions already placed count as positions), which weights slots by
/// their current occupancy.  The two models agree on every single-deletion
/// marginal (slot uniform over the suffix) and differ only in higher-order
/// interleaving statistics; a one-pass adapter cannot reproduce the
/// occupancy-weighted draw without knowing future scheduling decisions.
///
/// # Contract
///
/// `insertions` must be the exact number of elements the base source yields;
/// if the source ends early the remaining scheduled deletions are flushed at
/// the end (still after their insertions), and extra elements beyond
/// `insertions` pass through undeleted.  A deletion pulled from the base
/// source is a [`StreamIoError::Format`] error.
#[derive(Debug)]
pub struct DeletionInjector<S, R> {
    inner: S,
    rng: R,
    /// Exact number of insertions the base source is expected to yield.
    insertions: usize,
    /// Index of the next insertion to pull from the base source.
    next_index: usize,
    /// Insertion indices selected for deletion, in [0, insertions).
    delete_set: abacus_graph::FxHashSet<usize>,
    pending: BinaryHeap<PendingDeletion>,
    ready: VecDeque<StreamElement>,
    done: bool,
}

impl<S: ElementSource, R: Rng> DeletionInjector<S, R> {
    /// Wraps an insert-only source, injecting deletions for `config.ratio` of
    /// its `insertions` edges.
    ///
    /// # Panics
    /// Panics if `config.ratio` is outside `[0, 1]` (enforced by
    /// [`DeletionConfig::new`](crate::DeletionConfig::new)).
    pub fn new(inner: S, config: crate::DeletionConfig, insertions: usize, mut rng: R) -> Self {
        let num_deletions = ((insertions as f64) * config.ratio).round() as usize;
        // Floyd's algorithm: a uniform `num_deletions`-subset of [0, n) in
        // O(num_deletions) time and memory.
        let mut delete_set = abacus_graph::FxHashSet::default();
        for j in insertions - num_deletions..insertions {
            let candidate = rng.random_range(0..=j);
            if !delete_set.insert(candidate) {
                delete_set.insert(j);
            }
        }
        DeletionInjector {
            inner,
            rng,
            insertions,
            next_index: 0,
            delete_set,
            pending: BinaryHeap::new(),
            ready: VecDeque::new(),
            done: false,
        }
    }

    /// Number of deletions scheduled but not yet emitted.
    #[must_use]
    pub fn pending_deletions(&self) -> usize {
        self.pending.len()
    }

    /// Moves every pending deletion scheduled at or before `slot` (or all of
    /// them) into the ready queue, in heap (slot, random-tiebreak) order.
    fn release(&mut self, slot: Option<usize>) {
        while let Some(top) = self.pending.peek() {
            if slot.is_some_and(|s| top.after > s) {
                break;
            }
            let Some(deletion) = self.pending.pop() else {
                break;
            };
            self.ready.push_back(StreamElement::delete(deletion.edge));
        }
    }
}

impl<S: ElementSource, R: Rng> ElementSource for DeletionInjector<S, R> {
    fn next_element(&mut self) -> Option<Result<StreamElement, StreamIoError>> {
        loop {
            if let Some(element) = self.ready.pop_front() {
                return Some(Ok(element));
            }
            if self.done {
                return None;
            }
            match self.inner.next_element() {
                None => {
                    // Base stream ended (possibly before `insertions`
                    // elements): flush every scheduled deletion.
                    self.done = true;
                    self.release(None);
                }
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(element)) if element.delta.is_delete() => {
                    return Some(Err(StreamIoError::format(format!(
                        "deletion injection requires an insert-only base stream, \
                         got a deletion of {}",
                        element.edge
                    ))));
                }
                Some(Ok(insertion)) => {
                    let index = self.next_index;
                    self.next_index += 1;
                    if self.delete_set.remove(&index) {
                        self.pending.push(PendingDeletion {
                            after: self.rng.random_range(index..self.insertions),
                            tiebreak: self.rng.random(),
                            edge: insertion.edge,
                        });
                    }
                    self.ready.push_back(insertion);
                    // Deletions trailing this slot were all scheduled by this
                    // or earlier insertions, so the gap is complete.
                    self.release(Some(index));
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, upper) = self.inner.size_hint();
        let queued = self.ready.len() + self.pending.len();
        (
            lower + queued,
            upper.map(|u| u + queued + self.delete_set.len()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{validate_stream, StreamStats};
    use crate::DeletionConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn insert_stream(n: u32) -> Vec<StreamElement> {
        (0..n)
            .map(|i| StreamElement::insert(Edge::new(i, i + 1_000)))
            .collect()
    }

    #[test]
    fn slice_source_yields_in_order_with_exact_hints() {
        let stream = insert_stream(5);
        let mut source = SliceSource::new(&stream);
        assert_eq!(source.size_hint(), (5, Some(5)));
        assert_eq!(source.next_element().unwrap().unwrap(), stream[0]);
        assert_eq!(source.size_hint(), (4, Some(4)));
        let rest = read_all(&mut source).unwrap();
        assert_eq!(rest, stream[1..].to_vec());
        assert!(source.next_element().is_none());
        assert_eq!(source.size_hint(), (0, Some(0)));
    }

    #[test]
    fn iter_source_wraps_owned_streams() {
        let stream = insert_stream(4);
        let mut source = IterSource::new(stream.clone().into_iter());
        assert_eq!(read_all(&mut source).unwrap(), stream);
        assert!(source.next_element().is_none());
    }

    #[test]
    fn read_all_through_mut_and_box_references() {
        let stream = insert_stream(3);
        let mut source = SliceSource::new(&stream);
        let by_ref: &mut dyn ElementSource = &mut source;
        let mut boxed: Box<dyn ElementSource> =
            Box::new(IterSource::new(stream.clone().into_iter()));
        assert_eq!(read_all(by_ref).unwrap(), stream);
        assert_eq!(read_all(&mut boxed).unwrap(), stream);
    }

    #[test]
    fn injector_matches_counts_and_validity() {
        for &(n, ratio) in &[
            (0usize, 0.5f64),
            (1, 1.0),
            (200, 0.0),
            (200, 0.2),
            (500, 1.0),
        ] {
            let base = insert_stream(n as u32);
            let mut injector = DeletionInjector::new(
                SliceSource::new(&base),
                DeletionConfig::new(ratio),
                n,
                StdRng::seed_from_u64(7),
            );
            let stream = read_all(&mut injector).unwrap();
            validate_stream(&stream).expect("every deletion must follow its insertion");
            let stats = StreamStats::compute(&stream);
            assert_eq!(stats.insertions, n, "n={n} ratio={ratio}");
            assert_eq!(
                stats.deletions,
                ((n as f64) * ratio).round() as usize,
                "n={n} ratio={ratio}"
            );
            assert_eq!(injector.pending_deletions(), 0);
        }
    }

    #[test]
    fn injector_preserves_insertion_order() {
        let base = insert_stream(100);
        let mut injector = DeletionInjector::new(
            SliceSource::new(&base),
            DeletionConfig::default(),
            100,
            StdRng::seed_from_u64(3),
        );
        let stream = read_all(&mut injector).unwrap();
        let inserted: Vec<StreamElement> = stream
            .iter()
            .filter(|e| e.delta.is_insert())
            .copied()
            .collect();
        assert_eq!(inserted, base);
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let base = insert_stream(120);
        let run = |seed: u64| {
            read_all(&mut DeletionInjector::new(
                SliceSource::new(&base),
                DeletionConfig::new(0.3),
                120,
                StdRng::seed_from_u64(seed),
            ))
            .unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn injector_flushes_pending_deletions_when_source_ends_early() {
        let base = insert_stream(10);
        // Claim 100 insertions but deliver 10: every scheduled deletion must
        // still be emitted, after its insertion.
        let mut injector = DeletionInjector::new(
            SliceSource::new(&base),
            DeletionConfig::new(1.0),
            100,
            StdRng::seed_from_u64(1),
        );
        let stream = read_all(&mut injector).unwrap();
        validate_stream(&stream).expect("well-formed");
        let stats = StreamStats::compute(&stream);
        assert_eq!(stats.insertions, 10);
        assert_eq!(stats.deletions, 10); // ratio 1.0 deletes every seen edge
    }

    #[test]
    fn injector_rejects_deletions_in_the_base_stream() {
        let base = vec![
            StreamElement::insert(Edge::new(0, 1)),
            StreamElement::delete(Edge::new(0, 1)),
        ];
        let mut injector = DeletionInjector::new(
            SliceSource::new(&base),
            DeletionConfig::new(0.0),
            2,
            StdRng::seed_from_u64(0),
        );
        assert!(injector.next_element().unwrap().is_ok());
        match injector.next_element().unwrap().unwrap_err() {
            StreamIoError::Format { detail } => assert!(detail.contains("insert-only")),
            other => panic!("expected format error, got {other}"),
        }
    }

    #[test]
    fn open_path_source_detects_text() {
        let dir = std::env::temp_dir().join("abacus_source_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.txt");
        std::fs::write(&path, "+ 1 2\n- 1 2\n").unwrap();
        let mut source = open_path_source(&path).unwrap();
        let stream = read_all(&mut source).unwrap();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0], StreamElement::insert(Edge::new(1, 2)));
        std::fs::remove_file(&path).ok();

        // Short files (shorter than the magic) must sniff as text, not error.
        let tiny = dir.join("tiny.txt");
        std::fs::write(&tiny, "#\n").unwrap();
        let mut source = open_path_source(&tiny).unwrap();
        assert!(read_all(&mut source).unwrap().is_empty());
        std::fs::remove_file(&tiny).ok();
    }
}
