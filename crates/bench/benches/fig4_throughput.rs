//! Regenerates Fig. 4 (throughput vs. sample size, all estimators).
//!
//! Run with `cargo bench -p abacus-bench --bench fig4_throughput`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    let table = experiments::fig4_throughput(&settings);
    println!("{}", table.to_markdown());
}
