//! Regenerates Table II (dataset statistics).
//!
//! Run with `cargo bench -p abacus-bench --bench table2`.

fn main() {
    let table = abacus_bench::experiments::table2_dataset_statistics();
    println!("{}", table.to_markdown());
}
