//! Regenerates Fig. 6 (impact of the deletion ratio on accuracy and
//! throughput).
//!
//! Run with `cargo bench -p abacus-bench --bench fig6_deletions`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    println!(
        "{}",
        experiments::fig6a_error_vs_alpha(&settings).to_markdown()
    );
    println!(
        "{}",
        experiments::fig6b_throughput_vs_alpha(&settings).to_markdown()
    );
}
