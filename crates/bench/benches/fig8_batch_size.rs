//! Regenerates Fig. 8 (PARABACUS speedup vs. mini-batch size).
//!
//! Run with `cargo bench -p abacus-bench --bench fig8_batch_size`.
//! Environment knobs: `ABACUS_BATCH_SIZES`, `ABACUS_THREADS`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    for table in experiments::fig8_speedup_vs_batch_size(&settings) {
        println!("{}", table.to_markdown());
    }
}
