//! Streaming-ingest column: end-to-end ABACUS ingestion throughput through
//! each driver — materialized slice, on-disk text source, on-disk binary
//! source — over a Movielens-like fully dynamic workload.
//!
//! The drivers are bit-identical in output (asserted by
//! `tests/streaming_parity.rs`); this bench tracks what the bounded-memory
//! paths *cost* (or save: the binary decoder usually beats materialized text
//! ingest on wall clock, besides never holding the stream).
//!
//! Run with `cargo bench -p abacus-bench --bench ingest`.

#![allow(missing_docs)] // criterion_group! expands to undocumented functions

use abacus_core::{Abacus, AbacusConfig, ButterflyCounter};
use abacus_stream::binary::write_binary_stream_to_path;
use abacus_stream::io::write_stream_to_path;
use abacus_stream::{open_path_source, Dataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

const BUDGET: usize = 1_500;

fn scratch_files() -> (Vec<abacus_stream::StreamElement>, PathBuf, PathBuf) {
    let stream = Dataset::MovielensLike.stream(0.2, 0);
    let dir = std::env::temp_dir().join(format!("abacus_bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create ingest bench scratch dir");
    let text = dir.join("stream.txt");
    let binary = dir.join("stream.abst");
    write_stream_to_path(&stream, &text).expect("write text stream");
    write_binary_stream_to_path(&stream, &binary).expect("write binary stream");
    (stream, text, binary)
}

fn bench_ingest_drivers(c: &mut Criterion) {
    let (stream, text, binary) = scratch_files();
    let mut group = c.benchmark_group("ingest");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("materialized", "slice"),
        &stream,
        |b, stream| {
            b.iter(|| {
                let mut counter = Abacus::new(AbacusConfig::new(BUDGET).with_seed(1));
                counter.process_stream(stream);
                black_box(counter.estimate())
            });
        },
    );

    for (label, path) in [("text", &text), ("binary", &binary)] {
        group.bench_with_input(BenchmarkId::new("streamed", label), path, |b, path| {
            b.iter(|| {
                let mut counter = Abacus::new(AbacusConfig::new(BUDGET).with_seed(1));
                let mut source = open_path_source(path).expect("open stream file");
                counter
                    .process_source(&mut *source)
                    .expect("stream the workload");
                black_box(counter.estimate())
            });
        });
    }

    group.finish();
    std::fs::remove_file(&text).ok();
    std::fs::remove_file(&binary).ok();
}

criterion_group!(benches, bench_ingest_drivers);
criterion_main!(benches);
