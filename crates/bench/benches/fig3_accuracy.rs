//! Regenerates Fig. 3 (relative error with 20% deletions vs. sample size).
//!
//! Run with `cargo bench -p abacus-bench --bench fig3_accuracy`.
//! Environment knobs: `ABACUS_TRIALS`, `ABACUS_SAMPLE_SIZES`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    let table = experiments::fig3_accuracy_with_deletions(&settings);
    println!("{}", table.to_markdown());
}
