//! Alternating vs. pipelined PARABACUS throughput across mini-batch sizes
//! and thread counts (the experiment behind the pipelined engine; no paper
//! analog).
//!
//! Run with `cargo bench -p abacus-bench --bench pipeline`.
//! Environment knobs: `ABACUS_THREADS`, `ABACUS_PIPELINE_DEPTH`,
//! `ABACUS_SPEEDUP_SCALE`, `ABACUS_SPEEDUP_SAMPLE_SIZES`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    for table in experiments::pipeline_vs_alternating(&settings) {
        println!("{}", table.to_markdown());
    }
}
