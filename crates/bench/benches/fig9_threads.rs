//! Regenerates Fig. 9 (PARABACUS speedup vs. number of threads).
//!
//! Run with `cargo bench -p abacus-bench --bench fig9_threads`.
//! Environment knobs: `ABACUS_THREADS`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    for table in experiments::fig9_speedup_vs_threads(&settings) {
        println!("{}", table.to_markdown());
    }
}
