//! Criterion micro-benchmarks of the hot kernels and of the design-choice
//! ablations called out in `DESIGN.md` §7.
//!
//! Run with `cargo bench -p abacus-bench --bench micro`.

#![allow(missing_docs)] // criterion_group! expands to undocumented functions

use abacus_core::{
    Abacus, AbacusConfig, ButterflyCounter, ParAbacus, ParAbacusConfig, SampleGraph,
};
use abacus_graph::intersect::{intersection_count, sorted_merge_intersection_count};
use abacus_graph::peredge::{count_butterflies_with_edge_choice, SideChoice};
use abacus_graph::{count_butterflies_with_edge, AdjacencySet, Edge};
use abacus_sampling::{RandomPairing, SampleStore};
use abacus_stream::{Dataset, StreamElement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// Builds a sample of `k` edges drawn from the Movielens-like analog.
fn build_sample(k: usize) -> (SampleGraph, Vec<Edge>) {
    let edges = Dataset::MovielensLike.edges();
    let mut sample = SampleGraph::with_budget(k);
    for &edge in edges.iter().take(k) {
        sample.store_insert(edge);
    }
    let probes: Vec<Edge> = edges.iter().skip(k).take(1_000).copied().collect();
    (sample, probes)
}

fn bench_per_edge_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_edge_counting");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &k in &[750usize, 3_000, 12_000] {
        let (sample, probes) = build_sample(k);
        group.bench_with_input(BenchmarkId::new("sample_size", k), &k, |b, _| {
            let mut cursor = 0usize;
            b.iter(|| {
                let edge = probes[cursor % probes.len()];
                cursor += 1;
                black_box(count_butterflies_with_edge(&sample, edge))
            });
        });
    }
    group.finish();
}

fn bench_side_choice_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("side_choice_ablation");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let (sample, probes) = build_sample(3_000);
    for (label, choice) in [
        ("cheapest", SideChoice::Cheapest),
        ("always_left", SideChoice::IterateLeftNeighbors),
        ("always_right", SideChoice::IterateRightNeighbors),
    ] {
        group.bench_function(label, |b| {
            let mut cursor = 0usize;
            b.iter(|| {
                let edge = probes[cursor % probes.len()];
                cursor += 1;
                black_box(count_butterflies_with_edge_choice(&sample, edge, choice))
            });
        });
    }
    group.finish();
}

fn bench_intersection_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_intersection");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let a: AdjacencySet = (0..2_000u32).filter(|_| rng.random_bool(0.5)).collect();
    let b: AdjacencySet = (0..2_000u32).filter(|_| rng.random_bool(0.5)).collect();
    let a_sorted = a.to_sorted_vec();
    let b_sorted = b.to_sorted_vec();
    group.bench_function("hash_probe", |bencher| {
        bencher.iter(|| black_box(intersection_count(&a, &b)));
    });
    group.bench_function("sorted_merge", |bencher| {
        bencher.iter(|| black_box(sorted_merge_intersection_count(&a_sorted, &b_sorted)));
    });
    group.finish();
}

fn bench_random_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_pairing");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let edges = Dataset::MovielensLike.edges();
    group.bench_function("insert_into_full_sample", |b| {
        let mut policy = RandomPairing::new(1_500);
        let mut sample = SampleGraph::with_budget(1_500);
        let mut rng = StdRng::seed_from_u64(3);
        for &edge in edges.iter().take(5_000) {
            policy.insert(edge, &mut sample, &mut rng);
        }
        let mut cursor = 5_000usize;
        b.iter(|| {
            let edge = edges[cursor % edges.len()];
            cursor += 1;
            policy.insert(black_box(edge), &mut sample, &mut rng);
        });
    });
    group.finish();
}

fn bench_streaming_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_estimators");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let stream: Vec<StreamElement> = Dataset::MovielensLike
        .stream(0.2, 0)
        .into_iter()
        .take(20_000)
        .collect();
    group.bench_function("abacus_20k_elements", |b| {
        b.iter(|| {
            let mut abacus = Abacus::new(AbacusConfig::new(1_500).with_seed(1));
            abacus.process_stream(black_box(&stream));
            black_box(abacus.estimate())
        });
    });
    group.bench_function("parabacus_20k_elements", |b| {
        b.iter(|| {
            let mut parabacus = ParAbacus::new(
                ParAbacusConfig::new(1_500)
                    .with_seed(1)
                    .with_batch_size(500),
            );
            parabacus.process_stream(black_box(&stream));
            black_box(parabacus.estimate())
        });
    });
    group.finish();
}

/// The `adjacency_spill` sweep behind the defaults of
/// `KernelTuning::adj_spill_threshold` / `adj_first_reserve`: end-to-end
/// ABACUS runs (Random Pairing churn plus counting) with the inline→hash
/// spill point and the first-insert reservation varied.  Layout knobs only —
/// every configuration produces bit-identical estimates.
fn bench_adjacency_spill(c: &mut Criterion) {
    use abacus_graph::intersect::KernelTuning;
    let mut group = c.benchmark_group("adjacency_spill");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let stream: Vec<StreamElement> = Dataset::MovielensLike
        .stream(0.2, 0)
        .into_iter()
        .take(20_000)
        .collect();
    for &(spill, reserve) in &[
        (8usize, 4usize),
        (16, 4),
        (16, 8),
        (32, 4),
        (32, 8),
        (64, 8),
    ] {
        let label = format!("spill{spill}_reserve{reserve}");
        group.bench_function(label.as_str(), |b| {
            b.iter(|| {
                let tuning = KernelTuning {
                    adj_spill_threshold: spill,
                    adj_first_reserve: reserve,
                    ..KernelTuning::default()
                };
                let mut abacus = Abacus::new(
                    AbacusConfig::new(1_500)
                        .with_seed(1)
                        .with_kernel_tuning(tuning),
                );
                abacus.process_stream(black_box(&stream));
                black_box(abacus.estimate())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_per_edge_counting,
    bench_side_choice_ablation,
    bench_intersection_kernels,
    bench_random_pairing,
    bench_streaming_estimators,
    bench_adjacency_spill
);
criterion_main!(benches);
