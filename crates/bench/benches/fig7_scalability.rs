//! Regenerates Fig. 7 (elapsed time vs. elements processed).
//!
//! Run with `cargo bench -p abacus-bench --bench fig7_scalability`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    for table in experiments::fig7_scalability(&settings) {
        println!("{}", table.to_markdown());
    }
}
