//! Regenerates Fig. 10 (per-thread workload / load balance).
//!
//! Run with `cargo bench -p abacus-bench --bench fig10_load_balance`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    for table in experiments::fig10_load_balance(&settings) {
        println!("{}", table.to_markdown());
    }
}
