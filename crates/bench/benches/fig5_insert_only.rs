//! Regenerates Fig. 5 (relative error on insert-only streams).
//!
//! Run with `cargo bench -p abacus-bench --bench fig5_insert_only`.

use abacus_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    let table = experiments::fig5_accuracy_insert_only(&settings);
    println!("{}", table.to_markdown());
}
