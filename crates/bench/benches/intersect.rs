//! Intersection-kernel micro-benchmark: probe vs merge vs gallop across
//! operand-size ratios.
//!
//! This is the sweep that justifies the default [`KernelTuning`] cutovers
//! (`merge_size_ratio`, `gallop_size_ratio`): for a fixed smaller operand,
//! the larger one grows by powers of two and every kernel family runs on the
//! same pair —
//!
//! * `probe` — the hash-probe kernel, forced past the merge cutover,
//! * `merge` — the classic two-pointer sorted merge,
//! * `merge_branchless` — the retired arithmetic-advance merge variant
//!   (bench-only, from [`abacus_bench::kernels`]; the sweep measured it at
//!   2.7× the classic merge's latency on every ratio, and it stays in the
//!   sweep precisely so that regression keeps being measured),
//! * `gallop` — galloping (exponential) search of the larger slice,
//! * `adaptive` — the production dispatch over the default cutovers.
//!
//! Run with `cargo bench -p abacus-bench --bench intersect`.

#![allow(missing_docs)] // criterion_group! expands to undocumented functions

use abacus_bench::kernels::merge_branchless_intersection_count;
use abacus_graph::intersect::{
    intersection_count_with, sorted_adaptive_count, sorted_gallop_count,
    sorted_merge_intersection_count, KernelTuning,
};
use abacus_graph::AdjacencySet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// Elements in the smaller operand; large enough that both operands are
/// hash-backed (`Large`) sets on the probe path.
const SMALL_LEN: usize = 256;

/// Builds a sorted vector of `len` distinct ids drawn uniformly from
/// `0..universe`.  Both operands of a pair share the universe, so overlap is
/// spread across the whole larger slice — a merge cannot terminate early the
/// way it could if the operands' value ranges barely intersected.
fn sorted_ids(len: usize, universe: u32, rng: &mut StdRng) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < len {
        set.insert(rng.random_range(0..universe));
    }
    set.into_iter().collect()
}

fn bench_kernels_across_ratios(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    group
        .measurement_time(Duration::from_millis(500))
        .sample_size(20);
    let mut rng = StdRng::seed_from_u64(42);

    for ratio in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        // Universe 4× the large operand: ~25% of the large side is populated
        // and the expected overlap is |small| / 4.
        let universe = u32::try_from(SMALL_LEN * ratio * 4).unwrap();
        let small_sorted = sorted_ids(SMALL_LEN, universe, &mut rng);
        let small_set: AdjacencySet = small_sorted.iter().copied().collect();
        let large_sorted = sorted_ids(SMALL_LEN * ratio, universe, &mut rng);
        let large_set: AdjacencySet = large_sorted.iter().copied().collect();

        // Probe path regardless of ratio: merge cutover forced to 0.
        let probe_only = KernelTuning {
            merge_size_ratio: 0,
            ..KernelTuning::default()
        };
        group.bench_with_input(BenchmarkId::new("probe", ratio), &ratio, |b, _| {
            b.iter(|| black_box(intersection_count_with(&small_set, &large_set, probe_only)));
        });
        group.bench_with_input(BenchmarkId::new("merge", ratio), &ratio, |b, _| {
            b.iter(|| {
                black_box(sorted_merge_intersection_count(
                    &small_sorted,
                    &large_sorted,
                ))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("merge_branchless", ratio),
            &ratio,
            |b, _| {
                b.iter(|| {
                    black_box(merge_branchless_intersection_count(
                        &small_sorted,
                        &large_sorted,
                    ))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("gallop", ratio), &ratio, |b, _| {
            b.iter(|| black_box(sorted_gallop_count(&small_sorted, &large_sorted)));
        });
        group.bench_with_input(BenchmarkId::new("adaptive", ratio), &ratio, |b, _| {
            b.iter(|| {
                black_box(sorted_adaptive_count(
                    &small_sorted,
                    &large_sorted,
                    KernelTuning::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels_across_ratios);
criterion_main!(benches);
