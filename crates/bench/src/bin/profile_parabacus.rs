//! Diagnostic timing harness for the PARABACUS hot path.
//!
//! Prints absolute runtimes of sequential ABACUS and PARABACUS under various
//! mini-batch sizes and thread counts on one dataset analog, so regressions in
//! the versioned-sample view or the batch machinery show up as raw seconds
//! rather than only as a distorted Fig. 8/9 speedup table.
//!
//! Run with `cargo run --release -p abacus-bench --bin profile_parabacus`.

use abacus_bench::datasets::prepared_stream;
use abacus_bench::runners::run;
use abacus_core::engine::EstimatorSpec;
use abacus_core::{ButterflyCounter, ParAbacus, ParAbacusConfig};
use abacus_stream::Dataset;
use std::time::Instant;

fn main() {
    let budget = std::env::var("PROFILE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500);
    let scale: u32 = std::env::var("PROFILE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let dataset = Dataset::MovielensLike;
    let stream = if scale > 1 {
        dataset.spec().scaled(scale).stream(0.2, 0)
    } else {
        prepared_stream(dataset, 0.2).stream
    };
    println!(
        "dataset={} (scale {scale}) stream={} elements, budget={budget}",
        dataset.name(),
        stream.len()
    );

    let abacus = run(EstimatorSpec::abacus(budget), &stream);
    {
        // One direct run to report the average intersection work per element.
        let mut estimator = abacus_core::Abacus::new(abacus_core::AbacusConfig::new(budget));
        estimator.process_stream(&stream);
        println!(
            "ABACUS                      {:>8.3}s  ({:>10.0} edges/s)  {:.0} probes/element",
            abacus.throughput.seconds,
            abacus.throughput.per_second(),
            estimator.stats().comparisons as f64 / stream.len() as f64,
        );
    }

    for &(batch_size, threads, pipeline_depth) in &[
        (500usize, 1usize, 1usize),
        (500, 8, 1),
        (500, 8, 2),
        (500, 24, 1),
        (500, 24, 2),
        (10_000, 1, 1),
        (10_000, 8, 1),
        (10_000, 8, 2),
        (10_000, 24, 2),
    ] {
        let result = run(
            EstimatorSpec::parabacus(budget)
                .with_batch_size(batch_size)
                .with_threads(threads)
                .with_pipeline_depth(pipeline_depth),
            &stream,
        );
        // Re-run once through the estimator directly to break the runtime into
        // the sequential (phase 1) and parallel-counting (phase 2) shares.
        let mut estimator = ParAbacus::new(
            ParAbacusConfig::new(budget)
                .with_batch_size(batch_size)
                .with_threads(threads)
                .with_pipeline_depth(pipeline_depth),
        );
        let start = Instant::now();
        estimator.process_stream(&stream);
        let total = start.elapsed().as_secs_f64();
        let timings = estimator.phase_timings();
        println!(
            "PARABACUS M={batch_size:<6} p={threads:<3} d={pipeline_depth}  {:>8.3}s  \
             ({:>10.0} edges/s)  speedup {:.2}  \
             [phase1 {:.3}s, phase2-wait {:.3}s, other {:.3}s]",
            result.throughput.seconds,
            result.throughput.per_second(),
            abacus.throughput.seconds / result.throughput.seconds.max(1e-12),
            timings.sequential_seconds,
            timings.counting_seconds,
            total - timings.sequential_seconds - timings.counting_seconds,
        );
    }
}
