//! Fixed-seed perf-smoke harness: emits machine-readable benchmark artifacts
//! so the perf trajectory of the counting hot path is tracked in CI.
//!
//! Seven JSON files are written (to `ABACUS_BENCH_DIR`, default the current
//! directory):
//!
//! * `BENCH_intersect.json` — median ns/op of every intersection kernel
//!   (probe / merge / gallop / adaptive) at three operand-size ratios,
//! * `BENCH_parabacus.json` — ABACUS and single-thread PARABACUS wall time
//!   and throughput over a fixed dataset-analog stream, with the frozen CSR
//!   counting snapshot on and off, plus the snapshot's counting-phase
//!   reduction in percent,
//! * `BENCH_ingest.json` — the streaming-ingest column: ABACUS throughput
//!   over a ~1M-element on-disk workload through the materialized driver
//!   and the pull-based text/binary sources, with measured peak heap,
//! * `BENCH_ensemble.json` — the ensemble column: replicate-mode MAPE vs
//!   ensemble width K (fixed per-replica *and* fixed total memory, which
//!   move in opposite directions — see `ensemble_rows`), plus ensemble
//!   throughput at fan-out threads 1 and 2,
//! * `BENCH_views.json` — the delta-circuit column: per-view incremental
//!   maintenance vs refreshing the same state by offline recomputation once
//!   per mini-batch (see `views_rows`), plus the whole five-view panel on
//!   one circuit,
//! * `BENCH_persist.json` — the durability column: the per-element WAL
//!   append tax over the bare hot path, the cost of a full checkpoint
//!   (ABSNAP1 snapshot + fsync + WAL rotation + watermark), and recovery
//!   latency as a function of the WAL length replayed (see `persist_rows`),
//! * `BENCH_samplestore.json` — the sample-store memory column:
//!   `bytes_per_sampled_edge` of the interned SoA sample layout under the
//!   honest accounting of `SampleGraph::heap_bytes`, paired with the
//!   pre-interning hash-of-hashes baseline measured on the same workloads
//!   under the same accounting, plus before/after columns for the
//!   single-thread PARABACUS counting overhead (see `samplestore_rows`).
//!
//! The ingest section doubles as the bounded-memory *assertion*: a counting
//! global allocator tracks peak heap, and the run aborts if the streamed
//! drivers' peak additional memory is not O(budget + chunk) — i.e. if some
//! regression reintroduces an O(stream) materialization on the ingest path.
//! The samplestore section likewise PANICS if `bytes_per_sampled_edge`
//! exceeds its committed per-dataset ceiling at the default workload.
//!
//! Everything is seeded; run-to-run noise comes only from the machine.  Keep
//! the workload small — this runs on every CI push.
//!
//! Run with `cargo run --release -p abacus-bench --bin perf_smoke`.

use abacus_core::engine::{Ensemble, EnsembleMode, EstimatorSpec};
use abacus_core::{
    Abacus, AbacusConfig, ButterflyCounter, Circuit, ParAbacus, ParAbacusConfig, SnapshotMode,
    ViewKind, WindowedMonitor,
};
use abacus_graph::intersect::{
    intersection_count_with, sorted_adaptive_count, sorted_gallop_count,
    sorted_merge_intersection_count, KernelTuning,
};
use abacus_graph::{
    bitruss_decomposition, AdjacencySet, BipartiteGraph, ClusteringState, EdgeSupports,
    VertexButterflyCounts,
};
use abacus_stream::{Dataset, StreamElement};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::time::Instant;

const SEED: u64 = 42;

/// A [`System`]-backed allocator that tracks current and peak heap usage, so
/// the ingest section can *assert* its memory bound instead of describing it.
///
/// The bookkeeping only runs while `enabled` is set (the ingest section):
/// the intersect/parabacus timing sections, whose ns/op trajectories CI
/// compares across runs, pay a single relaxed load per allocation, and
/// `realloc`/`alloc_zeroed` delegate to `System`'s own fast paths (in-place
/// growth, zeroed pages) rather than the trait's alloc+copy defaults.
struct CountingAllocator {
    enabled: std::sync::atomic::AtomicBool,
    /// Signed: while accounting is enabled, frees of blocks allocated
    /// *before* the window legitimately drive the counter below its
    /// baseline.
    current: AtomicIsize,
    peak: AtomicIsize,
}

impl CountingAllocator {
    fn record(&self, grow: usize, shrink: usize) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        if grow > 0 {
            let now = self.current.fetch_add(grow as isize, Ordering::Relaxed) + grow as isize;
            self.peak.fetch_max(now, Ordering::Relaxed);
        }
        if shrink > 0 {
            self.current.fetch_sub(shrink as isize, Ordering::Relaxed);
        }
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the bookkeeping
// uses only atomics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.record(layout.size(), 0);
        }
        ptr
    }

    // SAFETY: forwards to `System.alloc_zeroed` under the same contract the
    // caller already upholds; bookkeeping is atomic and side-effect free.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.record(layout.size(), 0);
        }
        ptr
    }

    // SAFETY: forwards to `System.realloc` under the same contract the caller
    // already upholds; bookkeeping is atomic and side-effect free.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            self.record(new_size, layout.size());
        }
        new_ptr
    }

    // SAFETY: forwards to `System.dealloc` under the same contract the caller
    // already upholds; bookkeeping is atomic and side-effect free.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.record(0, layout.size());
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator {
    enabled: std::sync::atomic::AtomicBool::new(false),
    current: AtomicIsize::new(0),
    peak: AtomicIsize::new(0),
};

/// Enables accounting and resets the peak marker; returns the baseline.
fn reset_heap_peak() -> isize {
    let now = ALLOCATOR.current.load(Ordering::Relaxed);
    ALLOCATOR.peak.store(now, Ordering::Relaxed);
    ALLOCATOR.enabled.store(true, Ordering::Relaxed);
    now
}

/// Peak heap growth (bytes) since the matching [`reset_heap_peak`], turning
/// accounting back off.
fn heap_peak_delta(baseline: isize) -> usize {
    let peak = ALLOCATOR.peak.load(Ordering::Relaxed);
    ALLOCATOR.enabled.store(false, Ordering::Relaxed);
    peak.saturating_sub(baseline).max(0) as usize
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Median of the measured values (input order is irrelevant).
fn median(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of zero samples");
    values.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    values[values.len() / 2]
}

/// One emitted measurement row.
struct Row {
    name: String,
    median_ns_per_op: f64,
    ops_per_second: f64,
}

fn json_document(bench: &str, rows: &[Row], extra: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    for (key, value) in extra {
        out.push_str(&format!("  \"{key}\": {value:.3},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns_per_op\": {:.1}, \"ops_per_second\": {:.0}}}{comma}\n",
            row.name, row.median_ns_per_op, row.ops_per_second
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Times `routine` (`iterations` calls per trial, median over `trials`).
fn measure<F: FnMut()>(trials: usize, iterations: usize, mut routine: F) -> f64 {
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_secs_f64() * 1e9 / iterations as f64);
    }
    median(samples)
}

fn sorted_ids(len: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut out = Vec::with_capacity(len);
    let mut next = 0u32;
    while out.len() < len {
        next += rng.random_range(1u32..=8);
        out.push(next);
    }
    out
}

fn intersect_rows(trials: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let small_len = 256usize;
    let small_sorted = sorted_ids(small_len, &mut rng);
    let small_set: AdjacencySet = small_sorted.iter().copied().collect();
    let probe_only = KernelTuning {
        merge_size_ratio: 0,
        ..KernelTuning::default()
    };
    let mut rows = Vec::new();
    for ratio in [1usize, 8, 64] {
        let large_sorted = sorted_ids(small_len * ratio, &mut rng);
        let large_set: AdjacencySet = large_sorted.iter().copied().collect();
        let iterations = 2_000;
        let kernels: Vec<(String, Box<dyn FnMut() + '_>)> = vec![
            (
                format!("probe/ratio{ratio}"),
                Box::new(|| {
                    black_box(intersection_count_with(&small_set, &large_set, probe_only));
                }),
            ),
            (
                format!("merge/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_merge_intersection_count(
                        &small_sorted,
                        &large_sorted,
                    ));
                }),
            ),
            (
                format!("merge_branchless/ratio{ratio}"),
                Box::new(|| {
                    black_box(abacus_bench::kernels::merge_branchless_intersection_count(
                        &small_sorted,
                        &large_sorted,
                    ));
                }),
            ),
            (
                format!("gallop/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_gallop_count(&small_sorted, &large_sorted));
                }),
            ),
            (
                format!("adaptive/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_adaptive_count(
                        &small_sorted,
                        &large_sorted,
                        KernelTuning::default(),
                    ));
                }),
            ),
        ];
        let mut ratio_rows = Vec::new();
        for (name, mut kernel) in kernels {
            let ns = measure(trials, iterations, &mut kernel);
            ratio_rows.push(Row {
                name,
                median_ns_per_op: ns,
                ops_per_second: 1e9 / ns.max(1e-9),
            });
        }
        // Regression gate for the KernelTuning cutovers: whatever the
        // adaptive dispatch picked at this ratio, it must never be the
        // measured-slowest kernel in the sweep — if it is, a cutover has
        // rotted (e.g. the retired branchless merge sneaking back in would
        // trip this immediately).
        let slowest = ratio_rows
            .iter()
            .max_by(|a, b| a.median_ns_per_op.total_cmp(&b.median_ns_per_op))
            .expect("ratio sweep is non-empty");
        assert!(
            !slowest.name.starts_with("adaptive/"),
            "adaptive dispatch is the slowest kernel at ratio {ratio}: \
             {} ns/op ({:?})",
            slowest.median_ns_per_op,
            ratio_rows
                .iter()
                .map(|r| format!("{} {:.0}ns", r.name, r.median_ns_per_op))
                .collect::<Vec<_>>(),
        );
        rows.extend(ratio_rows);
    }
    rows
}

/// One timed PARABACUS run: (total seconds, counting-phase seconds).
fn run_parabacus(
    stream: &[StreamElement],
    budget: usize,
    batch: usize,
    snapshot: SnapshotMode,
) -> (f64, f64) {
    let mut estimator = ParAbacus::new(
        ParAbacusConfig::new(budget)
            .with_seed(SEED)
            .with_batch_size(batch)
            .with_threads(1)
            .with_pipeline_depth(1)
            .with_snapshot(snapshot),
    );
    let start = Instant::now();
    estimator.process_stream(stream);
    let total = start.elapsed().as_secs_f64();
    black_box(estimator.estimate());
    (total, estimator.phase_timings().counting_seconds)
}

/// One timed ABACUS run (total seconds).
fn run_abacus(stream: &[StreamElement], budget: usize, snapshot: SnapshotMode) -> f64 {
    let mut estimator = Abacus::new(
        AbacusConfig::new(budget)
            .with_seed(SEED)
            .with_snapshot(snapshot),
    );
    let start = Instant::now();
    estimator.process_stream(stream);
    let total = start.elapsed().as_secs_f64();
    black_box(estimator.estimate());
    total
}

/// The fig9/fig4-style workloads at threads = 1: the Movielens-like (probe
/// dense) and Trackers-like (hub skewed) analogs at the speedup scale,
/// budget 7500, batch size 10000 (fig9; Movielens-like additionally at the
/// fig4 default M = 500), with the snapshot off, forced on, and in the
/// shipped adaptive `auto` mode.
///
/// The runs of every configuration are *interleaved per trial* and the
/// reduction metrics are medians of per-trial ratios: this container's
/// throughput drifts by tens of percent over seconds, so back-to-back
/// pairing is the only way to get a stable comparison.
fn parabacus_rows(trials: usize) -> (Vec<Row>, Vec<(String, f64)>) {
    let budget = env_usize("ABACUS_PERF_SMOKE_BUDGET", 7_500);
    let scale = env_usize("ABACUS_PERF_SMOKE_SCALE", 4) as u32;
    let take = env_usize("ABACUS_PERF_SMOKE_ELEMENTS", usize::MAX);

    let mut rows = Vec::new();
    let mut extra = vec![("budget".to_string(), budget as f64)];

    for dataset in [Dataset::MovielensLike, Dataset::TrackersLike] {
        let name = match dataset {
            Dataset::MovielensLike => "movielens",
            _ => "trackers",
        };
        let stream: Vec<StreamElement> = dataset
            .spec()
            .scaled(scale.max(1))
            .stream(0.2, SEED)
            .into_iter()
            .take(take)
            .collect();
        let elements = stream.len() as f64;
        extra.push((format!("{name}_stream_elements"), elements));

        let _ = run_abacus(&stream, budget, SnapshotMode::Off); // warm-up
        let mut abacus = (Vec::new(), Vec::new(), Vec::new()); // off, on, ratio
        for _ in 0..trials {
            let off = run_abacus(&stream, budget, SnapshotMode::Off);
            let on = run_abacus(&stream, budget, SnapshotMode::On);
            abacus.0.push(off);
            abacus.1.push(on);
            abacus.2.push(on / off);
        }
        for (label, secs) in [
            ("snapshot_off", median(abacus.0)),
            ("snapshot_on", median(abacus.1)),
        ] {
            rows.push(Row {
                name: format!("{name}/abacus/{label}"),
                median_ns_per_op: secs * 1e9 / elements,
                ops_per_second: elements / secs.max(1e-12),
            });
        }
        extra.push((
            format!("{name}_abacus_snapshot_reduction_percent"),
            100.0 * (1.0 - median(abacus.2)),
        ));

        let batches: &[usize] = if dataset == Dataset::MovielensLike {
            &[10_000, 500]
        } else {
            &[10_000]
        };
        for &batch in batches {
            const MODES: [(&str, SnapshotMode); 3] = [
                ("off", SnapshotMode::Off),
                ("on", SnapshotMode::On),
                ("auto", SnapshotMode::Auto),
            ];
            let mut totals: [Vec<f64>; 3] = Default::default();
            let mut counting: [Vec<f64>; 3] = Default::default();
            let mut on_ratio = Vec::new();
            let mut auto_ratio = Vec::new();
            for _ in 0..trials {
                for (i, (_, mode)) in MODES.iter().enumerate() {
                    let (total, count) = run_parabacus(&stream, budget, batch, *mode);
                    totals[i].push(total);
                    counting[i].push(count);
                }
                let last = |v: &Vec<f64>| *v.last().expect("just pushed");
                on_ratio.push(last(&counting[1]) / last(&counting[0]));
                auto_ratio.push(last(&counting[2]) / last(&counting[0]));
            }
            for (i, (label, _)) in MODES.iter().enumerate() {
                rows.push(Row {
                    name: format!("{name}/parabacus_t1_m{batch}/snapshot_{label}"),
                    median_ns_per_op: median(totals[i].clone()) * 1e9 / elements,
                    ops_per_second: elements / median(totals[i].clone()).max(1e-12),
                });
                rows.push(Row {
                    name: format!("{name}/parabacus_t1_m{batch}/counting_{label}"),
                    median_ns_per_op: median(counting[i].clone()) * 1e9 / elements,
                    ops_per_second: elements / median(counting[i].clone()).max(1e-12),
                });
            }
            extra.push((
                format!("{name}_parabacus_t1_m{batch}_on_counting_reduction_percent"),
                100.0 * (1.0 - median(on_ratio)),
            ));
            extra.push((
                format!("{name}_parabacus_t1_m{batch}_auto_counting_reduction_percent"),
                100.0 * (1.0 - median(auto_ratio)),
            ));
        }
    }
    (rows, extra)
}

/// The streaming-ingest column: ABACUS over a ~1M-element on-disk workload
/// through the materialized driver and the pull-based text/binary sources.
///
/// Each streamed run is bracketed by heap-peak markers, and the function
/// PANICS (failing CI) unless the streamed drivers' peak additional memory
/// stays O(budget + chunk) — the bound is generous per-edge/per-element
/// constants over `budget` and `chunk` plus fixed slack, and it is crosschecked
/// against the materialized driver, whose peak must scale with the stream.
fn ingest_rows() -> (Vec<Row>, Vec<(String, f64)>) {
    let target_elements = env_usize("ABACUS_PERF_SMOKE_INGEST_ELEMENTS", 1_000_000);
    let budget = env_usize("ABACUS_PERF_SMOKE_INGEST_BUDGET", 3_000);

    // Build the workload once and spill it to disk in both formats; the
    // in-memory copies are dropped before any measurement.
    let dir = std::env::temp_dir().join(format!("abacus_perf_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create ingest scratch dir");
    let text_path = dir.join("ingest.txt");
    let binary_path = dir.join("ingest.abst");
    let elements = {
        // α = 0.2 turns E edges into 1.2·E elements.
        let edges = abacus_stream::generators::random::uniform_bipartite(
            60_000,
            60_000,
            target_elements * 5 / 6,
            &mut StdRng::seed_from_u64(SEED),
        );
        let stream = abacus_stream::inject_deletions_fast(
            &edges,
            abacus_stream::DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(SEED ^ 0xFEED),
        );
        abacus_stream::io::write_stream_to_path(&stream, &text_path).expect("write text stream");
        abacus_stream::binary::write_binary_stream_to_path(&stream, &binary_path)
            .expect("write binary stream");
        stream.len()
    };

    let make = || Abacus::new(AbacusConfig::new(budget).with_seed(SEED));
    let chunk = make().preferred_chunk();

    // Materialized driver: read the whole file, then process the slice.
    let baseline = reset_heap_peak();
    let start = Instant::now();
    let stream = abacus_stream::io::read_stream_from_path(&text_path).expect("read text stream");
    let mut materialized = make();
    materialized.process_stream(&stream);
    let materialized_seconds = start.elapsed().as_secs_f64();
    black_box(materialized.estimate());
    let materialized_peak = heap_peak_delta(baseline);
    let materialized_estimate = materialized.estimate();
    drop(stream);
    drop(materialized);

    // Streamed drivers: pull straight from disk.
    let mut streamed = Vec::new(); // (label, seconds, peak bytes)
    for (label, path) in [("text", &text_path), ("binary", &binary_path)] {
        let baseline = reset_heap_peak();
        let start = Instant::now();
        let mut counter = make();
        let mut source = abacus_stream::open_path_source(path).expect("open stream file");
        let pulled = counter
            .process_source(&mut *source)
            .expect("stream the workload");
        let seconds = start.elapsed().as_secs_f64();
        drop(source);
        let peak = heap_peak_delta(baseline);
        assert_eq!(pulled as usize, elements, "{label}: wrong element count");
        assert_eq!(
            counter.estimate().to_bits(),
            materialized_estimate.to_bits(),
            "{label}: streamed and materialized drivers must be bit-identical"
        );
        streamed.push((label, seconds, peak));
    }
    std::fs::remove_dir_all(&dir).ok();

    // The bound: generous constants (a budget edge costs ~100 bytes across
    // the sample's hash adjacency, a staged element 12; both ×4 for slack)
    // plus 2 MiB fixed overhead — about 3.5 MiB at the defaults, against a
    // ≥ 12 MB materialized stream.  O(stream) regressions trip this by an
    // order of magnitude.
    let bound = 4 * (budget * 100 + chunk * 12) + (2 << 20);
    for &(label, _, peak) in &streamed {
        assert!(
            peak <= bound,
            "streamed {label} ingest peaked at {peak} heap bytes, above the \
             O(budget + chunk) bound of {bound} — did the ingest path start \
             materializing the stream?"
        );
        // The relative crosscheck needs the stream itself to dwarf the
        // streamed peaks before it separates the drivers.  It MUST run at
        // the CI default of 1M elements (measured there: streamed ~1.9 MB
        // vs materialized ~19 MB, an order of magnitude apart); it is only
        // skipped for deliberately shrunken local runs via
        // ABACUS_PERF_SMOKE_INGEST_ELEMENTS.
        if elements >= 750_000 {
            assert!(
                peak * 3 < materialized_peak,
                "streamed {label} ingest peaked at {peak} heap bytes, not clearly \
                 below the materialized driver's {materialized_peak}"
            );
        }
    }

    let mut rows = vec![Row {
        name: "ingest/materialized_text".to_string(),
        median_ns_per_op: materialized_seconds * 1e9 / elements as f64,
        ops_per_second: elements as f64 / materialized_seconds.max(1e-12),
    }];
    let mut extra = vec![
        ("ingest_elements".to_string(), elements as f64),
        ("ingest_budget".to_string(), budget as f64),
        ("ingest_chunk".to_string(), chunk as f64),
        (
            "ingest_materialized_peak_bytes".to_string(),
            materialized_peak as f64,
        ),
    ];
    for (label, seconds, peak) in streamed {
        rows.push(Row {
            name: format!("ingest/streamed_{label}"),
            median_ns_per_op: seconds * 1e9 / elements as f64,
            ops_per_second: elements as f64 / seconds.max(1e-12),
        });
        extra.push((format!("ingest_streamed_{label}_peak_bytes"), peak as f64));
    }
    (rows, extra)
}

/// The ensemble column: accuracy vs ensemble width K on a fig9-style
/// Movielens-like workload, plus replicate/partition throughput at fan-out
/// threads 1 and 2.
///
/// Accuracy is reported as MAPE vs the exact count over `trials` seeds, for
/// **both** memory disciplines, because they answer different questions and
/// move in opposite directions:
///
/// * `fixed_replica` — every replica keeps the full budget (total memory
///   K×M): replicas are i.i.d., averaging tightens the estimate ~1/√K, so
///   MAPE improves monotonically-ish from K=1 to K=4.  This is the paper's
///   "variance ~K× down for the same per-replica budget" story.
/// * `fixed_total` — the budget is split K ways (replica budget M/K): the
///   butterfly-discovery probability scales with budget³, so K small
///   samples are far noisier than one big one and averaging cannot buy the
///   loss back — MAPE *degrades* with K.  Emitted so the JSON records the
///   measured trade-off instead of hiding the regime where ensembles lose.
fn ensemble_rows() -> (Vec<Row>, Vec<(String, f64)>) {
    let budget = env_usize("ABACUS_PERF_SMOKE_ENSEMBLE_BUDGET", 3_000);
    let trials = env_usize("ABACUS_PERF_SMOKE_ENSEMBLE_TRIALS", 5).max(1) as u64;

    let stream = Dataset::MovielensLike.stream(0.2, SEED);
    let elements = stream.len() as f64;
    let truth = abacus_graph::count_butterflies(&abacus_stream::final_graph(&stream)) as f64;

    let mut rows = Vec::new();
    let mut extra = vec![
        ("ensemble_budget".to_string(), budget as f64),
        ("ensemble_stream_elements".to_string(), elements),
        ("ensemble_exact_butterflies".to_string(), truth),
    ];

    // Accuracy vs K, both memory disciplines.
    let mape = |per_replica: usize, k: usize| -> f64 {
        (0..trials)
            .map(|trial| {
                let spec = EstimatorSpec::abacus(per_replica).with_seed(SEED + trial);
                let mut ensemble = Ensemble::new(spec, k, EnsembleMode::Replicate).unwrap();
                ensemble.process_stream(&stream);
                100.0 * ((ensemble.estimate() - truth) / truth).abs()
            })
            .sum::<f64>()
            / trials as f64
    };
    for k in [1usize, 2, 4] {
        let fixed_replica = mape(budget, k);
        // At K=1 the two disciplines are the same spec; measure once.
        let fixed_total = if k == 1 {
            fixed_replica
        } else {
            mape((budget / k).max(2), k)
        };
        extra.push((
            format!("ensemble_accuracy_fixed_replica_k{k}_mape_percent"),
            fixed_replica,
        ));
        extra.push((
            format!("ensemble_accuracy_fixed_total_k{k}_mape_percent"),
            fixed_total,
        ));
    }

    // Throughput of a K=4 ensemble (fixed total memory) at fan-out threads
    // 1 and 2, replicate and partition.  Partition shards the stream, so it
    // does ~1/K of replicate's counting work per replica.
    for mode in [EnsembleMode::Replicate, EnsembleMode::Partition] {
        for threads in [1usize, 2] {
            let spec = EstimatorSpec::abacus((budget / 4).max(2)).with_seed(SEED);
            let mut ensemble = Ensemble::new(spec, 4, mode)
                .unwrap()
                .with_fan_out_threads(threads);
            let start = Instant::now();
            ensemble.process_stream(&stream);
            let seconds = start.elapsed().as_secs_f64();
            black_box(ensemble.estimate());
            rows.push(Row {
                name: format!("ensemble/{mode}_k4_threads{threads}"),
                median_ns_per_op: seconds * 1e9 / elements,
                ops_per_second: elements / seconds.max(1e-12),
            });
        }
    }
    // The K=1 reference: the bare estimator through the same registry path.
    {
        let mut bare = EstimatorSpec::abacus(budget).with_seed(SEED).build();
        let start = Instant::now();
        bare.process_stream(&stream);
        let seconds = start.elapsed().as_secs_f64();
        black_box(bare.estimate());
        rows.push(Row {
            name: "ensemble/bare_k1".to_string(),
            median_ns_per_op: seconds * 1e9 / elements,
            ops_per_second: elements / seconds.max(1e-12),
        });
    }
    (rows, extra)
}

/// The delta-circuit column: per-view incremental maintenance vs refreshing
/// the same state by offline recomputation once per mini-batch, on a
/// fixed-seed Movielens-like fully dynamic stream.
///
/// Both sides ingest the identical stream through the identical ABACUS
/// estimator config; the incremental side carries the view inside a
/// [`Circuit`], the offline side applies elements to a plain graph and
/// recomputes the view's state from scratch at every batch boundary (the
/// pre-circuit serving strategy).  The anomaly view has no offline
/// recomputation — its counterpart is the legacy `WindowedMonitor` wrapper
/// it replaced, so that pair measures the cost of view re-registration.
///
/// The headline is the `views/all/*` pair: serving the *whole* five-view
/// panel from one circuit (a single shared enumeration per element) vs the
/// pre-circuit stack (monitor wrapper + plain graph + all four graph-derived
/// states recomputed every batch).  Per-view rows are diagnostics — a view
/// whose offline refresh is cheap (the clustering scalar) can individually
/// lose to recomputation while the panel still wins by an order of
/// magnitude, because the offline side pays every refresh, led by the
/// bitruss peel, where the circuit's enumeration cost is shared.
fn views_rows(trials: usize) -> (Vec<Row>, Vec<(String, f64)>) {
    let take = env_usize("ABACUS_PERF_SMOKE_VIEW_ELEMENTS", 20_000);
    let batch = env_usize("ABACUS_PERF_SMOKE_VIEW_BATCH", 2_000).max(1);
    let budget = 3_000;
    let stream: Vec<StreamElement> = Dataset::MovielensLike
        .stream(0.3, SEED)
        .into_iter()
        .take(take)
        .collect();
    let elements = stream.len() as f64;
    let estimator = || Abacus::new(AbacusConfig::new(budget).with_seed(SEED));

    let mut rows = Vec::new();
    let mut extra = vec![
        ("views_stream_elements".to_string(), elements),
        ("views_recompute_batch".to_string(), batch as f64),
        ("views_budget".to_string(), budget as f64),
    ];

    // Incremental: the full circuit run, estimator included (the honest
    // serving cost of keeping that one view live).
    let incremental = |kind: ViewKind| -> f64 {
        let mut samples = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut circuit = Circuit::new(estimator()).with_view(kind.build());
            let start = Instant::now();
            circuit.process_stream(&stream);
            circuit.finish();
            samples.push(start.elapsed().as_secs_f64());
            black_box(circuit.view_reports());
        }
        median(samples)
    };

    // Offline: estimator + graph maintenance + a from-scratch recompute of
    // the view's state at every batch boundary and at stream end.
    let recompute = |kind: ViewKind| -> f64 {
        let mut samples = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut est = estimator();
            let mut graph = BipartiteGraph::new();
            let refresh = |graph: &BipartiteGraph| match kind {
                ViewKind::PerEdge => {
                    black_box(EdgeSupports::recompute(graph).total_support() as u64)
                }
                ViewKind::Vertex => {
                    black_box(VertexButterflyCounts::recompute(graph).butterflies() as u64)
                }
                ViewKind::Clustering => {
                    black_box(ClusteringState::recompute(graph).coefficient().to_bits())
                }
                ViewKind::Bitruss => black_box(bitruss_decomposition(graph).max_bitruss()),
                ViewKind::Anomaly => unreachable!("anomaly has no offline recomputation"),
            };
            let start = Instant::now();
            for (i, &element) in stream.iter().enumerate() {
                est.process(element);
                if element.delta.is_insert() {
                    graph.insert_edge(element.edge);
                } else {
                    graph.delete_edge(element.edge);
                }
                if (i + 1).is_multiple_of(batch) {
                    refresh(&graph);
                }
            }
            est.finish();
            if !stream.len().is_multiple_of(batch) {
                refresh(&graph);
            }
            samples.push(start.elapsed().as_secs_f64());
        }
        median(samples)
    };

    for kind in ViewKind::ALL {
        let inc = incremental(kind);
        let off = match kind {
            ViewKind::Anomaly => {
                // The legacy wrapper path the view replaced.
                let mut samples = Vec::with_capacity(trials);
                for _ in 0..trials {
                    let mut monitor = WindowedMonitor::new(estimator(), 1_024);
                    let start = Instant::now();
                    monitor.process_stream(&stream);
                    monitor.finish();
                    samples.push(start.elapsed().as_secs_f64());
                    black_box(monitor.snapshots().len());
                }
                median(samples)
            }
            _ => recompute(kind),
        };
        let offline_label = if kind == ViewKind::Anomaly {
            "monitor_wrapper"
        } else {
            "recompute_per_batch"
        };
        for (label, secs) in [("incremental", inc), (offline_label, off)] {
            rows.push(Row {
                name: format!("views/{kind}/{label}"),
                median_ns_per_op: secs * 1e9 / elements,
                ops_per_second: elements / secs.max(1e-12),
            });
        }
        extra.push((format!("views_{kind}_incremental_speedup_x"), off / inc));
    }

    // The whole panel at once — the headline comparison.  Incremental: one
    // circuit hosting all five views (one shared enumeration per element).
    // Offline: the pre-circuit serving stack — a `WindowedMonitor` for the
    // anomaly series plus a plain graph, with all four graph-derived states
    // recomputed from scratch at every batch boundary.
    {
        let inc = {
            let mut samples = Vec::with_capacity(trials);
            for _ in 0..trials {
                let mut circuit = Circuit::new(estimator());
                for kind in ViewKind::ALL {
                    assert!(circuit.subscribe_view(kind.build()).is_ok());
                }
                let start = Instant::now();
                circuit.process_stream(&stream);
                circuit.finish();
                samples.push(start.elapsed().as_secs_f64());
                black_box(circuit.view_reports());
            }
            median(samples)
        };
        let off = {
            let mut samples = Vec::with_capacity(trials);
            for _ in 0..trials {
                let mut monitor = WindowedMonitor::new(estimator(), 1_024);
                let mut graph = BipartiteGraph::new();
                let refresh = |graph: &BipartiteGraph| {
                    black_box(EdgeSupports::recompute(graph).total_support() as u64);
                    black_box(VertexButterflyCounts::recompute(graph).butterflies() as u64);
                    black_box(ClusteringState::recompute(graph).coefficient().to_bits());
                    black_box(bitruss_decomposition(graph).max_bitruss());
                };
                let start = Instant::now();
                for (i, &element) in stream.iter().enumerate() {
                    monitor.process(element);
                    if element.delta.is_insert() {
                        graph.insert_edge(element.edge);
                    } else {
                        graph.delete_edge(element.edge);
                    }
                    if (i + 1).is_multiple_of(batch) {
                        refresh(&graph);
                    }
                }
                monitor.finish();
                if !stream.len().is_multiple_of(batch) {
                    refresh(&graph);
                }
                samples.push(start.elapsed().as_secs_f64());
                black_box(monitor.snapshots().len());
            }
            median(samples)
        };
        for (label, secs) in [("incremental", inc), ("recompute_per_batch", off)] {
            rows.push(Row {
                name: format!("views/all/{label}"),
                median_ns_per_op: secs * 1e9 / elements,
                ops_per_second: elements / secs.max(1e-12),
            });
        }
        extra.push(("views_all_incremental_speedup_x".to_string(), off / inc));
    }
    (rows, extra)
}

/// The durability column: what a checkpoint costs to write, what the WAL
/// append adds to the per-element hot path, and how recovery latency scales
/// with the length of the WAL suffix that must be replayed.
fn persist_rows(trials: usize) -> (Vec<Row>, Vec<(String, f64)>) {
    use abacus_core::engine::{Checkpointer, RunManifest};
    use abacus_core::EstimatorKind;

    let dir_root = std::env::temp_dir().join(format!("abacus-perf-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_root);

    // 4096 distinct insertions — enough for the longest WAL replay sweep.
    let stream: Vec<StreamElement> = (0..4096u32)
        .map(|i| StreamElement::insert(abacus_graph::Edge::new(i / 64, 1_000 + i % 64)))
        .collect();
    let spec = EstimatorSpec::new(EstimatorKind::Abacus, 2_000).with_seed(SEED);
    // `checkpoint_every` beyond the stream length: checkpoints happen only
    // where the measurement asks for them.
    let manual_only = u64::MAX;

    let mut rows = Vec::new();
    let mut extra = Vec::new();

    // Baseline: the bare estimator hot path without any durability.
    {
        let per_element = |_: usize| {
            let mut estimator = Abacus::new(AbacusConfig::new(2_000).with_seed(SEED));
            let start = Instant::now();
            for &element in &stream {
                estimator.process(element);
            }
            black_box(estimator.estimate());
            start.elapsed().as_secs_f64() * 1e9 / stream.len() as f64
        };
        let ns = median((0..trials).map(per_element).collect());
        rows.push(Row {
            name: "persist/process_plain".to_string(),
            median_ns_per_op: ns,
            ops_per_second: 1e9 / ns.max(1e-9),
        });
        extra.push(("plain_ns_per_element".to_string(), ns));
    }

    // WAL-appended ingest: every element is written through to the log
    // before processing.  The delta against the plain row is the per-element
    // durability tax.
    let offer_ns = {
        let per_element = |trial: usize| {
            let dir = dir_root.join(format!("offer-{trial}"));
            let mut checkpointer =
                Checkpointer::create(&dir, RunManifest::new(spec, manual_only)).unwrap();
            let start = Instant::now();
            for &element in &stream {
                checkpointer.offer(element).unwrap();
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / stream.len() as f64;
            drop(checkpointer);
            let _ = std::fs::remove_dir_all(&dir);
            ns
        };
        let ns = median((0..trials).map(per_element).collect());
        rows.push(Row {
            name: "persist/offer_wal_append".to_string(),
            median_ns_per_op: ns,
            ops_per_second: 1e9 / ns.max(1e-9),
        });
        ns
    };
    extra.push(("wal_append_ns_per_element".to_string(), offer_ns));

    // Checkpoint write cost: serialize state, write + fsync the ABSNAP1
    // snapshot, rotate the WAL, advance the watermark, prune — on an
    // estimator whose sample holds its full budget.
    {
        let dir = dir_root.join("write-cost");
        let mut checkpointer =
            Checkpointer::create(&dir, RunManifest::new(spec, manual_only)).unwrap();
        for &element in &stream {
            checkpointer.offer(element).unwrap();
        }
        let samples = (0..trials.max(3))
            .map(|_| {
                let start = Instant::now();
                checkpointer.checkpoint().unwrap();
                start.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        let ns = median(samples);
        rows.push(Row {
            name: "persist/checkpoint_write".to_string(),
            median_ns_per_op: ns,
            ops_per_second: 1e9 / ns.max(1e-9),
        });
        extra.push(("checkpoint_write_ms".to_string(), ns / 1e6));
    }

    // Recovery latency vs WAL length: snapshot at element 0, then a log of
    // `wal_len` records to replay.  Reported per replayed element; the
    // extra keys carry the absolute latency.
    for wal_len in [256usize, 1024, 4096] {
        let dir = dir_root.join(format!("recover-{wal_len}"));
        let mut checkpointer =
            Checkpointer::create(&dir, RunManifest::new(spec, manual_only)).unwrap();
        for &element in &stream[..wal_len] {
            checkpointer.offer(element).unwrap();
        }
        drop(checkpointer); // no seal: exactly what a killed process leaves
        let samples = (0..trials.max(3))
            .map(|_| {
                let start = Instant::now();
                let recovery = Checkpointer::resume(&dir).unwrap();
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(recovery.replayed, wal_len as u64, "short replay");
                secs * 1e9 / wal_len as f64
            })
            .collect();
        let ns = median(samples);
        rows.push(Row {
            name: format!("persist/recover_wal{wal_len}"),
            median_ns_per_op: ns,
            ops_per_second: 1e9 / ns.max(1e-9),
        });
        extra.push((
            format!("recover_ms_wal{wal_len}"),
            ns * wal_len as f64 / 1e6,
        ));
    }

    let _ = std::fs::remove_dir_all(&dir_root);
    (rows, extra)
}

/// The sample-store memory column behind `BENCH_samplestore.json`.
///
/// Fills a fig9-scale Random Pairing sample per reference stream, reads
/// `SampleGraph::heap_bytes` (honest accounting: interner tables, SoA
/// column capacities, adjacency storage including spilled hash sets, and the
/// edge slot map — not just live elements), and reports
/// `bytes_per_sampled_edge` next to two committed *before* constants
/// measured on the exact same seeded workloads:
///
/// * `bytes_per_sampled_edge_before` — the pre-interning hash-of-hashes
///   layout under the *same* honest accounting (movielens 187.4, trackers
///   316.2).  The old accounting model undercounted that layout at 130.6 /
///   143.1 bytes per edge because it ignored table and header overhead —
///   those numbers are not comparable and are deliberately not emitted.
/// * `parabacus_t1_overhead_before` — the paired single-thread PARABACUS /
///   ABACUS per-element ratio (batch 10000, snapshot off) committed before
///   the arena delta logs and scratch reuse landed; the matching `_after`
///   column is recomputed from this run's `parabacus_rows` medians.
///
/// Doubles as the memory-regression *assertion*: at the default workload
/// (budget 7500, scale 4, full stream) the run PANICS — failing CI — if
/// `bytes_per_sampled_edge` exceeds the committed ceiling.  The layout is
/// fully deterministic for a fixed seed (capacities included), so the
/// ceiling can sit close to the measured value without flaking; it is
/// skipped when the workload knobs are overridden because per-edge overhead
/// is amortization-sensitive (smaller budgets spread the fixed per-vertex
/// cost over fewer edges).
fn samplestore_rows(parabacus: &[Row]) -> (Vec<Row>, Vec<(String, f64)>) {
    let budget = env_usize("ABACUS_PERF_SMOKE_BUDGET", 7_500);
    let scale = env_usize("ABACUS_PERF_SMOKE_SCALE", 4) as u32;
    let take = env_usize("ABACUS_PERF_SMOKE_ELEMENTS", usize::MAX);
    let default_workload = budget == 7_500 && scale == 4 && take == usize::MAX;

    // (label, dataset, honest-accounting bytes/edge of the pre-interning
    //  layout, committed SoA ceiling, committed paired t1 overhead ratio
    //  before the arena/scratch work).
    const BASELINES: [(&str, Dataset, f64, f64, f64); 2] = [
        ("movielens", Dataset::MovielensLike, 187.4, 140.0, 4.060),
        ("trackers", Dataset::TrackersLike, 316.2, 200.0, 3.539),
    ];

    let median_of = |name: &str| {
        parabacus
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns_per_op)
    };

    let mut rows = Vec::new();
    let mut extra = vec![("budget".to_string(), budget as f64)];
    for (name, dataset, before_bytes, ceiling, before_overhead) in BASELINES {
        let stream: Vec<StreamElement> = dataset
            .spec()
            .scaled(scale.max(1))
            .stream(0.2, SEED)
            .into_iter()
            .take(take)
            .collect();
        let elements = stream.len() as f64;

        let start = Instant::now();
        let mut abacus = Abacus::new(AbacusConfig::new(budget).with_seed(SEED));
        abacus.process_stream(&stream);
        let secs = start.elapsed().as_secs_f64();
        black_box(abacus.estimate());
        rows.push(Row {
            name: format!("{name}/samplestore/fill"),
            median_ns_per_op: secs * 1e9 / elements,
            ops_per_second: elements / secs.max(1e-12),
        });

        let sampled = abacus.sample().len();
        let heap = abacus.sample().heap_bytes();
        let bytes_per_edge = heap as f64 / sampled.max(1) as f64;
        extra.push((format!("{name}_sampled_edges"), sampled as f64));
        extra.push((format!("{name}_sample_heap_bytes"), heap as f64));
        extra.push((format!("{name}_bytes_per_sampled_edge"), bytes_per_edge));
        extra.push((
            format!("{name}_bytes_per_sampled_edge_before"),
            before_bytes,
        ));
        extra.push((format!("{name}_bytes_per_sampled_edge_ceiling"), ceiling));
        extra.push((
            format!("{name}_parabacus_t1_overhead_before"),
            before_overhead,
        ));
        if let (Some(par), Some(seq)) = (
            median_of(&format!("{name}/parabacus_t1_m10000/snapshot_off")),
            median_of(&format!("{name}/abacus/snapshot_off")),
        ) {
            extra.push((
                format!("{name}_parabacus_t1_overhead_after"),
                par / seq.max(1e-12),
            ));
        }

        if default_workload {
            assert!(
                bytes_per_edge <= ceiling,
                "{name}: sample store spends {bytes_per_edge:.1} bytes per sampled edge, \
                 over the committed ceiling of {ceiling:.1} — the SoA layout regressed"
            );
        }
    }
    (rows, extra)
}

fn main() {
    let trials = env_usize("ABACUS_PERF_SMOKE_TRIALS", 3).max(1);
    let out_dir = std::env::var("ABACUS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());

    let rows = intersect_rows(trials);
    let intersect_json = json_document("intersect", &rows, &[]);
    let intersect_path = format!("{out_dir}/BENCH_intersect.json");
    std::fs::write(&intersect_path, &intersect_json).expect("write BENCH_intersect.json");
    println!("wrote {intersect_path}");

    let (rows, extra) = parabacus_rows(trials);
    let parabacus_json = json_document("parabacus", &rows, &extra);
    let parabacus_path = format!("{out_dir}/BENCH_parabacus.json");
    std::fs::write(&parabacus_path, &parabacus_json).expect("write BENCH_parabacus.json");
    println!("wrote {parabacus_path}");

    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }

    let (samplestore, extra) = samplestore_rows(&rows);
    let samplestore_json = json_document("samplestore", &samplestore, &extra);
    let samplestore_path = format!("{out_dir}/BENCH_samplestore.json");
    std::fs::write(&samplestore_path, &samplestore_json).expect("write BENCH_samplestore.json");
    println!("wrote {samplestore_path}");
    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }
    println!("sample store memory ceiling holds: bytes_per_sampled_edge under committed bound");

    let (rows, extra) = ingest_rows();
    let ingest_json = json_document("ingest", &rows, &extra);
    let ingest_path = format!("{out_dir}/BENCH_ingest.json");
    std::fs::write(&ingest_path, &ingest_json).expect("write BENCH_ingest.json");
    println!("wrote {ingest_path}");
    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }
    println!("ingest memory bound holds: streamed peaks stayed O(budget + chunk)");

    let (rows, extra) = ensemble_rows();
    let ensemble_json = json_document("ensemble", &rows, &extra);
    let ensemble_path = format!("{out_dir}/BENCH_ensemble.json");
    std::fs::write(&ensemble_path, &ensemble_json).expect("write BENCH_ensemble.json");
    println!("wrote {ensemble_path}");
    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }

    let (rows, extra) = views_rows(trials);
    let views_json = json_document("views", &rows, &extra);
    let views_path = format!("{out_dir}/BENCH_views.json");
    std::fs::write(&views_path, &views_json).expect("write BENCH_views.json");
    println!("wrote {views_path}");
    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }

    let (rows, extra) = persist_rows(trials);
    let persist_json = json_document("persist", &rows, &extra);
    let persist_path = format!("{out_dir}/BENCH_persist.json");
    std::fs::write(&persist_path, &persist_json).expect("write BENCH_persist.json");
    println!("wrote {persist_path}");
    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }
}
