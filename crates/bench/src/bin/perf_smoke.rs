//! Fixed-seed perf-smoke harness: emits machine-readable benchmark artifacts
//! so the perf trajectory of the counting hot path is tracked in CI.
//!
//! Two JSON files are written (to `ABACUS_BENCH_DIR`, default the current
//! directory):
//!
//! * `BENCH_intersect.json` — median ns/op of every intersection kernel
//!   (probe / merge / branchless merge / gallop / adaptive) at three
//!   operand-size ratios,
//! * `BENCH_parabacus.json` — ABACUS and single-thread PARABACUS wall time
//!   and throughput over a fixed dataset-analog stream, with the frozen CSR
//!   counting snapshot on and off, plus the snapshot's counting-phase
//!   reduction in percent.
//!
//! Everything is seeded; run-to-run noise comes only from the machine.  Keep
//! the workload small — this runs on every CI push.
//!
//! Run with `cargo run --release -p abacus-bench --bin perf_smoke`.

use abacus_core::{
    Abacus, AbacusConfig, ButterflyCounter, ParAbacus, ParAbacusConfig, SnapshotMode,
};
use abacus_graph::intersect::{
    intersection_count_with, sorted_adaptive_count, sorted_gallop_count,
    sorted_merge_count_branchless, sorted_merge_intersection_count, KernelTuning,
};
use abacus_graph::AdjacencySet;
use abacus_stream::{Dataset, StreamElement};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Median of the measured values (input order is irrelevant).
fn median(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of zero samples");
    values.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    values[values.len() / 2]
}

/// One emitted measurement row.
struct Row {
    name: String,
    median_ns_per_op: f64,
    ops_per_second: f64,
}

fn json_document(bench: &str, rows: &[Row], extra: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    for (key, value) in extra {
        out.push_str(&format!("  \"{key}\": {value:.3},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns_per_op\": {:.1}, \"ops_per_second\": {:.0}}}{comma}\n",
            row.name, row.median_ns_per_op, row.ops_per_second
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Times `routine` (`iterations` calls per trial, median over `trials`).
fn measure<F: FnMut()>(trials: usize, iterations: usize, mut routine: F) -> f64 {
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_secs_f64() * 1e9 / iterations as f64);
    }
    median(samples)
}

fn sorted_ids(len: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut out = Vec::with_capacity(len);
    let mut next = 0u32;
    while out.len() < len {
        next += rng.random_range(1u32..=8);
        out.push(next);
    }
    out
}

fn intersect_rows(trials: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let small_len = 256usize;
    let small_sorted = sorted_ids(small_len, &mut rng);
    let small_set: AdjacencySet = small_sorted.iter().copied().collect();
    let probe_only = KernelTuning {
        merge_size_ratio: 0,
        ..KernelTuning::default()
    };
    let mut rows = Vec::new();
    for ratio in [1usize, 8, 64] {
        let large_sorted = sorted_ids(small_len * ratio, &mut rng);
        let large_set: AdjacencySet = large_sorted.iter().copied().collect();
        let iterations = 2_000;
        let kernels: Vec<(String, Box<dyn FnMut() + '_>)> = vec![
            (
                format!("probe/ratio{ratio}"),
                Box::new(|| {
                    black_box(intersection_count_with(&small_set, &large_set, probe_only));
                }),
            ),
            (
                format!("merge/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_merge_intersection_count(
                        &small_sorted,
                        &large_sorted,
                    ));
                }),
            ),
            (
                format!("merge_branchless/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_merge_count_branchless(&small_sorted, &large_sorted));
                }),
            ),
            (
                format!("gallop/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_gallop_count(&small_sorted, &large_sorted));
                }),
            ),
            (
                format!("adaptive/ratio{ratio}"),
                Box::new(|| {
                    black_box(sorted_adaptive_count(
                        &small_sorted,
                        &large_sorted,
                        KernelTuning::default(),
                    ));
                }),
            ),
        ];
        for (name, mut kernel) in kernels {
            let ns = measure(trials, iterations, &mut kernel);
            rows.push(Row {
                name,
                median_ns_per_op: ns,
                ops_per_second: 1e9 / ns.max(1e-9),
            });
        }
    }
    rows
}

/// One timed PARABACUS run: (total seconds, counting-phase seconds).
fn run_parabacus(
    stream: &[StreamElement],
    budget: usize,
    batch: usize,
    snapshot: SnapshotMode,
) -> (f64, f64) {
    let mut estimator = ParAbacus::new(
        ParAbacusConfig::new(budget)
            .with_seed(SEED)
            .with_batch_size(batch)
            .with_threads(1)
            .with_pipeline_depth(1)
            .with_snapshot(snapshot),
    );
    let start = Instant::now();
    estimator.process_stream(stream);
    let total = start.elapsed().as_secs_f64();
    black_box(estimator.estimate());
    (total, estimator.phase_timings().counting_seconds)
}

/// One timed ABACUS run (total seconds).
fn run_abacus(stream: &[StreamElement], budget: usize, snapshot: SnapshotMode) -> f64 {
    let mut estimator = Abacus::new(
        AbacusConfig::new(budget)
            .with_seed(SEED)
            .with_snapshot(snapshot),
    );
    let start = Instant::now();
    estimator.process_stream(stream);
    let total = start.elapsed().as_secs_f64();
    black_box(estimator.estimate());
    total
}

/// The fig9/fig4-style workloads at threads = 1: the Movielens-like (probe
/// dense) and Trackers-like (hub skewed) analogs at the speedup scale,
/// budget 7500, batch size 10000 (fig9; Movielens-like additionally at the
/// fig4 default M = 500), with the snapshot off, forced on, and in the
/// shipped adaptive `auto` mode.
///
/// The runs of every configuration are *interleaved per trial* and the
/// reduction metrics are medians of per-trial ratios: this container's
/// throughput drifts by tens of percent over seconds, so back-to-back
/// pairing is the only way to get a stable comparison.
fn parabacus_rows(trials: usize) -> (Vec<Row>, Vec<(String, f64)>) {
    let budget = env_usize("ABACUS_PERF_SMOKE_BUDGET", 7_500);
    let scale = env_usize("ABACUS_PERF_SMOKE_SCALE", 4) as u32;
    let take = env_usize("ABACUS_PERF_SMOKE_ELEMENTS", usize::MAX);

    let mut rows = Vec::new();
    let mut extra = vec![("budget".to_string(), budget as f64)];

    for dataset in [Dataset::MovielensLike, Dataset::TrackersLike] {
        let name = match dataset {
            Dataset::MovielensLike => "movielens",
            _ => "trackers",
        };
        let stream: Vec<StreamElement> = dataset
            .spec()
            .scaled(scale.max(1))
            .stream(0.2, SEED)
            .into_iter()
            .take(take)
            .collect();
        let elements = stream.len() as f64;
        extra.push((format!("{name}_stream_elements"), elements));

        let _ = run_abacus(&stream, budget, SnapshotMode::Off); // warm-up
        let mut abacus = (Vec::new(), Vec::new(), Vec::new()); // off, on, ratio
        for _ in 0..trials {
            let off = run_abacus(&stream, budget, SnapshotMode::Off);
            let on = run_abacus(&stream, budget, SnapshotMode::On);
            abacus.0.push(off);
            abacus.1.push(on);
            abacus.2.push(on / off);
        }
        for (label, secs) in [
            ("snapshot_off", median(abacus.0)),
            ("snapshot_on", median(abacus.1)),
        ] {
            rows.push(Row {
                name: format!("{name}/abacus/{label}"),
                median_ns_per_op: secs * 1e9 / elements,
                ops_per_second: elements / secs.max(1e-12),
            });
        }
        extra.push((
            format!("{name}_abacus_snapshot_reduction_percent"),
            100.0 * (1.0 - median(abacus.2)),
        ));

        let batches: &[usize] = if dataset == Dataset::MovielensLike {
            &[10_000, 500]
        } else {
            &[10_000]
        };
        for &batch in batches {
            const MODES: [(&str, SnapshotMode); 3] = [
                ("off", SnapshotMode::Off),
                ("on", SnapshotMode::On),
                ("auto", SnapshotMode::Auto),
            ];
            let mut totals: [Vec<f64>; 3] = Default::default();
            let mut counting: [Vec<f64>; 3] = Default::default();
            let mut on_ratio = Vec::new();
            let mut auto_ratio = Vec::new();
            for _ in 0..trials {
                for (i, (_, mode)) in MODES.iter().enumerate() {
                    let (total, count) = run_parabacus(&stream, budget, batch, *mode);
                    totals[i].push(total);
                    counting[i].push(count);
                }
                let last = |v: &Vec<f64>| *v.last().expect("just pushed");
                on_ratio.push(last(&counting[1]) / last(&counting[0]));
                auto_ratio.push(last(&counting[2]) / last(&counting[0]));
            }
            for (i, (label, _)) in MODES.iter().enumerate() {
                rows.push(Row {
                    name: format!("{name}/parabacus_t1_m{batch}/snapshot_{label}"),
                    median_ns_per_op: median(totals[i].clone()) * 1e9 / elements,
                    ops_per_second: elements / median(totals[i].clone()).max(1e-12),
                });
                rows.push(Row {
                    name: format!("{name}/parabacus_t1_m{batch}/counting_{label}"),
                    median_ns_per_op: median(counting[i].clone()) * 1e9 / elements,
                    ops_per_second: elements / median(counting[i].clone()).max(1e-12),
                });
            }
            extra.push((
                format!("{name}_parabacus_t1_m{batch}_on_counting_reduction_percent"),
                100.0 * (1.0 - median(on_ratio)),
            ));
            extra.push((
                format!("{name}_parabacus_t1_m{batch}_auto_counting_reduction_percent"),
                100.0 * (1.0 - median(auto_ratio)),
            ));
        }
    }
    (rows, extra)
}

fn main() {
    let trials = env_usize("ABACUS_PERF_SMOKE_TRIALS", 3).max(1);
    let out_dir = std::env::var("ABACUS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());

    let rows = intersect_rows(trials);
    let intersect_json = json_document("intersect", &rows, &[]);
    let intersect_path = format!("{out_dir}/BENCH_intersect.json");
    std::fs::write(&intersect_path, &intersect_json).expect("write BENCH_intersect.json");
    println!("wrote {intersect_path}");

    let (rows, extra) = parabacus_rows(trials);
    let parabacus_json = json_document("parabacus", &rows, &extra);
    let parabacus_path = format!("{out_dir}/BENCH_parabacus.json");
    std::fs::write(&parabacus_path, &parabacus_json).expect("write BENCH_parabacus.json");
    println!("wrote {parabacus_path}");

    for (key, value) in &extra {
        println!("{key} = {value:.2}");
    }
}
