//! Bench-only intersection-kernel variants.
//!
//! Kernels here are *retired or experimental* implementations kept around
//! purely as measurement baselines for the `intersect` micro-benchmark and
//! the `perf_smoke` regression gate.  They are deliberately **not** part of
//! `abacus-graph`: nothing in the production dispatch may select them, and
//! keeping them out of the library crate guarantees that by construction.

/// The arithmetic-advance ("branchless") two-pointer merge.
///
/// Instead of branching on the comparison, both cursors advance by the
/// boolean results of `<=`, so the loop body is branch-free apart from the
/// bounds checks.  The committed `BENCH_intersect.json` sweep measured it at
/// ~2.7× the classic merge's latency on every operand-size ratio: the
/// classic merge's branches are well predicted on sorted inputs, while the
/// arithmetic form pays two data-dependent increments per element and
/// defeats the sequential prefetcher on the side that "loses" each
/// comparison.  It stays here as the ablation baseline that documents *why*
/// the production [`KernelTuning`](abacus_graph::intersect::KernelTuning)
/// dispatch never offers it.
///
/// Both slices must be strictly sorted; returns the overlap size.
#[must_use]
pub fn merge_branchless_intersection_count(a: &[u32], b: &[u32]) -> u64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input b must be sorted");
    let mut i = 0usize;
    let mut j = 0usize;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        count += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::intersect::sorted_merge_intersection_count;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn sorted_ids(len: usize, universe: u32, rng: &mut StdRng) -> Vec<u32> {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < len {
            set.insert(rng.random_range(0..universe));
        }
        set.into_iter().collect()
    }

    #[test]
    fn branchless_merge_agrees_with_the_classic_merge() {
        let mut rng = StdRng::seed_from_u64(7);
        for (len_a, len_b) in [(0, 0), (0, 5), (1, 1), (64, 64), (32, 512), (256, 256)] {
            let a = sorted_ids(len_a, 2_048, &mut rng);
            let b = sorted_ids(len_b, 2_048, &mut rng);
            let classic = sorted_merge_intersection_count(&a, &b).count;
            assert_eq!(
                merge_branchless_intersection_count(&a, &b),
                classic,
                "sizes {len_a}/{len_b}"
            );
            assert_eq!(
                merge_branchless_intersection_count(&b, &a),
                classic,
                "sizes {len_b}/{len_a} (swapped)"
            );
        }
        // Fully overlapping and fully disjoint extremes.
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (100..200).collect();
        assert_eq!(merge_branchless_intersection_count(&a, &a), 100);
        assert_eq!(merge_branchless_intersection_count(&a, &b), 0);
    }
}
