//! Cached dataset preparation.
//!
//! Experiments repeatedly need the same three artefacts per dataset: the
//! insert-only edge list, fully dynamic streams for various deletion ratios,
//! and the exact butterfly count of the final graph (the ground truth for
//! relative error).  Generating edges is cheap, but exact counting is not, so
//! both streams and ground truths are cached process-wide behind a
//! [`parking_lot::Mutex`].

use abacus_graph::{count_butterflies, GraphStatistics};
use abacus_stream::{final_graph, stream::insertions_only, Dataset, GraphStream};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A prepared workload: the stream plus its ground truth.
#[derive(Debug, Clone)]
pub struct PreparedStream {
    /// The dataset the stream was generated from.
    pub dataset: Dataset,
    /// Deletion ratio α used to build the stream.
    pub alpha: f64,
    /// The fully dynamic stream (insertions in natural order, deletions
    /// injected per the paper's procedure).
    pub stream: GraphStream,
    /// Exact butterfly count of the graph after the whole stream.
    pub ground_truth: f64,
}

type StreamKey = (Dataset, u64);

fn stream_cache() -> &'static Mutex<HashMap<StreamKey, PreparedStream>> {
    static CACHE: OnceLock<Mutex<HashMap<StreamKey, PreparedStream>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn alpha_key(alpha: f64) -> u64 {
    // Deletion ratios are small round percentages; a fixed-point key avoids
    // float hashing headaches.
    (alpha * 10_000.0).round() as u64
}

/// Returns the prepared stream for a dataset and deletion ratio, computing and
/// caching it (including the exact ground truth) on first use.
///
/// The stream itself is deterministic per `(dataset, alpha)`: experiments vary
/// estimator seeds across trials, not the workload, mirroring the paper's
/// repeated-runs protocol.
pub fn prepared_stream(dataset: Dataset, alpha: f64) -> PreparedStream {
    let key = (dataset, alpha_key(alpha));
    if let Some(found) = stream_cache().lock().get(&key) {
        return found.clone();
    }
    // Build outside the lock: exact counting can take a little while and other
    // threads may want other datasets in parallel.
    let stream = dataset.stream(alpha, 0);
    let ground_truth = count_butterflies(&final_graph(&stream)) as f64;
    let prepared = PreparedStream {
        dataset,
        alpha,
        stream,
        ground_truth,
    };
    stream_cache()
        .lock()
        .entry(key)
        .or_insert_with(|| prepared.clone());
    prepared
}

/// The insert-only projection of a prepared stream (what the baselines see
/// conceptually; they receive the full stream but drop the deletions).
#[must_use]
pub fn insert_only(prepared: &PreparedStream) -> GraphStream {
    insertions_only(&prepared.stream)
}

type SpeedupKey = (Dataset, u64, u32);

fn speedup_cache() -> &'static Mutex<HashMap<SpeedupKey, GraphStream>> {
    static CACHE: OnceLock<Mutex<HashMap<SpeedupKey, GraphStream>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the scaled-up stream used by the throughput / speedup experiments
/// (Figs. 4, 8–10), cached per `(dataset, alpha, scale)`.
///
/// No ground truth is computed for these streams — the speedup experiments
/// only compare runtimes, and exact counting at this scale would dominate the
/// benchmark time.
pub fn speedup_stream(dataset: Dataset, alpha: f64, scale: u32) -> GraphStream {
    let key = (dataset, alpha_key(alpha), scale);
    if let Some(found) = speedup_cache().lock().get(&key) {
        return found.clone();
    }
    let stream = dataset.spec().scaled(scale).stream(alpha, 0);
    speedup_cache()
        .lock()
        .entry(key)
        .or_insert_with(|| stream.clone());
    stream
}

/// Table II statistics of a dataset analog (exact butterfly count included).
pub fn dataset_statistics(dataset: Dataset) -> GraphStatistics {
    let prepared = prepared_stream(dataset, 0.0);
    GraphStatistics::compute(&final_graph(&prepared.stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_identical_workloads() {
        let a = prepared_stream(Dataset::MovielensLike, 0.2);
        let b = prepared_stream(Dataset::MovielensLike, 0.2);
        assert_eq!(a.stream.len(), b.stream.len());
        assert_eq!(a.ground_truth, b.ground_truth);
        assert!(a.ground_truth > 0.0);
    }

    #[test]
    fn insert_only_projection_drops_deletions() {
        let prepared = prepared_stream(Dataset::MovielensLike, 0.2);
        let projected = insert_only(&prepared);
        assert!(projected.len() < prepared.stream.len());
        assert!(projected.iter().all(|e| e.delta.is_insert()));
    }
}
