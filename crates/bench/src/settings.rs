//! Experiment knobs.
//!
//! Every experiment reads its parameters from [`Settings::from_env`], so the
//! defaults keep `cargo bench` fast on a laptop while environment variables
//! allow scaling any experiment up:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `ABACUS_TRIALS` | independent runs averaged per accuracy data point | 3 |
//! | `ABACUS_THREADS` | maximum threads used by PARABACUS sweeps | available parallelism |
//! | `ABACUS_SAMPLE_SIZES` | comma-separated sample sizes (edges) | `750,1500,3000` |
//! | `ABACUS_BATCH_SIZES` | comma-separated mini-batch sizes | `100,500,1000,5000,10000` |
//! | `ABACUS_DELETION_RATIOS` | comma-separated α values (percent) | `5,10,20,30` |
//! | `ABACUS_PIPELINE_DEPTH` | PARABACUS pipeline depth used by non-pipeline experiments | 2 |
//! | `ABACUS_SPEEDUP_SCALE` | dataset scale factor for the throughput/speedup figures | 4 |
//! | `ABACUS_SPEEDUP_SAMPLE_SIZES` | sample sizes for the throughput/speedup figures | `7500,15000,30000` |
//!
//! Two workload scales are used on purpose.  The *accuracy* experiments
//! (Figs. 3, 5, 6) run on ≈100×-reduced dataset analogs with sample sizes
//! scaled by the same factor, so exact ground truths stay cheap and many
//! trials can be averaged.  The *throughput / speedup* experiments (Figs. 4,
//! 8–10) instead need the per-edge set-intersection work to dominate the
//! fixed per-element costs — as it does at the paper's scale — so they run on
//! `speedup_scale`-times larger analogs with the paper's sample sizes divided
//! by 10 (see DESIGN.md §3 for the substitution argument).

/// Runtime-tunable experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    /// Number of independent trials per accuracy data point (paper: 10).
    pub trials: u64,
    /// Maximum number of worker threads for PARABACUS.
    pub max_threads: usize,
    /// Sample sizes `k` swept by the accuracy/throughput experiments.
    /// The defaults are the paper's 75K/150K/300K divided by the ≈100×
    /// dataset scale factor (see DESIGN.md §3).
    pub sample_sizes: Vec<usize>,
    /// Mini-batch sizes swept by Fig. 8.
    pub batch_sizes: Vec<usize>,
    /// Deletion ratios α swept by Fig. 6 (fractions, not percent).
    pub deletion_ratios: Vec<f64>,
    /// The default deletion ratio used everywhere else (the paper's 20%).
    pub default_alpha: f64,
    /// The default PARABACUS mini-batch size (the paper's 500).
    pub default_batch_size: usize,
    /// The PARABACUS pipeline depth used by the experiments that do not sweep
    /// it (1 = the paper's alternating schedule, 2 = the default overlap).
    pub pipeline_depth: usize,
    /// Dataset scale factor used by the throughput / speedup experiments
    /// (Figs. 4, 8–10), relative to the accuracy-scale analogs.
    pub speedup_scale: u32,
    /// Sample sizes used by the throughput / speedup experiments (the paper's
    /// 75K/150K/300K divided by 10).
    pub speedup_sample_sizes: Vec<usize>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            trials: 3,
            max_threads: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get),
            sample_sizes: vec![750, 1_500, 3_000],
            batch_sizes: vec![100, 500, 1_000, 5_000, 10_000],
            deletion_ratios: vec![0.05, 0.10, 0.20, 0.30],
            default_alpha: 0.20,
            default_batch_size: 500,
            pipeline_depth: 2,
            speedup_scale: 4,
            speedup_sample_sizes: vec![7_500, 15_000, 30_000],
        }
    }
}

impl Settings {
    /// Builds the settings from the environment, falling back to defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let mut settings = Settings::default();
        if let Some(trials) = read_env_number("ABACUS_TRIALS") {
            settings.trials = trials.max(1);
        }
        if let Some(threads) = read_env_number("ABACUS_THREADS") {
            settings.max_threads = (threads as usize).max(1);
        }
        if let Some(sizes) = read_env_list("ABACUS_SAMPLE_SIZES") {
            settings.sample_sizes = sizes.into_iter().map(|v| v as usize).collect();
        }
        if let Some(sizes) = read_env_list("ABACUS_BATCH_SIZES") {
            settings.batch_sizes = sizes.into_iter().map(|v| v as usize).collect();
        }
        if let Some(ratios) = read_env_list("ABACUS_DELETION_RATIOS") {
            settings.deletion_ratios = ratios.into_iter().map(|v| v as f64 / 100.0).collect();
        }
        if let Some(depth) = read_env_number("ABACUS_PIPELINE_DEPTH") {
            settings.pipeline_depth = (depth as usize).max(1);
        }
        if let Some(scale) = read_env_number("ABACUS_SPEEDUP_SCALE") {
            settings.speedup_scale = (scale as u32).max(1);
        }
        if let Some(sizes) = read_env_list("ABACUS_SPEEDUP_SAMPLE_SIZES") {
            settings.speedup_sample_sizes = sizes.into_iter().map(|v| v as usize).collect();
        }
        settings
    }

    /// The thread counts swept by Fig. 9 (8, 16, 24, 32, 40 in the paper,
    /// clipped to the machine's parallelism and deduplicated).
    #[must_use]
    pub fn thread_sweep(&self) -> Vec<usize> {
        let mut sweep: Vec<usize> = [1usize, 2, 4, 8, 16, 24, 32, 40]
            .into_iter()
            .filter(|&t| t <= self.max_threads)
            .collect();
        if !sweep.contains(&self.max_threads) {
            sweep.push(self.max_threads);
        }
        sweep.sort_unstable();
        sweep.dedup();
        sweep
    }
}

fn read_env_number(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn read_env_list(name: &str) -> Option<Vec<u64>> {
    let raw = std::env::var(name).ok()?;
    let values: Vec<u64> = raw
        .split(',')
        .filter_map(|part| part.trim().parse().ok())
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = Settings::default();
        assert!(s.trials >= 1);
        assert!(s.max_threads >= 1);
        assert_eq!(s.sample_sizes, vec![750, 1_500, 3_000]);
        assert_eq!(s.default_batch_size, 500);
        assert_eq!(s.pipeline_depth, 2);
        assert!((s.default_alpha - 0.2).abs() < 1e-12);
    }

    #[test]
    fn thread_sweep_is_sorted_unique_and_bounded() {
        let mut s = Settings {
            max_threads: 10,
            ..Settings::default()
        };
        let sweep = s.thread_sweep();
        assert_eq!(sweep, vec![1, 2, 4, 8, 10]);
        s.max_threads = 1;
        assert_eq!(s.thread_sweep(), vec![1]);
    }

    #[test]
    fn env_parsing_helpers() {
        // These helpers must tolerate garbage without panicking.
        std::env::set_var("ABACUS_TEST_NUM", "17");
        assert_eq!(read_env_number("ABACUS_TEST_NUM"), Some(17));
        std::env::set_var("ABACUS_TEST_NUM", "not a number");
        assert_eq!(read_env_number("ABACUS_TEST_NUM"), None);
        std::env::set_var("ABACUS_TEST_LIST", "1, 2,3");
        assert_eq!(read_env_list("ABACUS_TEST_LIST"), Some(vec![1, 2, 3]));
        std::env::set_var("ABACUS_TEST_LIST", " , ");
        assert_eq!(read_env_list("ABACUS_TEST_LIST"), None);
        assert_eq!(read_env_number("ABACUS_TEST_MISSING_VAR"), None);
    }
}
