//! Timed single-run drivers for every estimator.
//!
//! A *run* processes one stream with one estimator configuration and reports
//! the estimate, the wall-clock throughput, and (where available) per-thread
//! workload counters.  The experiment modules compose runs into the paper's
//! tables.
//!
//! Estimators are described by [`EstimatorSpec`] and constructed through the
//! engine registry — the same factory the CLI uses — so the bench harness
//! and the CLI can never disagree about what an algorithm name means or
//! which knobs it takes.

use abacus_core::engine::EstimatorSpec;
use abacus_core::ParAbacus;
use abacus_metrics::{relative_error_percent, Throughput};
use abacus_stream::StreamElement;
use std::time::Instant;

/// Result of one timed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that produced the result.
    pub spec: EstimatorSpec,
    /// Final butterfly-count estimate.
    pub estimate: f64,
    /// Throughput over the whole stream.
    pub throughput: Throughput,
    /// Per-thread set-intersection workloads (PARABACUS only, empty
    /// otherwise).
    pub thread_workloads: Vec<u64>,
    /// Number of edges held in memory at the end of the run.
    pub memory_edges: usize,
}

impl RunResult {
    /// Display name of the estimator, for result tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.spec.kind.label()
    }

    /// Relative error (%) of the run against a ground-truth count.
    #[must_use]
    pub fn relative_error_percent(&self, ground_truth: f64) -> f64 {
        relative_error_percent(ground_truth, self.estimate)
    }
}

/// Runs one estimator over a stream, timing the processing loop only (stream
/// generation and ground-truth computation are excluded, as in the paper).
#[must_use]
pub fn run(spec: EstimatorSpec, stream: &[StreamElement]) -> RunResult {
    let mut estimator = spec.build();
    let start = Instant::now();
    estimator.process_stream(stream);
    let elapsed = start.elapsed();
    // PARABACUS is the only estimator with per-thread counters; recover it
    // through the introspection hook instead of a construction-site match.
    let thread_workloads = estimator
        .as_any()
        .and_then(|any| any.downcast_ref::<ParAbacus>())
        .map(|parabacus| parabacus.thread_workloads().to_vec())
        .unwrap_or_default();
    RunResult {
        spec,
        estimate: estimator.estimate(),
        throughput: Throughput::new(stream.len() as u64, elapsed),
        thread_workloads,
        memory_edges: estimator.memory_edges(),
    }
}

/// Runs ABACUS and records the elapsed wall-clock time after every
/// `checkpoint_every` elements (the scalability series of Fig. 7).
#[must_use]
pub fn run_abacus_with_checkpoints(
    budget: usize,
    seed: u64,
    stream: &[StreamElement],
    checkpoint_every: usize,
) -> Vec<(usize, f64)> {
    assert!(checkpoint_every > 0);
    let mut estimator = EstimatorSpec::abacus(budget).with_seed(seed).build();
    let mut checkpoints = Vec::new();
    let start = Instant::now();
    for (index, element) in stream.iter().enumerate() {
        estimator.process(*element);
        if (index + 1) % checkpoint_every == 0 || index + 1 == stream.len() {
            checkpoints.push((index + 1, start.elapsed().as_secs_f64()));
        }
    }
    checkpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_core::engine::EstimatorKind;
    use abacus_graph::Edge;

    fn small_stream() -> Vec<StreamElement> {
        let mut out = Vec::new();
        for l in 0..20u32 {
            for r in 0..10u32 {
                out.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        out
    }

    #[test]
    fn all_algorithms_run_and_report() {
        let stream = small_stream();
        for spec in [
            EstimatorSpec::abacus(64).with_seed(1),
            EstimatorSpec::parabacus(64)
                .with_seed(1)
                .with_batch_size(32)
                .with_threads(2),
            EstimatorSpec::fleet(64).with_seed(1),
            EstimatorSpec::cas(64).with_seed(1),
        ] {
            let result = run(spec, &stream);
            assert!(result.estimate >= 0.0, "{}", result.label());
            assert!(result.throughput.per_second() > 0.0);
            assert!(result.memory_edges > 0);
            if spec.kind == EstimatorKind::ParAbacus {
                assert!(!result.thread_workloads.is_empty());
            } else {
                assert!(result.thread_workloads.is_empty());
            }
        }
    }

    #[test]
    fn relative_error_is_computed_against_truth() {
        let stream = small_stream();
        // Budget covers the whole stream: ABACUS is exact.
        let result = run(EstimatorSpec::abacus(1_000), &stream);
        let truth = abacus_graph::count_butterflies(&abacus_stream::final_graph(&stream)) as f64;
        assert!(result.relative_error_percent(truth) < 1e-9);
    }

    #[test]
    fn checkpoints_are_monotone() {
        let stream = small_stream();
        let checkpoints = run_abacus_with_checkpoints(64, 0, &stream, 50);
        assert_eq!(checkpoints.last().unwrap().0, stream.len());
        assert!(checkpoints
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }
}
