//! Timed single-run drivers for every estimator.
//!
//! A *run* processes one stream with one estimator configuration and reports
//! the estimate, the wall-clock throughput, and (where available) per-thread
//! workload counters.  The experiment modules compose runs into the paper's
//! tables.

use abacus_baselines::{Cas, CasConfig, Fleet, FleetConfig};
use abacus_core::{Abacus, AbacusConfig, ButterflyCounter, ParAbacus, ParAbacusConfig};
use abacus_metrics::{relative_error_percent, Throughput};
use abacus_stream::StreamElement;
use std::time::Instant;

/// The estimators compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// ABACUS (sequential, fully dynamic).
    Abacus,
    /// PARABACUS (mini-batch parallel, fully dynamic).
    ParAbacus {
        /// Mini-batch size `M`.
        batch_size: usize,
        /// Worker threads `p`.
        threads: usize,
        /// Pipeline depth (1 = the paper's alternating schedule, 2 = the
        /// default double-buffered overlap of phase 1 and phase 2).
        pipeline_depth: usize,
    },
    /// FLEET3 (insert-only baseline).
    Fleet,
    /// CAS (insert-only baseline).
    Cas,
}

impl Algorithm {
    /// Display name for result tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Abacus => "ABACUS",
            Algorithm::ParAbacus { .. } => "PARABACUS",
            Algorithm::Fleet => "FLEET",
            Algorithm::Cas => "CAS",
        }
    }
}

/// Result of one timed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which estimator produced the result.
    pub algorithm: Algorithm,
    /// Final butterfly-count estimate.
    pub estimate: f64,
    /// Throughput over the whole stream.
    pub throughput: Throughput,
    /// Per-thread set-intersection workloads (PARABACUS only, empty
    /// otherwise).
    pub thread_workloads: Vec<u64>,
    /// Number of edges held in memory at the end of the run.
    pub memory_edges: usize,
}

impl RunResult {
    /// Relative error (%) of the run against a ground-truth count.
    #[must_use]
    pub fn relative_error_percent(&self, ground_truth: f64) -> f64 {
        relative_error_percent(ground_truth, self.estimate)
    }
}

/// Runs one estimator over a stream, timing the processing loop only (stream
/// generation and ground-truth computation are excluded, as in the paper).
#[must_use]
pub fn run(algorithm: Algorithm, budget: usize, seed: u64, stream: &[StreamElement]) -> RunResult {
    match algorithm {
        Algorithm::Abacus => {
            let mut estimator = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
            timed(algorithm, &mut estimator, stream, Vec::new())
        }
        Algorithm::ParAbacus {
            batch_size,
            threads,
            pipeline_depth,
        } => {
            let mut estimator = ParAbacus::new(
                ParAbacusConfig::new(budget)
                    .with_seed(seed)
                    .with_batch_size(batch_size)
                    .with_threads(threads)
                    .with_pipeline_depth(pipeline_depth),
            );
            let start = Instant::now();
            estimator.process_stream(stream);
            let elapsed = start.elapsed();
            RunResult {
                algorithm,
                estimate: estimator.estimate(),
                throughput: Throughput::new(stream.len() as u64, elapsed),
                thread_workloads: estimator.thread_workloads().to_vec(),
                memory_edges: estimator.memory_edges(),
            }
        }
        Algorithm::Fleet => {
            let mut estimator = Fleet::new(FleetConfig::new(budget).with_seed(seed));
            timed(algorithm, &mut estimator, stream, Vec::new())
        }
        Algorithm::Cas => {
            let mut estimator = Cas::new(CasConfig::new(budget).with_seed(seed));
            timed(algorithm, &mut estimator, stream, Vec::new())
        }
    }
}

fn timed<C: ButterflyCounter>(
    algorithm: Algorithm,
    estimator: &mut C,
    stream: &[StreamElement],
    thread_workloads: Vec<u64>,
) -> RunResult {
    let start = Instant::now();
    estimator.process_stream(stream);
    let elapsed = start.elapsed();
    RunResult {
        algorithm,
        estimate: estimator.estimate(),
        throughput: Throughput::new(stream.len() as u64, elapsed),
        thread_workloads,
        memory_edges: estimator.memory_edges(),
    }
}

/// Runs ABACUS and records the elapsed wall-clock time after every
/// `checkpoint_every` elements (the scalability series of Fig. 7).
#[must_use]
pub fn run_abacus_with_checkpoints(
    budget: usize,
    seed: u64,
    stream: &[StreamElement],
    checkpoint_every: usize,
) -> Vec<(usize, f64)> {
    assert!(checkpoint_every > 0);
    let mut estimator = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
    let mut checkpoints = Vec::new();
    let start = Instant::now();
    for (index, element) in stream.iter().enumerate() {
        estimator.process(*element);
        if (index + 1) % checkpoint_every == 0 || index + 1 == stream.len() {
            checkpoints.push((index + 1, start.elapsed().as_secs_f64()));
        }
    }
    checkpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;

    fn small_stream() -> Vec<StreamElement> {
        let mut out = Vec::new();
        for l in 0..20u32 {
            for r in 0..10u32 {
                out.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        out
    }

    #[test]
    fn all_algorithms_run_and_report() {
        let stream = small_stream();
        for algorithm in [
            Algorithm::Abacus,
            Algorithm::ParAbacus {
                batch_size: 32,
                threads: 2,
                pipeline_depth: 2,
            },
            Algorithm::Fleet,
            Algorithm::Cas,
        ] {
            let result = run(algorithm, 64, 1, &stream);
            assert!(result.estimate >= 0.0, "{}", algorithm.label());
            assert!(result.throughput.per_second() > 0.0);
            assert!(result.memory_edges > 0);
            if matches!(algorithm, Algorithm::ParAbacus { .. }) {
                assert!(!result.thread_workloads.is_empty());
            }
        }
    }

    #[test]
    fn relative_error_is_computed_against_truth() {
        let stream = small_stream();
        // Budget covers the whole stream: ABACUS is exact.
        let result = run(Algorithm::Abacus, 1_000, 0, &stream);
        let truth = abacus_graph::count_butterflies(&abacus_stream::final_graph(&stream)) as f64;
        assert!(result.relative_error_percent(truth) < 1e-9);
    }

    #[test]
    fn checkpoints_are_monotone() {
        let stream = small_stream();
        let checkpoints = run_abacus_with_checkpoints(64, 0, &stream, 50);
        assert_eq!(checkpoints.last().unwrap().0, stream.len());
        assert!(checkpoints
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }
}
