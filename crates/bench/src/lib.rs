//! # abacus-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§VI) on the scaled-down dataset analogs.
//!
//! Each `benches/*.rs` target is a thin `main` that calls one experiment
//! function from [`experiments`] and prints the resulting Markdown table, so
//! `cargo bench --workspace` reproduces the full evaluation.  The library part
//! holds the shared plumbing:
//!
//! * [`settings`] — experiment knobs (trial counts, sample sizes, thread
//!   sweeps) with environment-variable overrides,
//! * [`datasets`] — cached dataset/stream/ground-truth preparation,
//! * [`runners`] — timed single-run drivers for every estimator,
//! * [`experiments`] — one module per paper table/figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod kernels;
pub mod runners;
pub mod settings;

pub use settings::Settings;
