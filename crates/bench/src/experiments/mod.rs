//! One module per paper table / figure.
//!
//! Every function returns [`abacus_metrics::Table`]s whose rows mirror the
//! series the paper plots, so printing them from a bench target regenerates
//! the corresponding result.  `EXPERIMENTS.md` records one captured run next
//! to the paper's reported values.

pub mod accuracy;
pub mod deletions;
pub mod load_balance;
pub mod pipeline;
pub mod scalability;
pub mod speedup;
pub mod table2;
pub mod throughput;

pub use accuracy::{fig3_accuracy_with_deletions, fig5_accuracy_insert_only};
pub use deletions::{fig6a_error_vs_alpha, fig6b_throughput_vs_alpha};
pub use load_balance::fig10_load_balance;
pub use pipeline::pipeline_vs_alternating;
pub use scalability::fig7_scalability;
pub use speedup::{fig8_speedup_vs_batch_size, fig9_speedup_vs_threads};
pub use table2::table2_dataset_statistics;
pub use throughput::fig4_throughput;
