//! Fig. 4 — throughput vs. sample size.
//!
//! PARABACUS and ABACUS process the fully dynamic stream (insertions and
//! deletions); for a fair comparison with the insert-only baselines, ABACUS is
//! also measured on the insert-only projection, as are FLEET and CAS.
//!
//! Like the speedup figures, this experiment runs on the *speedup-scale*
//! workloads and sample sizes (see [`Settings::speedup_scale`]) so that the
//! per-edge counting work — not fixed per-element overhead — determines the
//! throughput, as it does at the paper's dataset sizes.  Relative error is
//! not evaluated here, so no ground truth is needed.

use crate::datasets::speedup_stream;
use crate::runners::run;
use crate::settings::Settings;
use abacus_core::engine::EstimatorSpec;
use abacus_metrics::Table;
use abacus_stream::{stream::insertions_only, Dataset};

/// Fig. 4 — throughput (K edges/s) of every estimator while varying the
/// sample size, with α = 20% deletions.
#[must_use]
pub fn fig4_throughput(settings: &Settings) -> Table {
    let mut table = Table::new(
        format!(
            "Fig. 4 — Throughput (K edges/s) with 20% deletions, varying sample size (scale {}, PARABACUS M = {}, {} threads)",
            settings.speedup_scale, settings.default_batch_size, settings.max_threads
        ),
        &[
            "Dataset",
            "k (edges)",
            "PARABACUS (Ins+Del)",
            "ABACUS (Ins+Del)",
            "ABACUS (Ins-only)",
            "FLEET (Ins-only)",
            "CAS (Ins-only)",
        ],
    );
    for dataset in Dataset::all() {
        let stream = speedup_stream(dataset, settings.default_alpha, settings.speedup_scale);
        let insert_stream = insertions_only(&stream);
        for &k in &settings.speedup_sample_sizes {
            let parabacus = run(
                EstimatorSpec::parabacus(k)
                    .with_batch_size(settings.default_batch_size)
                    .with_threads(settings.max_threads)
                    .with_pipeline_depth(settings.pipeline_depth),
                &stream,
            );
            let abacus_dynamic = run(EstimatorSpec::abacus(k), &stream);
            let abacus_insert = run(EstimatorSpec::abacus(k), &insert_stream);
            let fleet = run(EstimatorSpec::fleet(k), &insert_stream);
            let cas = run(EstimatorSpec::cas(k), &insert_stream);
            table.push_row([
                dataset.name().to_string(),
                k.to_string(),
                format!("{:.0}", parabacus.throughput.kilo_per_second()),
                format!("{:.0}", abacus_dynamic.throughput.kilo_per_second()),
                format!("{:.0}", abacus_insert.throughput.kilo_per_second()),
                format!("{:.0}", fleet.throughput.kilo_per_second()),
                format!("{:.0}", cas.throughput.kilo_per_second()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_for_each_dataset_and_sample_size() {
        let settings = Settings {
            trials: 1,
            speedup_sample_sizes: vec![500],
            speedup_scale: 1,
            max_threads: 2,
            ..Settings::default()
        };
        let table = fig4_throughput(&settings);
        assert_eq!(table.len(), 4);
        assert!(table.to_markdown().contains("PARABACUS"));
    }
}
