//! Fig. 7 — ABACUS scales linearly with the stream size.
//!
//! The paper reports the elapsed time after each processed decile of the
//! Trackers and Orkut streams, for three sample sizes.

use crate::datasets::prepared_stream;
use crate::runners::run_abacus_with_checkpoints;
use crate::settings::Settings;
use abacus_metrics::Table;
use abacus_stream::Dataset;

/// Fig. 7 — elapsed seconds after every processed decile of the stream, for
/// each sample size, on the Trackers-like and Orkut-like workloads.
#[must_use]
pub fn fig7_scalability(settings: &Settings) -> Vec<Table> {
    [Dataset::TrackersLike, Dataset::OrkutLike]
        .into_iter()
        .map(|dataset| scalability_table(dataset, settings))
        .collect()
}

fn scalability_table(dataset: Dataset, settings: &Settings) -> Table {
    let prepared = prepared_stream(dataset, settings.default_alpha);
    let decile = (prepared.stream.len() / 10).max(1);

    let mut header: Vec<String> = vec!["Elements processed".to_string()];
    for &k in &settings.sample_sizes {
        header.push(format!("k={k} (s)"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fig. 7 — ABACUS elapsed time vs elements processed ({})",
            dataset.name()
        ),
        &header_refs,
    );

    let series: Vec<Vec<(usize, f64)>> = settings
        .sample_sizes
        .iter()
        .map(|&k| run_abacus_with_checkpoints(k, 0, &prepared.stream, decile))
        .collect();

    if let Some(first) = series.first() {
        for (row_index, &(elements, _)) in first.iter().enumerate() {
            let mut row = vec![elements.to_string()];
            for column in &series {
                row.push(format!("{:.3}", column[row_index].1));
            }
            table.add_row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_tables_with_about_ten_rows() {
        let settings = Settings {
            sample_sizes: vec![300],
            ..Settings::default()
        };
        let tables = fig7_scalability(&settings);
        assert_eq!(tables.len(), 2);
        for table in tables {
            assert!(
                table.len() >= 10,
                "expected >= 10 checkpoints, got {}",
                table.len()
            );
        }
    }
}
