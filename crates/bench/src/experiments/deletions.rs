//! Fig. 6 — impact of the deletion ratio α on ABACUS.

use crate::datasets::prepared_stream;
use crate::runners::run;
use crate::settings::Settings;
use abacus_core::engine::EstimatorSpec;
use abacus_metrics::{Summary, Table};
use abacus_stream::Dataset;

/// The sample size used throughout Fig. 6 (the paper's 150K, scaled).
fn fig6_sample_size(settings: &Settings) -> usize {
    settings
        .sample_sizes
        .get(settings.sample_sizes.len() / 2)
        .copied()
        .unwrap_or(1_500)
}

/// Fig. 6a — relative error (%) of ABACUS per dataset while varying α.
#[must_use]
pub fn fig6a_error_vs_alpha(settings: &Settings) -> Table {
    let k = fig6_sample_size(settings);
    let mut header: Vec<String> = vec!["Dataset".to_string()];
    for alpha in &settings.deletion_ratios {
        header.push(format!("err % @ alpha={:.0}%", alpha * 100.0));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Fig. 6a — ABACUS relative error vs deletion ratio (k = {k})"),
        &header_refs,
    );
    for dataset in Dataset::all() {
        let mut row = vec![dataset.name().to_string()];
        for &alpha in &settings.deletion_ratios {
            let prepared = prepared_stream(dataset, alpha);
            let errors: Summary = (0..settings.trials)
                .map(|trial| {
                    run(
                        EstimatorSpec::abacus(k).with_seed(2_000 + trial),
                        &prepared.stream,
                    )
                    .relative_error_percent(prepared.ground_truth)
                })
                .collect();
            row.push(format!("{:.2}", errors.mean()));
        }
        table.add_row(row);
    }
    table
}

/// Fig. 6b — throughput (K edges/s) of ABACUS per dataset while varying α.
#[must_use]
pub fn fig6b_throughput_vs_alpha(settings: &Settings) -> Table {
    let k = fig6_sample_size(settings);
    let mut header: Vec<String> = vec!["Dataset".to_string()];
    for alpha in &settings.deletion_ratios {
        header.push(format!("K edges/s @ alpha={:.0}%", alpha * 100.0));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Fig. 6b — ABACUS throughput vs deletion ratio (k = {k})"),
        &header_refs,
    );
    for dataset in Dataset::all() {
        let mut row = vec![dataset.name().to_string()];
        for &alpha in &settings.deletion_ratios {
            let prepared = prepared_stream(dataset, alpha);
            let result = run(EstimatorSpec::abacus(k), &prepared.stream);
            row.push(format!("{:.0}", result.throughput.kilo_per_second()));
        }
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_tables_have_one_row_per_dataset() {
        let settings = Settings {
            trials: 1,
            sample_sizes: vec![400],
            deletion_ratios: vec![0.1],
            ..Settings::default()
        };
        assert_eq!(fig6a_error_vs_alpha(&settings).len(), 4);
        assert_eq!(fig6b_throughput_vs_alpha(&settings).len(), 4);
    }
}
