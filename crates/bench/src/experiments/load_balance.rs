//! Fig. 10 — per-thread workload of PARABACUS.
//!
//! The workload unit is the number of membership checks performed inside the
//! set intersections of the per-edge butterfly counting, which is exactly what
//! the paper reports per thread to demonstrate load balance.

use crate::datasets::speedup_stream;
use crate::runners::run;
use crate::settings::Settings;
use abacus_core::engine::EstimatorSpec;
use abacus_metrics::Table;
use abacus_stream::Dataset;

/// Fig. 10 — per-thread set-intersection workload for the densest
/// (Movielens-like) and sparsest (Orkut-like) datasets.
#[must_use]
pub fn fig10_load_balance(settings: &Settings) -> Vec<Table> {
    let k = settings
        .speedup_sample_sizes
        .get(settings.speedup_sample_sizes.len() / 2)
        .copied()
        .unwrap_or(15_000);
    let batch_size = *settings.batch_sizes.last().unwrap_or(&10_000);
    let threads = settings.max_threads.min(32);

    [Dataset::MovielensLike, Dataset::OrkutLike]
        .into_iter()
        .map(|dataset| {
            let stream = speedup_stream(dataset, settings.default_alpha, settings.speedup_scale);
            let result = run(
                EstimatorSpec::parabacus(k)
                    .with_batch_size(batch_size)
                    .with_threads(threads)
                    .with_pipeline_depth(settings.pipeline_depth),
                &stream,
            );
            let workloads = &result.thread_workloads;
            let total: u64 = workloads.iter().sum();
            let mean = total as f64 / workloads.len().max(1) as f64;

            let mut table = Table::new(
                format!(
                    "Fig. 10 — Workload per thread ({}, k = {k}, M = {batch_size}, {threads} threads)",
                    dataset.name()
                ),
                &["Thread id", "Workload (element checks)", "Relative to mean"],
            );
            for (thread_id, &workload) in workloads.iter().enumerate() {
                table.push_row([
                    (thread_id + 1).to_string(),
                    workload.to_string(),
                    format!("{:.2}", workload as f64 / mean.max(1.0)),
                ]);
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_tables_with_one_row_per_thread() {
        let settings = Settings {
            speedup_sample_sizes: vec![300],
            speedup_scale: 1,
            batch_sizes: vec![500],
            max_threads: 3,
            ..Settings::default()
        };
        let tables = fig10_load_balance(&settings);
        assert_eq!(tables.len(), 2);
        for table in tables {
            assert_eq!(table.len(), 3);
        }
    }
}
