//! Fig. 8 and Fig. 9 — PARABACUS speedup over sequential ABACUS.
//!
//! Speedup is the ratio of the sequential ABACUS runtime to the PARABACUS
//! runtime over the same fully dynamic stream with the same memory budget.
//!
//! These experiments run on the *speedup-scale* workloads (see
//! [`Settings::speedup_scale`]): the per-edge set-intersection work has to
//! dominate the fixed per-element costs for parallelism to pay off, exactly
//! as it does at the paper's dataset sizes.

use crate::datasets::speedup_stream;
use crate::runners::run;
use crate::settings::Settings;
use abacus_core::engine::EstimatorSpec;
use abacus_metrics::Table;
use abacus_stream::{Dataset, StreamElement};
use std::collections::HashMap;

/// Measures the sequential ABACUS baseline runtime once per (dataset, k).
fn sequential_seconds(
    cache: &mut HashMap<(Dataset, usize), f64>,
    dataset: Dataset,
    stream: &[StreamElement],
    k: usize,
) -> f64 {
    if let Some(&secs) = cache.get(&(dataset, k)) {
        return secs;
    }
    let result = run(EstimatorSpec::abacus(k), stream);
    let secs = result.throughput.seconds;
    cache.insert((dataset, k), secs);
    secs
}

fn parabacus_seconds(
    stream: &[StreamElement],
    k: usize,
    batch_size: usize,
    threads: usize,
    pipeline_depth: usize,
) -> f64 {
    let result = run(
        EstimatorSpec::parabacus(k)
            .with_batch_size(batch_size)
            .with_threads(threads)
            .with_pipeline_depth(pipeline_depth),
        stream,
    );
    result.throughput.seconds
}

/// Fig. 8 — speedup while varying the mini-batch size (all threads).
#[must_use]
pub fn fig8_speedup_vs_batch_size(settings: &Settings) -> Vec<Table> {
    let mut cache = HashMap::new();
    Dataset::all()
        .into_iter()
        .map(|dataset| {
            // One stream per dataset, shared by every cell of the sweep.
            let stream = speedup_stream(dataset, settings.default_alpha, settings.speedup_scale);
            let mut header: Vec<String> = vec!["Mini-batch size".to_string()];
            for &k in &settings.speedup_sample_sizes {
                header.push(format!("speedup k={k}"));
            }
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = Table::new(
                format!(
                    "Fig. 8 — PARABACUS speedup vs mini-batch size ({}, scale {}, {} threads)",
                    dataset.name(),
                    settings.speedup_scale,
                    settings.max_threads
                ),
                &header_refs,
            );
            for &batch in &settings.batch_sizes {
                let mut row = vec![batch.to_string()];
                for &k in &settings.speedup_sample_sizes {
                    let seq = sequential_seconds(&mut cache, dataset, &stream, k);
                    let par = parabacus_seconds(
                        &stream,
                        k,
                        batch,
                        settings.max_threads,
                        settings.pipeline_depth,
                    );
                    row.push(format!("{:.2}", seq / par.max(1e-9)));
                }
                table.add_row(row);
            }
            table
        })
        .collect()
}

/// Fig. 9 — speedup while varying the number of threads (M = 10K).
///
/// Next to the paper's alternating schedule the table reports the pipelined
/// engine (depth from [`Settings::pipeline_depth`]) for every thread count,
/// so the gain from overlapping phase 1 with phase 2 is visible in the same
/// sweep that shows the Amdahl saturation it attacks.
#[must_use]
pub fn fig9_speedup_vs_threads(settings: &Settings) -> Vec<Table> {
    let batch_size = *settings.batch_sizes.last().unwrap_or(&10_000);
    let depth = settings.pipeline_depth.max(2);
    let mut cache = HashMap::new();
    Dataset::all()
        .into_iter()
        .map(|dataset| {
            // One stream per dataset, shared by every cell of the sweep.
            let stream = speedup_stream(dataset, settings.default_alpha, settings.speedup_scale);
            let mut header: Vec<String> = vec!["Threads".to_string()];
            for &k in &settings.speedup_sample_sizes {
                header.push(format!("alternating k={k}"));
                header.push(format!("pipelined k={k}"));
            }
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = Table::new(
                format!(
                    "Fig. 9 — PARABACUS speedup vs threads ({}, scale {}, M = {batch_size}, \
                     pipeline depth {depth})",
                    dataset.name(),
                    settings.speedup_scale
                ),
                &header_refs,
            );
            for &threads in &settings.thread_sweep() {
                let mut row = vec![threads.to_string()];
                for &k in &settings.speedup_sample_sizes {
                    let seq = sequential_seconds(&mut cache, dataset, &stream, k);
                    let alternating = parabacus_seconds(&stream, k, batch_size, threads, 1);
                    let pipelined = parabacus_seconds(&stream, k, batch_size, threads, depth);
                    row.push(format!("{:.2}", seq / alternating.max(1e-9)));
                    row.push(format!("{:.2}", seq / pipelined.max(1e-9)));
                }
                table.add_row(row);
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_produces_one_table_per_dataset() {
        let settings = Settings {
            speedup_sample_sizes: vec![300],
            batch_sizes: vec![200],
            max_threads: 2,
            speedup_scale: 1,
            ..Settings::default()
        };
        let tables = fig8_speedup_vs_batch_size(&settings);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].len(), 1);
    }
}
