//! Table II — dataset statistics.

use crate::datasets::dataset_statistics;
use abacus_metrics::Table;
use abacus_stream::Dataset;

/// Computes the Table II analog: per dataset, |E|, |L|, |R|, exact butterfly
/// count and butterfly density (B/|E|⁴), next to the original dataset's
/// figures for reference.
#[must_use]
pub fn table2_dataset_statistics() -> Table {
    let mut table = Table::new(
        "Table II — Dataset statistics (synthetic analogs vs. paper originals)",
        &[
            "Graph",
            "|E|",
            "|L|",
            "|R|",
            "B",
            "Butterfly Density",
            "paper |E|",
            "paper B",
            "paper density",
        ],
    );
    for dataset in Dataset::all() {
        let stats = dataset_statistics(dataset);
        let spec = dataset.spec();
        table.push_row([
            dataset.name().to_string(),
            stats.edges.to_string(),
            stats.left_vertices.to_string(),
            stats.right_vertices.to_string(),
            stats.butterflies.to_string(),
            format!("{:.2e}", stats.butterfly_density),
            spec.paper_edges.to_string(),
            format!("{:.2e}", spec.paper_butterflies),
            format!("{:.2e}", spec.paper_density()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_dataset() {
        let table = table2_dataset_statistics();
        assert_eq!(table.len(), 4);
        let md = table.to_markdown();
        assert!(md.contains("Movielens-like"));
        assert!(md.contains("Orkut-like"));
    }
}
