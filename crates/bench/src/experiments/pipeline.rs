//! Pipeline experiment — alternating vs. pipelined PARABACUS.
//!
//! The paper's schedule (pipeline depth 1) strictly alternates the
//! sequential sample-version creation with the parallel counting phase, so
//! each batch pays `t_seq + t_par` wall clock.  The pipelined engine
//! (depth ≥ 2) overlaps batch *i+1*'s sequential phase with batch *i*'s
//! counting, pushing the per-batch cost towards `max(t_seq, t_par)`.  The
//! gain is largest where the alternating schedule hurts most: *small*
//! mini-batches, where the fixed dispatch/collect hand-off and the serial
//! fraction dominate, which is exactly the regime this experiment sweeps.
//!
//! Rows are mini-batch sizes, and for every swept thread count the table
//! reports alternating and pipelined throughput (edges/s) plus the relative
//! improvement.

use crate::datasets::speedup_stream;
use crate::runners::run;
use crate::settings::Settings;
use abacus_core::engine::EstimatorSpec;
use abacus_metrics::Table;
use abacus_stream::{Dataset, StreamElement};

/// Mini-batch sizes swept by the pipeline experiment: the small-batch regime
/// the pipeline targets, plus one large batch as the saturation reference.
pub const PIPELINE_BATCH_SIZES: [usize; 5] = [64, 128, 256, 512, 2_048];

fn throughput(
    stream: &[StreamElement],
    k: usize,
    batch_size: usize,
    threads: usize,
    pipeline_depth: usize,
) -> f64 {
    run(
        EstimatorSpec::parabacus(k)
            .with_batch_size(batch_size)
            .with_threads(threads)
            .with_pipeline_depth(pipeline_depth),
        stream,
    )
    .throughput
    .per_second()
}

/// The thread counts the experiment sweeps: a subset of the Fig. 9 sweep
/// capped to the machine, always including the maximum.
fn thread_counts(settings: &Settings) -> Vec<usize> {
    let mut counts: Vec<usize> = [2usize, 4, 8]
        .into_iter()
        .filter(|&t| t <= settings.max_threads)
        .collect();
    if settings.max_threads > 1 && !counts.contains(&settings.max_threads) {
        counts.push(settings.max_threads);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Alternating vs. pipelined PARABACUS throughput across mini-batch sizes
/// and thread counts (one table per dataset).
#[must_use]
pub fn pipeline_vs_alternating(settings: &Settings) -> Vec<Table> {
    let depth = settings.pipeline_depth.max(2);
    let k = settings
        .speedup_sample_sizes
        .first()
        .copied()
        .unwrap_or(7_500);
    [Dataset::MovielensLike, Dataset::OrkutLike]
        .into_iter()
        .map(|dataset| {
            // One stream per dataset, shared by every (batch, thread, mode)
            // cell of the sweep.
            let stream = speedup_stream(dataset, settings.default_alpha, settings.speedup_scale);
            let threads = thread_counts(settings);
            let mut header: Vec<String> = vec!["Mini-batch size".to_string()];
            for &t in &threads {
                header.push(format!("alt p={t} (edges/s)"));
                header.push(format!("pipe p={t} (edges/s)"));
                header.push(format!("gain p={t}"));
            }
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = Table::new(
                format!(
                    "Pipeline — alternating vs pipelined PARABACUS ({}, scale {}, k = {k}, \
                     depth {depth})",
                    dataset.name(),
                    settings.speedup_scale
                ),
                &header_refs,
            );
            for &batch in &PIPELINE_BATCH_SIZES {
                let mut row = vec![batch.to_string()];
                for &t in &threads {
                    let alternating = throughput(&stream, k, batch, t, 1);
                    let pipelined = throughput(&stream, k, batch, t, depth);
                    row.push(format!("{alternating:.0}"));
                    row.push(format!("{pipelined:.0}"));
                    row.push(format!(
                        "{:+.1}%",
                        (pipelined / alternating.max(1e-9) - 1.0) * 100.0
                    ));
                }
                table.add_row(row);
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_table_per_dataset_with_all_batch_rows() {
        let settings = Settings {
            speedup_sample_sizes: vec![300],
            max_threads: 2,
            speedup_scale: 1,
            ..Settings::default()
        };
        let tables = pipeline_vs_alternating(&settings);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), PIPELINE_BATCH_SIZES.len());
    }

    #[test]
    fn thread_counts_respect_the_machine() {
        let settings = Settings {
            max_threads: 6,
            ..Settings::default()
        };
        assert_eq!(thread_counts(&settings), vec![2, 4, 6]);
        let settings = Settings {
            max_threads: 16,
            ..Settings::default()
        };
        assert_eq!(thread_counts(&settings), vec![2, 4, 8, 16]);
    }
}
