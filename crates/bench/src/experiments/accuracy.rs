//! Fig. 3 and Fig. 5 — relative error vs. sample size.
//!
//! Fig. 3 uses fully dynamic streams (α = 20%): ABACUS handles the deletions,
//! FLEET and CAS drop them and therefore drift away from the true count.
//! Fig. 5 repeats the comparison on insert-only streams (α = 0%), where all
//! three are expected to be comparable.

use crate::datasets::prepared_stream;
use crate::runners::run;
use crate::settings::Settings;
use abacus_core::engine::{EstimatorKind, EstimatorSpec};
use abacus_metrics::{Summary, Table};
use abacus_stream::Dataset;

/// Mean relative error (%) of one algorithm over `trials` independent runs.
fn mean_error(
    kind: EstimatorKind,
    budget: usize,
    trials: u64,
    stream: &[abacus_stream::StreamElement],
    ground_truth: f64,
) -> Summary {
    (0..trials)
        .map(|trial| {
            run(
                EstimatorSpec::new(kind, budget).with_seed(1_000 + trial),
                stream,
            )
            .relative_error_percent(ground_truth)
        })
        .collect()
}

fn accuracy_table(title: &str, alpha: f64, settings: &Settings) -> Table {
    let mut table = Table::new(
        title,
        &[
            "Dataset",
            "k (edges)",
            "ABACUS err %",
            "FLEET err %",
            "CAS err %",
            "ABACUS vs FLEET",
            "ABACUS vs CAS",
        ],
    );
    for dataset in Dataset::all() {
        let prepared = prepared_stream(dataset, alpha);
        for &k in &settings.sample_sizes {
            let abacus = mean_error(
                EstimatorKind::Abacus,
                k,
                settings.trials,
                &prepared.stream,
                prepared.ground_truth,
            );
            let fleet = mean_error(
                EstimatorKind::Fleet,
                k,
                settings.trials,
                &prepared.stream,
                prepared.ground_truth,
            );
            let cas = mean_error(
                EstimatorKind::Cas,
                k,
                settings.trials,
                &prepared.stream,
                prepared.ground_truth,
            );
            let improvement = |other: &Summary| {
                if abacus.mean() > 0.0 {
                    format!("{:.1}x", other.mean() / abacus.mean())
                } else {
                    "inf".to_string()
                }
            };
            table.push_row([
                dataset.name().to_string(),
                k.to_string(),
                format!("{:.2}", abacus.mean()),
                format!("{:.2}", fleet.mean()),
                format!("{:.2}", cas.mean()),
                improvement(&fleet),
                improvement(&cas),
            ]);
        }
    }
    table
}

/// Fig. 3 — relative error with 20% deletions, varying the sample size.
#[must_use]
pub fn fig3_accuracy_with_deletions(settings: &Settings) -> Table {
    accuracy_table(
        "Fig. 3 — Relative error (%) with 20% deletions, varying sample size",
        settings.default_alpha,
        settings,
    )
}

/// Fig. 5 — relative error on insert-only streams (α = 0%).
#[must_use]
pub fn fig5_accuracy_insert_only(settings: &Settings) -> Table {
    accuracy_table(
        "Fig. 5 — Relative error (%) on insert-only streams (alpha = 0%)",
        0.0,
        settings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_a_row_per_dataset_and_sample_size() {
        let settings = Settings {
            trials: 1,
            sample_sizes: vec![400],
            ..Settings::default()
        };
        let table = fig3_accuracy_with_deletions(&settings);
        assert_eq!(table.len(), 4);
        assert!(table.to_markdown().contains("ABACUS err %"));
    }
}
