//! Butterfly clustering coefficients.
//!
//! The bipartite clustering coefficient quantifies how strongly a bipartite
//! graph closes its 3-paths into butterflies, exactly as the triangle
//! clustering coefficient does for wedges in unipartite graphs.  The paper's
//! introduction lists it among the primary consumers of butterfly counts
//! (cohesiveness measurement, recommendation, community detection).
//!
//! Definitions (Aksoy, Kolda, Pinar — *J. Complex Networks* 2017):
//!
//! * a **caterpillar** is a path of three edges (a wedge extended by one
//!   edge); every butterfly contains exactly four caterpillars,
//! * the **global butterfly clustering coefficient** is
//!   `4·B / #caterpillars`,
//! * the **per-vertex coefficient** of `v` relates the butterflies containing
//!   `v` to the caterpillars whose middle edge touches `v`.

use crate::bipartite::BipartiteGraph;
use crate::edge::Edge;
use crate::exact::{count_butterflies, count_butterflies_per_side_vertex};
use crate::fxhash::FxHashMap;
use crate::vertex::{Side, VertexRef};

/// Number of caterpillars (3-edge paths) in the graph.
///
/// A caterpillar is determined by its middle edge `{u, v}` plus one extra
/// neighbor on each side, giving `Σ_{(u,v) ∈ E} (d_u − 1)(d_v − 1)`.
#[must_use]
pub fn count_caterpillars(graph: &BipartiteGraph) -> u128 {
    graph
        .edges()
        .map(|edge| {
            let du = graph.degree(edge.left_ref()) as u128;
            let dv = graph.degree(edge.right_ref()) as u128;
            du.saturating_sub(1) * dv.saturating_sub(1)
        })
        .sum()
}

/// Caterpillars whose middle edge is incident to the given vertex.
#[must_use]
pub fn count_caterpillars_at(graph: &BipartiteGraph, v: VertexRef) -> u128 {
    let Some(neighbors) = graph.neighbors(v) else {
        return 0;
    };
    let dv = neighbors.len() as u128;
    neighbors
        .iter()
        .map(|n| {
            let dn = graph.degree(VertexRef::new(v.side.opposite(), n)) as u128;
            dn.saturating_sub(1) * dv.saturating_sub(1)
        })
        .sum()
}

/// The global butterfly clustering coefficient `4·B / #caterpillars`
/// (0 when the graph has no caterpillars).
#[must_use]
pub fn butterfly_clustering_coefficient(graph: &BipartiteGraph) -> f64 {
    let caterpillars = count_caterpillars(graph);
    if caterpillars == 0 {
        return 0.0;
    }
    let butterflies = count_butterflies(graph);
    4.0 * butterflies as f64 / caterpillars as f64
}

/// Per-vertex butterfly clustering coefficients for one partition:
/// `4·B(v) / #caterpillars whose middle edge touches v` (vertices with no
/// caterpillars are reported as 0).
#[must_use]
pub fn per_vertex_clustering_coefficient(
    graph: &BipartiteGraph,
    side: Side,
) -> FxHashMap<u32, f64> {
    let butterflies = count_butterflies_per_side_vertex(graph, side);
    let mut out = FxHashMap::default();
    for v in graph.vertices(side) {
        let caterpillars = count_caterpillars_at(graph, VertexRef::new(side, v));
        let coefficient = if caterpillars == 0 {
            0.0
        } else {
            4.0 * butterflies.get(&v).copied().unwrap_or(0) as f64 / caterpillars as f64
        };
        out.insert(v, coefficient);
    }
    out
}

/// Delta-maintained global clustering-coefficient state.
///
/// Tracks the exact butterfly count `B` and caterpillar count `C` as signed
/// 128-bit integers so that [`coefficient`](Self::coefficient) can reproduce
/// [`butterfly_clustering_coefficient`] bit for bit without ever touching the
/// whole graph again:
///
/// * `ΔB` per mutation is the number of butterflies the mutated edge
///   completes — exactly what the streaming estimators already enumerate,
/// * `ΔC` for inserting `{u, v}` into a graph with degrees measured *without*
///   the edge is `d_u·d_v + Σ_{r ∈ N(u)} (d_r − 1) + Σ_{l ∈ N(v)} (d_l − 1)`:
///   the new middle edge owns `d_u·d_v` caterpillars, and every existing edge
///   incident to `u` or `v` gains one choice of outer neighbor.  Deletion is
///   the symmetric negative against the post-delete graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusteringState {
    butterflies: i128,
    caterpillars: i128,
}

impl ClusteringState {
    /// State of an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offline recomputation from scratch: the ground truth the incremental
    /// path must bit-match.
    #[must_use]
    pub fn recompute(graph: &BipartiteGraph) -> Self {
        ClusteringState {
            butterflies: count_butterflies(graph) as i128,
            caterpillars: count_caterpillars(graph) as i128,
        }
    }

    /// Applies the insertion of `edge` into `graph`, where `graph` does *not*
    /// yet contain `edge` and `created` is the number of butterflies the edge
    /// completes against that pre-insert graph.
    pub fn apply_insert(&mut self, graph: &BipartiteGraph, edge: Edge, created: u64) {
        self.butterflies += i128::from(created);
        self.caterpillars += caterpillar_delta(graph, edge);
    }

    /// Applies the deletion of `edge` from `graph`, where `graph` has already
    /// removed `edge` and `destroyed` is the number of butterflies the edge
    /// completed against that post-delete graph.
    pub fn apply_delete(&mut self, graph: &BipartiteGraph, edge: Edge, destroyed: u64) {
        self.butterflies -= i128::from(destroyed);
        self.caterpillars -= caterpillar_delta(graph, edge);
    }

    /// Current exact butterfly count.
    #[must_use]
    pub fn butterflies(&self) -> i128 {
        self.butterflies
    }

    /// Current exact caterpillar (3-edge path) count.
    #[must_use]
    pub fn caterpillars(&self) -> i128 {
        self.caterpillars
    }

    /// The global butterfly clustering coefficient `4·B / C` (0 when the
    /// graph has no caterpillars), bit-identical to
    /// [`butterfly_clustering_coefficient`] on the same graph.
    #[must_use]
    pub fn coefficient(&self) -> f64 {
        if self.caterpillars == 0 {
            return 0.0;
        }
        4.0 * self.butterflies as f64 / self.caterpillars as f64
    }
}

/// Caterpillars gained when `edge` joins `graph` (equivalently, lost when it
/// leaves), where `graph` excludes `edge`.
fn caterpillar_delta(graph: &BipartiteGraph, edge: Edge) -> i128 {
    let u = edge.left_ref();
    let v = edge.right_ref();
    let mut delta = graph.degree(u) as i128 * graph.degree(v) as i128;
    if let Some(neighbors) = graph.neighbors(u) {
        for r in neighbors {
            delta += graph.degree(VertexRef::right(r)) as i128 - 1;
        }
    }
    if let Some(neighbors) = graph.neighbors(v) {
        for l in neighbors {
            delta += graph.degree(VertexRef::left(l)) as i128 - 1;
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn graph(edges: &[(u32, u32)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(edges.iter().map(|&(l, r)| Edge::new(l, r)))
    }

    #[test]
    fn complete_biclique_has_coefficient_one() {
        // In K_{a,b} every caterpillar closes into a butterfly.
        for (a, b) in [(2u32, 2u32), (3, 3), (4, 2)] {
            let mut edges = Vec::new();
            for l in 0..a {
                for r in 100..(100 + b) {
                    edges.push((l, r));
                }
            }
            let g = graph(&edges);
            let coefficient = butterfly_clustering_coefficient(&g);
            assert!(
                (coefficient - 1.0).abs() < 1e-12,
                "K_{{{a},{b}}}: {coefficient}"
            );
        }
    }

    #[test]
    fn path_graph_has_coefficient_zero() {
        // A 3-edge path is itself exactly one caterpillar and holds no butterflies.
        let g = graph(&[(0, 10), (1, 10), (1, 11)]);
        assert_eq!(count_caterpillars(&g), 1);
        assert_eq!(butterfly_clustering_coefficient(&g), 0.0);
        // A 4-edge path contains two caterpillars (middle edges (1,10) and (1,11)).
        let g = graph(&[(0, 10), (1, 10), (1, 11), (2, 11)]);
        assert_eq!(count_caterpillars(&g), 2);
        assert_eq!(butterfly_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn caterpillar_count_matches_manual_enumeration() {
        // Butterfly plus a pendant edge.
        let g = graph(&[(0, 10), (0, 11), (1, 10), (1, 11), (2, 11)]);
        // Middle edge (0,10): (2-1)*(2-1) = 1; (0,11): (2-1)*(3-1) = 2;
        // (1,10): 1; (1,11): 2; (2,11): (1-1)*(3-1) = 0.  Total 6.
        assert_eq!(count_caterpillars(&g), 6);
        // One butterfly => coefficient = 4/6.
        let coefficient = butterfly_clustering_coefficient(&g);
        assert!((coefficient - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_vertex_coefficients_are_in_unit_interval() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (3, 12),
            (3, 10),
        ]);
        for side in [Side::Left, Side::Right] {
            let coefficients = per_vertex_clustering_coefficient(&g, side);
            assert!(!coefficients.is_empty());
            for (&v, &c) in &coefficients {
                assert!((0.0..=1.0 + 1e-12).contains(&c), "{side:?}{v}: {c}");
            }
        }
        // Vertex L0 participates in 1 butterfly; caterpillars at L0:
        // edges (0,10): (d10-1)(d0-1)=(3-1)(2-1)=2, (0,11): (3-1)(2-1)=2 -> 4.
        let left = per_vertex_clustering_coefficient(&g, Side::Left);
        assert!((left[&0] - 1.0).abs() < 1e-12, "got {}", left[&0]);
    }

    #[test]
    fn empty_and_degenerate_graphs() {
        let empty = BipartiteGraph::new();
        assert_eq!(count_caterpillars(&empty), 0);
        assert_eq!(butterfly_clustering_coefficient(&empty), 0.0);
        assert_eq!(count_caterpillars_at(&empty, VertexRef::left(0)), 0);
        assert!(per_vertex_clustering_coefficient(&empty, Side::Left).is_empty());
    }

    #[test]
    fn clustering_state_tracks_inserts_and_deletes_bit_exactly() {
        let script: &[(u32, u32)] = &[
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (0, 12),
            (3, 12),
            (3, 10),
        ];
        let mut g = BipartiteGraph::new();
        let mut state = ClusteringState::new();
        for &(l, r) in script {
            let e = Edge::new(l, r);
            let created = crate::peredge::count_butterflies_with_edge(&g, e).butterflies;
            state.apply_insert(&g, e, created); // pre-insert graph
            g.insert_edge(e);
            assert_eq!(state, ClusteringState::recompute(&g), "after +({l},{r})");
            assert!(
                state.coefficient().to_bits() == butterfly_clustering_coefficient(&g).to_bits(),
                "coefficient after +({l},{r})"
            );
        }
        for &(l, r) in &[(1, 11), (0, 10), (2, 12), (0, 11)] {
            let e = Edge::new(l, r);
            g.delete_edge(e);
            let destroyed = crate::peredge::count_butterflies_with_edge(&g, e).butterflies;
            state.apply_delete(&g, e, destroyed); // post-delete graph
            assert_eq!(state, ClusteringState::recompute(&g), "after -({l},{r})");
            assert!(
                state.coefficient().to_bits() == butterfly_clustering_coefficient(&g).to_bits(),
                "coefficient after -({l},{r})"
            );
        }
    }

    #[test]
    fn clustering_state_empty_graph_coefficient_is_zero() {
        let state = ClusteringState::new();
        assert_eq!(state.coefficient(), 0.0);
        assert_eq!(state.butterflies(), 0);
        assert_eq!(state.caterpillars(), 0);
        assert_eq!(state, ClusteringState::recompute(&BipartiteGraph::new()));
    }
}
