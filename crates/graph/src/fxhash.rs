//! A fast, non-cryptographic hasher for small integer keys.
//!
//! Butterfly counting is dominated by hash-set membership probes on `u32`
//! vertex identifiers and `u64` packed edge keys.  The standard library's
//! SipHash is needlessly slow for that workload, so we re-implement the
//! well-known *FxHash* algorithm used by the Rust compiler (multiplicative
//! hashing with a word-level rotate-xor mix).  The algorithm is identical to
//! the one shipped by the `rustc-hash` crate, which is not part of the
//! approved dependency set for this project.
//!
//! HashDoS resistance is irrelevant here: keys are internally generated vertex
//! identifiers, never attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed derived from the golden ratio, as used by Fx hashing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Streaming hasher implementing the Fx multiplicative mix.
///
/// The hasher favours throughput over distribution quality; it is intended for
/// hash tables keyed by vertex ids or packed edge keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Convenience constructor for an empty [`FxHashMap`] with a capacity hint.
pub fn fx_hashmap_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Convenience constructor for an empty [`FxHashSet`] with a capacity hint.
pub fn fx_hashset_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_for_same_input() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((7u32, 9u32)), hash_one((7u32, 9u32)));
    }

    #[test]
    fn different_inputs_usually_differ() {
        // Not a strong guarantee, but these specific values must not collide
        // for the hasher to be remotely useful.
        assert_ne!(hash_one(1u32), hash_one(2u32));
        assert_ne!(hash_one(0u64), hash_one(1u64));
        assert_ne!(hash_one(u32::MAX), hash_one(u32::MAX - 1));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map.get(&i), Some(&(i * 2)));
        }

        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            set.insert(i << 32 | i);
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains(&((500u64 << 32) | 500)));
        assert!(!set.contains(&((500u64 << 32) | 501)));
    }

    #[test]
    fn capacity_constructors() {
        let map: FxHashMap<u32, u32> = fx_hashmap_with_capacity(64);
        assert!(map.capacity() >= 64);
        let set: FxHashSet<u32> = fx_hashset_with_capacity(64);
        assert!(set.capacity() >= 64);
    }

    #[test]
    fn byte_stream_hashing_covers_remainder() {
        // Exercise the `write` path with lengths that are not multiples of 8.
        let a = hash_one("abc");
        let b = hash_one("abd");
        assert_ne!(a, b);
        let c = hash_one("abcdefghij");
        let d = hash_one("abcdefghik");
        assert_ne!(c, d);
    }

    #[test]
    fn reasonable_distribution_over_buckets() {
        // Hash 10_000 consecutive integers into 64 buckets and check that no
        // bucket is pathologically over-full (a sanity check against a broken
        // mixing function, not a statistical test).
        let mut buckets = [0u32; 64];
        for i in 0..10_000u32 {
            let h = hash_one(i);
            buckets[(h % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < 400, "over-full bucket: {max}");
        assert!(min > 50, "under-full bucket: {min}");
    }
}
