//! Exact butterfly counting on a concrete bipartite graph.
//!
//! These algorithms require the whole graph in memory and are therefore
//! unsuitable for the streaming setting (the very motivation of ABACUS), but
//! they provide the ground truth against which the streaming estimators are
//! evaluated, and they produce the butterfly counts reported in Table II.
//!
//! Two strategies are implemented:
//!
//! * [`count_butterflies_naive`] — O(|L|²·|R|²) enumeration of vertex
//!   quadruples, used only for cross-checking on tiny graphs,
//! * [`count_butterflies`] — wedge aggregation in O(Σ_{v ∈ S} d_v²) where `S`
//!   is the partition with the smaller sum of squared degrees (the strategy of
//!   Sanei-Mehri et al. KDD'18 with the side-selection optimisation of Wang et
//!   al. VLDB'19): for every "start" vertex `u` count, per reachable same-side
//!   vertex `w`, the number of wedges `u–·–w`; every pair of wedges between the
//!   same endpoints forms one butterfly, so `Σ C(wedges, 2)` butterflies.

use crate::bipartite::BipartiteGraph;
use crate::edge::Edge;
use crate::fxhash::FxHashMap;
use crate::peredge::count_butterflies_with_edge;
use crate::vertex::{Side, VertexRef};

/// `n choose 2` in u128.
#[inline]
#[must_use]
pub fn choose2(n: u64) -> u128 {
    (u128::from(n) * u128::from(n.saturating_sub(1))) / 2
}

/// Exact global butterfly count via wedge aggregation.
///
/// Runs in `O(Σ d_v²)` over the partition with the smaller sum of squared
/// degrees and `O(max_v d_v · d_max)` extra memory for the per-start-vertex
/// wedge counters.
#[must_use]
pub fn count_butterflies(graph: &BipartiteGraph) -> u128 {
    // Start from the side whose squared-degree sum is smaller: the wedges we
    // enumerate have their *middle* vertex on the opposite side, and the work
    // is Σ over middle vertices of d².
    let start_side =
        if graph.sum_squared_degrees(Side::Right) <= graph.sum_squared_degrees(Side::Left) {
            Side::Left
        } else {
            Side::Right
        };
    count_butterflies_from_side(graph, start_side)
}

/// Exact global butterfly count, enumerating wedges whose endpoints lie on
/// `start_side` (exposed for the side-selection ablation and for tests).
#[must_use]
pub fn count_butterflies_from_side(graph: &BipartiteGraph, start_side: Side) -> u128 {
    let mut total: u128 = 0;
    let mut wedge_counts: FxHashMap<u32, u64> = FxHashMap::default();

    for u in graph.vertices(start_side) {
        wedge_counts.clear();
        let u_ref = VertexRef::new(start_side, u);
        let Some(u_nbrs) = graph.neighbors(u_ref) else {
            continue;
        };
        for mid in u_nbrs {
            let mid_ref = VertexRef::new(start_side.opposite(), mid);
            let Some(mid_nbrs) = graph.neighbors(mid_ref) else {
                continue;
            };
            for w in mid_nbrs {
                // Count each unordered endpoint pair once: require w > u.
                if w > u {
                    *wedge_counts.entry(w).or_insert(0) += 1;
                }
            }
        }
        // lint:allow(hash-iter): integer sum over per-endpoint wedge tallies is order-insensitive
        for &wedges in wedge_counts.values() {
            total += choose2(wedges);
        }
    }
    total
}

/// Exact butterfly count by brute-force enumeration of vertex quadruples.
/// Exponentially slower than [`count_butterflies`]; only for tiny test graphs.
#[must_use]
pub fn count_butterflies_naive(graph: &BipartiteGraph) -> u128 {
    let lefts: Vec<u32> = graph.vertices(Side::Left).collect();
    let rights: Vec<u32> = graph.vertices(Side::Right).collect();
    let mut total = 0u128;
    for (i, &u) in lefts.iter().enumerate() {
        for &w in &lefts[i + 1..] {
            for (j, &v) in rights.iter().enumerate() {
                for &x in &rights[j + 1..] {
                    if graph.has_edge(Edge::new(u, v))
                        && graph.has_edge(Edge::new(u, x))
                        && graph.has_edge(Edge::new(w, v))
                        && graph.has_edge(Edge::new(w, x))
                    {
                        total += 1;
                    }
                }
            }
        }
    }
    total
}

/// Exact number of butterflies that contain a specific *existing* edge.
///
/// For an edge not present in the graph this returns the number of butterflies
/// the edge *would* complete if inserted — which is exactly the per-edge
/// kernel used by the streaming algorithms.
#[must_use]
pub fn count_butterflies_containing_edge(graph: &BipartiteGraph, edge: Edge) -> u64 {
    count_butterflies_with_edge(graph, edge).butterflies
}

/// Per-vertex and global exact butterfly counts.
#[derive(Debug, Clone, Default)]
pub struct ExactCounts {
    /// Global butterfly count.
    pub total: u128,
    /// Butterflies containing each left vertex.
    pub per_left_vertex: FxHashMap<u32, u64>,
    /// Butterflies containing each right vertex.
    pub per_right_vertex: FxHashMap<u32, u64>,
}

impl ExactCounts {
    /// Computes global and per-vertex butterfly counts in one pass per side.
    #[must_use]
    pub fn compute(graph: &BipartiteGraph) -> Self {
        let per_left_vertex = count_butterflies_per_side_vertex(graph, Side::Left);
        let per_right_vertex = count_butterflies_per_side_vertex(graph, Side::Right);
        // Each butterfly contains exactly two left vertices.
        // lint:allow(hash-iter): u128 sum is order-insensitive
        let total_twice: u128 = per_left_vertex.values().map(|&c| u128::from(c)).sum();
        ExactCounts {
            total: total_twice / 2,
            per_left_vertex,
            per_right_vertex,
        }
    }
}

/// Butterflies containing each left vertex (convenience wrapper).
#[must_use]
pub fn count_butterflies_per_left_vertex(graph: &BipartiteGraph) -> FxHashMap<u32, u64> {
    count_butterflies_per_side_vertex(graph, Side::Left)
}

/// Butterflies containing each vertex of the given side.
///
/// For a pair of same-side vertices `(u, w)` with `c` common neighbors, each
/// of the `C(c, 2)` butterflies on that pair contains both `u` and `w`.
#[must_use]
pub fn count_butterflies_per_side_vertex(
    graph: &BipartiteGraph,
    side: Side,
) -> FxHashMap<u32, u64> {
    let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
    let mut wedge_counts: FxHashMap<u32, u64> = FxHashMap::default();

    for u in graph.vertices(side) {
        wedge_counts.clear();
        let u_ref = VertexRef::new(side, u);
        let Some(u_nbrs) = graph.neighbors(u_ref) else {
            continue;
        };
        for mid in u_nbrs {
            let mid_ref = VertexRef::new(side.opposite(), mid);
            let Some(mid_nbrs) = graph.neighbors(mid_ref) else {
                continue;
            };
            for w in mid_nbrs {
                if w > u {
                    *wedge_counts.entry(w).or_insert(0) += 1;
                }
            }
        }
        // lint:allow(hash-iter): per-vertex integer accumulation commutes; the resulting map is keyed, not ordered
        for (&w, &wedges) in &wedge_counts {
            let b = choose2(wedges) as u64;
            if b > 0 {
                *counts.entry(u).or_insert(0) += b;
                *counts.entry(w).or_insert(0) += b;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn graph(edges: &[(u32, u32)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(edges.iter().map(|&(l, r)| Edge::new(l, r)))
    }

    #[test]
    fn choose2_small_values() {
        assert_eq!(choose2(0), 0);
        assert_eq!(choose2(1), 0);
        assert_eq!(choose2(2), 1);
        assert_eq!(choose2(5), 10);
        assert_eq!(
            choose2(u64::MAX),
            (u128::from(u64::MAX) * u128::from(u64::MAX - 1)) / 2
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert_eq!(count_butterflies(&BipartiteGraph::new()), 0);
        assert_eq!(count_butterflies(&graph(&[(0, 10)])), 0);
        assert_eq!(count_butterflies(&graph(&[(0, 10), (0, 11), (1, 10)])), 0);
    }

    #[test]
    fn single_butterfly() {
        let g = graph(&[(0, 10), (0, 11), (1, 10), (1, 11)]);
        assert_eq!(count_butterflies(&g), 1);
        assert_eq!(count_butterflies_naive(&g), 1);
    }

    #[test]
    fn complete_biclique_formula() {
        // K_{a,b} has C(a,2) * C(b,2) butterflies.
        for (a, b) in [(2u32, 2u32), (3, 3), (4, 2), (5, 4)] {
            let mut edges = Vec::new();
            for l in 0..a {
                for r in 100..(100 + b) {
                    edges.push((l, r));
                }
            }
            let g = graph(&edges);
            let expected = choose2(u64::from(a)) * choose2(u64::from(b));
            assert_eq!(count_butterflies(&g), expected, "K_{{{a},{b}}}");
            assert_eq!(count_butterflies_naive(&g), expected);
        }
    }

    #[test]
    fn both_start_sides_agree() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (0, 12),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (3, 12),
            (3, 10),
            (4, 13),
        ]);
        let left = count_butterflies_from_side(&g, Side::Left);
        let right = count_butterflies_from_side(&g, Side::Right);
        assert_eq!(left, right);
        assert_eq!(left, count_butterflies_naive(&g));
    }

    #[test]
    fn per_edge_counts_sum_to_four_times_total() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (0, 12),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (3, 12),
            (3, 10),
        ]);
        let total = count_butterflies(&g);
        let per_edge_sum: u64 = g
            .edges()
            .map(|e| count_butterflies_containing_edge(&g, e))
            .sum();
        // Each butterfly has exactly 4 edges.
        assert_eq!(u128::from(per_edge_sum), 4 * total);
    }

    #[test]
    fn per_vertex_counts_are_consistent() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
            (2, 10),
            (2, 11),
            (0, 12),
            (1, 12),
        ]);
        let counts = ExactCounts::compute(&g);
        assert_eq!(counts.total, count_butterflies_naive(&g));
        let left_sum: u128 = counts
            .per_left_vertex
            .values()
            .map(|&c| u128::from(c))
            .sum();
        let right_sum: u128 = counts
            .per_right_vertex
            .values()
            .map(|&c| u128::from(c))
            .sum();
        // Every butterfly contains two left and two right vertices.
        assert_eq!(left_sum, 2 * counts.total);
        assert_eq!(right_sum, 2 * counts.total);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The wedge-aggregation algorithm must agree with brute force on
        /// random small graphs.
        #[test]
        fn wedge_aggregation_matches_naive(
            edges in proptest::collection::btree_set((0u32..8, 0u32..8), 0..40)
        ) {
            let g = graph(&edges.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(count_butterflies(&g), count_butterflies_naive(&g));
        }

        /// Butterflies containing an edge, summed over all edges, equals four
        /// times the global count on random graphs.
        #[test]
        fn per_edge_sum_identity(
            edges in proptest::collection::btree_set((0u32..8, 0u32..8), 0..40)
        ) {
            let g = graph(&edges.iter().copied().collect::<Vec<_>>());
            let total = count_butterflies(&g);
            let per_edge_sum: u64 = g
                .edges()
                .map(|e| count_butterflies_containing_edge(&g, e))
                .sum();
            prop_assert_eq!(u128::from(per_edge_sum), 4 * total);
        }
    }
}
