//! Vertex identifiers and bipartition sides.
//!
//! A bipartite graph `G = (L ∪ R, E)` has two disjoint vertex partitions.  The
//! two partitions use independent identifier spaces: left vertex `3` and right
//! vertex `3` are different vertices.  [`VertexRef`] tags a raw `u32`
//! identifier with its [`Side`] so that code operating on "a vertex of the
//! graph" cannot accidentally mix the two spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::bipartite::BipartiteGraph;
use crate::edge::Edge;
use crate::fxhash::FxHashMap;

/// The bipartition a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The left partition `L` (e.g. users, groups, domains).
    Left,
    /// The right partition `R` (e.g. movies, members, trackers).
    Right,
}

impl Side {
    /// The other partition.
    #[inline]
    #[must_use]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// `true` for [`Side::Left`].
    #[inline]
    #[must_use]
    pub fn is_left(self) -> bool {
        matches!(self, Side::Left)
    }

    /// `true` for [`Side::Right`].
    #[inline]
    #[must_use]
    pub fn is_right(self) -> bool {
        matches!(self, Side::Right)
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// A side-tagged vertex identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexRef {
    /// Which partition the vertex belongs to.
    pub side: Side,
    /// The vertex identifier inside its partition.
    pub id: u32,
}

impl VertexRef {
    /// A vertex in the left partition.
    #[inline]
    #[must_use]
    pub fn left(id: u32) -> Self {
        VertexRef {
            side: Side::Left,
            id,
        }
    }

    /// A vertex in the right partition.
    #[inline]
    #[must_use]
    pub fn right(id: u32) -> Self {
        VertexRef {
            side: Side::Right,
            id,
        }
    }

    /// A vertex on the given side.
    #[inline]
    #[must_use]
    pub fn new(side: Side, id: u32) -> Self {
        VertexRef { side, id }
    }
}

impl fmt::Display for VertexRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.side, self.id)
    }
}

/// Delta-maintained butterfly counts for every vertex of both partitions.
///
/// The incremental counterpart of
/// [`count_butterflies_per_side_vertex`](crate::exact::count_butterflies_per_side_vertex):
/// each butterfly `{u, v, x, w}` created (destroyed) by an edge mutation adds
/// (removes) one count on each of its four vertices.  The `(x, w)` partner
/// pairs come from
/// [`for_each_butterfly_with_edge`](crate::peredge::for_each_butterfly_with_edge)
/// run against the pre-insert / post-delete graph.
///
/// Invariant: the per-side maps equal the offline recomputation bit for bit.
/// Like the offline maps, only vertices with a *positive* count are present —
/// a count decremented to zero leaves the map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexButterflyCounts {
    left: FxHashMap<u32, u64>,
    right: FxHashMap<u32, u64>,
}

impl VertexButterflyCounts {
    /// Empty counts (matching an empty graph).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offline recomputation from scratch: the ground truth the incremental
    /// path must bit-match.
    #[must_use]
    pub fn recompute(graph: &BipartiteGraph) -> Self {
        VertexButterflyCounts {
            left: crate::exact::count_butterflies_per_side_vertex(graph, Side::Left),
            right: crate::exact::count_butterflies_per_side_vertex(graph, Side::Right),
        }
    }

    /// Applies the insertion of `edge = {u, v}` with enumerated butterfly
    /// partners `butterflies` (the `(x, w)` pairs): `u` and `v` each gain one
    /// butterfly per pair, and each partner gains one.
    pub fn apply_insert(&mut self, edge: Edge, butterflies: &[(u32, u32)]) {
        let created = butterflies.len() as u64;
        if created == 0 {
            return;
        }
        *self.left.entry(edge.left).or_insert(0) += created;
        *self.right.entry(edge.right).or_insert(0) += created;
        for &(x, w) in butterflies {
            *self.left.entry(x).or_insert(0) += 1;
            *self.right.entry(w).or_insert(0) += 1;
        }
    }

    /// Applies the deletion of `edge` with partners enumerated against the
    /// post-delete graph; counts that reach zero are removed to preserve the
    /// positive-counts-only invariant.
    pub fn apply_delete(&mut self, edge: Edge, butterflies: &[(u32, u32)]) {
        let destroyed = butterflies.len() as u64;
        if destroyed == 0 {
            return;
        }
        Self::decrement(&mut self.left, edge.left, destroyed);
        Self::decrement(&mut self.right, edge.right, destroyed);
        for &(x, w) in butterflies {
            Self::decrement(&mut self.left, x, 1);
            Self::decrement(&mut self.right, w, 1);
        }
    }

    fn decrement(map: &mut FxHashMap<u32, u64>, id: u32, by: u64) {
        if let Some(count) = map.get_mut(&id) {
            *count = count.saturating_sub(by);
            if *count == 0 {
                map.remove(&id);
            }
        }
    }

    /// Butterfly count of one vertex (0 if untracked).
    #[must_use]
    pub fn count(&self, v: VertexRef) -> u64 {
        self.side(v.side).get(&v.id).copied().unwrap_or(0)
    }

    /// The id → count map of one partition (positive counts only).
    #[must_use]
    pub fn side(&self, side: Side) -> &FxHashMap<u32, u64> {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// Global butterfly count implied by the per-vertex counts (each butterfly
    /// contains exactly two left vertices).
    #[must_use]
    pub fn butterflies(&self) -> u128 {
        self.left.values().map(|&c| u128::from(c)).sum::<u128>() / 2
    }

    /// The vertex of `side` contained in the most butterflies, ties broken by
    /// the larger id so the answer is deterministic across hash-map iteration
    /// orders.
    #[must_use]
    pub fn max_vertex(&self, side: Side) -> Option<(u32, u64)> {
        self.side(side)
            .iter()
            .map(|(&id, &c)| (id, c))
            .max_by_key(|&(id, c)| (c, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
        assert_eq!(Side::Left.opposite().opposite(), Side::Left);
    }

    #[test]
    fn side_predicates() {
        assert!(Side::Left.is_left());
        assert!(!Side::Left.is_right());
        assert!(Side::Right.is_right());
        assert!(!Side::Right.is_left());
    }

    #[test]
    fn vertex_constructors_tag_the_side() {
        assert_eq!(VertexRef::left(7), VertexRef::new(Side::Left, 7));
        assert_eq!(VertexRef::right(7), VertexRef::new(Side::Right, 7));
        assert_ne!(VertexRef::left(7), VertexRef::right(7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VertexRef::left(3).to_string(), "L3");
        assert_eq!(VertexRef::right(11).to_string(), "R11");
        assert_eq!(Side::Left.to_string(), "L");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![VertexRef::right(1), VertexRef::left(2), VertexRef::left(1)];
        v.sort();
        assert_eq!(
            v,
            vec![VertexRef::left(1), VertexRef::left(2), VertexRef::right(1)]
        );
    }

    fn enumerate(g: &BipartiteGraph, edge: Edge) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        crate::peredge::for_each_butterfly_with_edge(g, edge, &mut |x, w| pairs.push((x, w)));
        pairs
    }

    #[test]
    fn vertex_counts_track_inserts_and_deletes_bit_exactly() {
        let script: &[(u32, u32)] = &[
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (0, 12),
            (3, 12),
            (3, 10),
        ];
        let mut g = BipartiteGraph::new();
        let mut counts = VertexButterflyCounts::new();
        for &(l, r) in script {
            let e = Edge::new(l, r);
            let pairs = enumerate(&g, e); // pre-insert view
            counts.apply_insert(e, &pairs);
            g.insert_edge(e);
            assert_eq!(
                counts,
                VertexButterflyCounts::recompute(&g),
                "after +({l},{r})"
            );
        }
        for &(l, r) in &[(1, 11), (0, 10), (2, 12), (3, 12)] {
            let e = Edge::new(l, r);
            g.delete_edge(e);
            let pairs = enumerate(&g, e); // post-delete view
            counts.apply_delete(e, &pairs);
            assert_eq!(
                counts,
                VertexButterflyCounts::recompute(&g),
                "after -({l},{r})"
            );
        }
    }

    #[test]
    fn vertex_count_accessors() {
        let g = BipartiteGraph::from_edges(
            [(0, 10), (0, 11), (1, 10), (1, 11), (2, 10), (2, 11)]
                .into_iter()
                .map(|(l, r)| Edge::new(l, r)),
        );
        let counts = VertexButterflyCounts::recompute(&g);
        // K_{3,2}: C(3,2)*C(2,2) = 3 butterflies; each left vertex is in 2 of
        // them, each right vertex in all 3.
        assert_eq!(counts.butterflies(), 3);
        assert_eq!(counts.count(VertexRef::left(0)), 2);
        assert_eq!(counts.count(VertexRef::right(10)), 3);
        assert_eq!(counts.count(VertexRef::left(42)), 0);
        assert_eq!(counts.max_vertex(Side::Left), Some((2, 2)));
        assert_eq!(counts.max_vertex(Side::Right), Some((11, 3)));
        assert_eq!(VertexButterflyCounts::new().max_vertex(Side::Left), None);
    }
}
