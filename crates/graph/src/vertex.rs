//! Vertex identifiers and bipartition sides.
//!
//! A bipartite graph `G = (L ∪ R, E)` has two disjoint vertex partitions.  The
//! two partitions use independent identifier spaces: left vertex `3` and right
//! vertex `3` are different vertices.  [`VertexRef`] tags a raw `u32`
//! identifier with its [`Side`] so that code operating on "a vertex of the
//! graph" cannot accidentally mix the two spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The bipartition a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The left partition `L` (e.g. users, groups, domains).
    Left,
    /// The right partition `R` (e.g. movies, members, trackers).
    Right,
}

impl Side {
    /// The other partition.
    #[inline]
    #[must_use]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// `true` for [`Side::Left`].
    #[inline]
    #[must_use]
    pub fn is_left(self) -> bool {
        matches!(self, Side::Left)
    }

    /// `true` for [`Side::Right`].
    #[inline]
    #[must_use]
    pub fn is_right(self) -> bool {
        matches!(self, Side::Right)
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// A side-tagged vertex identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexRef {
    /// Which partition the vertex belongs to.
    pub side: Side,
    /// The vertex identifier inside its partition.
    pub id: u32,
}

impl VertexRef {
    /// A vertex in the left partition.
    #[inline]
    #[must_use]
    pub fn left(id: u32) -> Self {
        VertexRef {
            side: Side::Left,
            id,
        }
    }

    /// A vertex in the right partition.
    #[inline]
    #[must_use]
    pub fn right(id: u32) -> Self {
        VertexRef {
            side: Side::Right,
            id,
        }
    }

    /// A vertex on the given side.
    #[inline]
    #[must_use]
    pub fn new(side: Side, id: u32) -> Self {
        VertexRef { side, id }
    }
}

impl fmt::Display for VertexRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.side, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
        assert_eq!(Side::Left.opposite().opposite(), Side::Left);
    }

    #[test]
    fn side_predicates() {
        assert!(Side::Left.is_left());
        assert!(!Side::Left.is_right());
        assert!(Side::Right.is_right());
        assert!(!Side::Right.is_left());
    }

    #[test]
    fn vertex_constructors_tag_the_side() {
        assert_eq!(VertexRef::left(7), VertexRef::new(Side::Left, 7));
        assert_eq!(VertexRef::right(7), VertexRef::new(Side::Right, 7));
        assert_ne!(VertexRef::left(7), VertexRef::right(7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VertexRef::left(3).to_string(), "L3");
        assert_eq!(VertexRef::right(11).to_string(), "R11");
        assert_eq!(Side::Left.to_string(), "L");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![VertexRef::right(1), VertexRef::left(2), VertexRef::left(1)];
        v.sort();
        assert_eq!(
            v,
            vec![VertexRef::left(1), VertexRef::left(2), VertexRef::right(1)]
        );
    }
}
