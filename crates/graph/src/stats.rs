//! Dataset statistics as reported in Table II of the paper.
//!
//! The paper summarises each dataset by its edge count, the sizes of the two
//! partitions, the exact butterfly count `B`, and the *butterfly density*.
//! Reverse-engineering the reported densities shows the paper's definition is
//! `B / |E|⁴` (e.g. MovieLens: 1.1·10¹² / (10⁷)⁴ = 1.1·10⁻¹⁶), which is the
//! definition used here.

use crate::bipartite::BipartiteGraph;
use crate::exact::count_butterflies;
use crate::vertex::Side;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a bipartite graph (one Table II row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStatistics {
    /// Number of edges `|E|`.
    pub edges: u64,
    /// Number of left vertices `|L|`.
    pub left_vertices: u64,
    /// Number of right vertices `|R|`.
    pub right_vertices: u64,
    /// Exact butterfly count `B`.
    pub butterflies: u128,
    /// Butterfly density `B / |E|⁴`.
    pub butterfly_density: f64,
    /// Maximum degree over both partitions.
    pub max_degree: u64,
}

impl GraphStatistics {
    /// Computes the statistics of a graph (includes an exact butterfly count,
    /// so this is as expensive as [`count_butterflies`]).
    #[must_use]
    pub fn compute(graph: &BipartiteGraph) -> Self {
        let butterflies = count_butterflies(graph);
        Self::from_parts(
            graph.num_edges() as u64,
            graph.num_left_vertices() as u64,
            graph.num_right_vertices() as u64,
            butterflies,
            graph
                .max_degree(Side::Left)
                .max(graph.max_degree(Side::Right)) as u64,
        )
    }

    /// Builds statistics from already-known quantities.
    #[must_use]
    pub fn from_parts(
        edges: u64,
        left_vertices: u64,
        right_vertices: u64,
        butterflies: u128,
        max_degree: u64,
    ) -> Self {
        GraphStatistics {
            edges,
            left_vertices,
            right_vertices,
            butterflies,
            butterfly_density: butterfly_density(butterflies, edges),
            max_degree,
        }
    }
}

/// Butterfly density as defined in Table II: `B / |E|⁴`.
#[must_use]
pub fn butterfly_density(butterflies: u128, edges: u64) -> f64 {
    if edges == 0 {
        return 0.0;
    }
    let e = edges as f64;
    (butterflies as f64) / (e * e * e * e)
}

impl fmt::Display for GraphStatistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|E|={} |L|={} |R|={} B={} density={:.3e} dmax={}",
            self.edges,
            self.left_vertices,
            self.right_vertices,
            self.butterflies,
            self.butterfly_density,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    #[test]
    fn density_matches_paper_definition() {
        // MovieLens row of Table II: 1.1T butterflies over 10M edges.
        let d = butterfly_density(1_100_000_000_000u128, 10_000_000);
        assert!((d - 1.1e-16).abs() < 1e-18, "got {d}");
        // LiveJournal row: 3.3T butterflies over 112M edges ≈ 2.1e-20.
        let d = butterfly_density(3_300_000_000_000u128, 112_000_000);
        assert!((d / 2.1e-20 - 1.0).abs() < 0.05, "got {d}");
        assert_eq!(butterfly_density(10, 0), 0.0);
    }

    #[test]
    fn compute_on_small_graph() {
        let g = BipartiteGraph::from_edges([
            Edge::new(0, 10),
            Edge::new(0, 11),
            Edge::new(1, 10),
            Edge::new(1, 11),
            Edge::new(2, 12),
        ]);
        let stats = GraphStatistics::compute(&g);
        assert_eq!(stats.edges, 5);
        assert_eq!(stats.left_vertices, 3);
        assert_eq!(stats.right_vertices, 3);
        assert_eq!(stats.butterflies, 1);
        assert_eq!(stats.max_degree, 2);
        assert!((stats.butterfly_density - 1.0 / 625.0).abs() < 1e-12);
        let rendered = stats.to_string();
        assert!(rendered.contains("|E|=5"));
    }
}
