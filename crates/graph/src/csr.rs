//! Frozen CSR counting snapshots.
//!
//! The per-edge counting phase dominates ABACUS/PARABACUS runtime
//! (Algorithm 1 line 9), and every intersection against a hash-backed sample
//! pays one pointer-chasing probe per candidate.  [`CsrSnapshot`] is an
//! immutable-by-convention, cache-resident mirror of the bounded edge sample:
//! per side, one dense offsets table plus one contiguous arena of **sorted**
//! neighbor ids, with vertex ids interned into dense slots.  All
//! intersections of a counting phase then run over flat sorted slices using
//! the adaptive kernels of [`crate::intersect`] — two-pointer merge for
//! comparable sizes, galloping search for heavily skewed ones — instead of
//! hashing once per probe.
//!
//! # Incremental maintenance
//!
//! Rebuilding the snapshot from scratch after every sample mutation would
//! cost O(sample) per stream element.  Instead the snapshot absorbs each
//! mutation as a *row patch*: the first change to a vertex copies its frozen
//! arena row into a side table of sorted `Vec<u32>` rows (its interned slot
//! is repointed at the patch), and later changes edit the patch in place.
//! Reads see patched rows transparently; they are still sorted and
//! contiguous, merely outside the arena.  When churn exceeds a threshold
//! (more than ~¼ of a side's rows patched), the side is compacted: one O(rows +
//! entries) pass folds every patch back into a fresh arena, so the O(sample)
//! rebuild cost is only paid once per ~25% of rows churned, not per
//! mutation.
//!
//! # Exactness
//!
//! [`CsrSnapshot`] implements [`NeighborhoodView`] with the *probe model*
//! `comparisons` accounting of the paper (the size of the smaller operand
//! after exclusions), regardless of which sorted kernel actually ran.  A
//! snapshot that mirrors a sample therefore reports bit-identical butterfly
//! counts *and* bit-identical comparison counters — the per-thread workload
//! numbers of Fig. 10 and ABACUS/PARABACUS work parity do not depend on
//! whether counting ran against the hash-backed sample or the snapshot.

use crate::edge::Edge;
use crate::fxhash::FxHashMap;
use crate::intersect::{
    sorted_contains, sorted_intersection_excluding, IntersectionResult, KernelTuning,
};
use crate::peredge::NeighborhoodView;
use crate::vertex::{Side, VertexRef};

/// Compact a side once more than `rows / COMPACT_FRACTION + COMPACT_BASE`
/// of its rows carry patches.
const COMPACT_FRACTION: usize = 4;
/// Flat allowance of patched rows before fractional churn kicks in, so tiny
/// samples do not compact on every mutation.
const COMPACT_BASE: usize = 16;

/// A vertex's current row: frozen in the arena, or patched out-of-line.
///
/// The patched vector lives *inline in the index value*, so every read —
/// degree, row slice, membership — is exactly one hash lookup whether or not
/// the row has been patched since the last compaction.  This matters because
/// patches concentrate on hot hubs, which are also the rows the counting
/// kernels touch most.
#[derive(Debug, Clone)]
enum Row {
    /// Arena offset + length of the frozen row.
    Frozen { start: u32, len: u32 },
    /// Sorted row that changed since the last compaction (authoritative).
    Patched(Vec<u32>),
}

/// One side (left or right) of the snapshot: an interned row index plus the
/// sorted neighbor arena.
#[derive(Debug, Clone, Default)]
struct CsrSide {
    index: FxHashMap<u32, Row>,
    /// Concatenated sorted neighbor rows.
    arena: Vec<u32>,
    /// Number of `Row::Patched` entries in `index`.
    patched: usize,
}

impl CsrSide {
    fn new() -> Self {
        CsrSide::default()
    }

    /// The current (possibly patched) sorted neighbor row of `v`; empty when
    /// the vertex is absent.
    #[inline]
    fn row(&self, v: u32) -> &[u32] {
        match self.index.get(&v) {
            Some(&Row::Frozen { start, len }) => {
                &self.arena[start as usize..(start + len) as usize]
            }
            Some(Row::Patched(row)) => row,
            None => &[],
        }
    }

    /// Degree of `v` without touching the arena.
    #[inline]
    fn degree(&self, v: u32) -> usize {
        match self.index.get(&v) {
            Some(&Row::Frozen { len, .. }) => len as usize,
            Some(Row::Patched(row)) => row.len(),
            None => 0,
        }
    }

    /// The patch row of `v`, cloning its frozen arena row on first touch.
    fn patch_row(&mut self, v: u32) -> &mut Vec<u32> {
        let arena = &self.arena;
        let patched = &mut self.patched;
        let entry = self.index.entry(v).or_insert_with(|| {
            *patched += 1;
            Row::Patched(Vec::with_capacity(4))
        });
        if let Row::Frozen { start, len } = *entry {
            // Pre-size past the frozen length: a row being patched is
            // usually about to grow, and the headroom absorbs the next few
            // insertions without reallocating.
            let mut copy = Vec::with_capacity(len as usize + 4);
            copy.extend_from_slice(&arena[start as usize..(start + len) as usize]);
            *entry = Row::Patched(copy);
            *patched += 1;
        }
        match entry {
            Row::Patched(row) => row,
            // lint:allow(panic-policy): the branch above just replaced every Frozen row with Patched; surviving Frozen is a bug worth crashing on
            Row::Frozen { .. } => unreachable!("frozen row survived patching"),
        }
    }

    /// Applies one adjacency change to `v`'s row.
    fn apply(&mut self, v: u32, neighbor: u32, added: bool) {
        let row = self.patch_row(v);
        match row.binary_search(&neighbor) {
            Ok(pos) => {
                debug_assert!(!added, "snapshot add of an already present pair");
                if !added {
                    row.remove(pos);
                }
            }
            Err(pos) => {
                debug_assert!(added, "snapshot removal of an absent pair");
                if added {
                    row.insert(pos, neighbor);
                }
            }
        }
    }

    /// Whether accumulated churn justifies folding the patches back into a
    /// fresh arena.
    fn should_compact(&self) -> bool {
        self.patched > COMPACT_BASE + self.index.len() / COMPACT_FRACTION
    }

    /// Rebuilds the arena from the union of frozen and patched rows,
    /// dropping empty rows; O(rows log rows + entries).
    fn compact(&mut self) {
        let mut ids: Vec<u32> = self
            .index
            .iter()
            .filter(|(_, row)| match row {
                Row::Frozen { .. } => true,
                Row::Patched(patch) => !patch.is_empty(),
            })
            .map(|(&id, _)| id)
            .collect();
        // Deterministic arena layout (tests compare snapshots structurally).
        ids.sort_unstable();

        let mut arena = Vec::with_capacity(self.arena.len());
        let mut index = crate::fxhash::fx_hashmap_with_capacity(ids.len());
        for &id in &ids {
            let row = self.row(id);
            // lint:allow(panic-policy): the budget bounds the sample well under u32::MAX entries; overflow means the budget invariant broke
            let start = u32::try_from(arena.len()).expect("snapshot arena exceeds u32 range");
            // lint:allow(panic-policy): a row is at most the budget-bounded sample size, far under u32::MAX
            let len = u32::try_from(row.len()).expect("snapshot row exceeds u32 range");
            arena.extend_from_slice(row);
            index.insert(id, Row::Frozen { start, len });
        }
        self.arena = arena;
        self.index = index;
        self.patched = 0;
    }

    /// Entries resident on this side: the frozen arena plus every patch row
    /// (superseded arena rows stay allocated until the next compaction, so
    /// they count too).
    fn resident_entries(&self) -> usize {
        self.arena.len()
            + self
                .index
                .values()
                .map(|row| match row {
                    Row::Frozen { .. } => 0,
                    Row::Patched(patch) => patch.len(),
                })
                .sum::<usize>()
    }

    /// Approximate heap footprint in bytes.
    fn heap_bytes(&self) -> usize {
        let patch_rows: usize = self
            .index
            .values()
            .map(|row| match row {
                Row::Frozen { .. } => 0,
                Row::Patched(patch) => patch.capacity() * size_of::<u32>(),
            })
            .sum();
        self.arena.capacity() * size_of::<u32>()
            + self.index.capacity() * (size_of::<Row>() + 5)
            + patch_rows
    }
}

/// A frozen CSR mirror of a bounded bipartite edge sample.
///
/// Build one with [`CsrSnapshot::new`] and keep it in lock-step with the
/// sample by calling [`apply`](Self::apply) for every edge
/// insertion/removal, or rebuild wholesale with
/// [`from_edges`](Self::from_edges).  Counting code treats it as a
/// [`NeighborhoodView`].
///
/// ```
/// use abacus_graph::csr::CsrSnapshot;
/// use abacus_graph::intersect::KernelTuning;
/// use abacus_graph::{count_butterflies_with_edge, Edge};
///
/// let snapshot = CsrSnapshot::from_edges(
///     [(0, 11), (1, 10), (1, 11)].map(|(l, r)| Edge::new(l, r)),
///     KernelTuning::default(),
/// );
/// let count = count_butterflies_with_edge(&snapshot, Edge::new(0, 10));
/// assert_eq!(count.butterflies, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CsrSnapshot {
    left: CsrSide,
    right: CsrSide,
    edges: usize,
    tuning: KernelTuning,
}

impl Default for CsrSnapshot {
    fn default() -> Self {
        Self::new(KernelTuning::default())
    }
}

impl CsrSnapshot {
    /// Creates an empty snapshot with the given kernel cutovers.
    #[must_use]
    pub fn new(tuning: KernelTuning) -> Self {
        CsrSnapshot {
            left: CsrSide::new(),
            right: CsrSide::new(),
            edges: 0,
            tuning,
        }
    }

    /// Builds a compacted snapshot holding exactly `edges`.
    #[must_use]
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>, tuning: KernelTuning) -> Self {
        let mut snapshot = CsrSnapshot::new(tuning);
        for edge in edges {
            snapshot.apply(edge, true);
        }
        snapshot.compact();
        snapshot
    }

    /// Number of edges mirrored by the snapshot.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The kernel cutovers used by this snapshot's intersections.
    #[must_use]
    pub fn tuning(&self) -> KernelTuning {
        self.tuning
    }

    /// Mirrors one sample mutation (`added == true` for an insertion), and
    /// compacts the churned side(s) once the patch threshold is crossed.
    pub fn apply(&mut self, edge: Edge, added: bool) {
        self.left.apply(edge.left, edge.right, added);
        self.right.apply(edge.right, edge.left, added);
        if added {
            self.edges += 1;
        } else {
            debug_assert!(self.edges > 0, "snapshot removal from an empty snapshot");
            self.edges = self.edges.saturating_sub(1);
        }
        if self.left.should_compact() {
            self.left.compact();
        }
        if self.right.should_compact() {
            self.right.compact();
        }
    }

    /// Folds all outstanding patches back into fresh arenas immediately.
    pub fn compact(&mut self) {
        self.left.compact();
        self.right.compact();
    }

    /// Number of rows currently served from patches (0 right after a
    /// compaction).
    #[must_use]
    pub fn patched_rows(&self) -> usize {
        self.left.patched + self.right.patched
    }

    /// The current sorted neighbor row of a vertex (empty when absent).
    #[inline]
    #[must_use]
    pub fn row(&self, v: VertexRef) -> &[u32] {
        match v.side {
            Side::Left => self.left.row(v.id),
            Side::Right => self.right.row(v.id),
        }
    }

    /// Total `u32` entries resident across both sides' arenas and patch
    /// tables — the quantity charged (in edge equivalents) by the estimators'
    /// `memory_edges` accounting.
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.left.resident_entries() + self.right.resident_entries()
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.left.heap_bytes() + self.right.heap_bytes()
    }
}

impl NeighborhoodView for CsrSnapshot {
    #[inline]
    fn view_degree(&self, v: VertexRef) -> usize {
        match v.side {
            Side::Left => self.left.degree(v.id),
            Side::Right => self.right.degree(v.id),
        }
    }

    #[inline]
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        sorted_contains(self.row(v), neighbor)
    }

    #[inline]
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        for &n in self.row(v) {
            f(n);
        }
    }

    #[inline]
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> IntersectionResult {
        // One fused pass: the kernel picks the smaller operand exactly like
        // the hash kernels and reports probe-model comparisons, so the
        // numbers are bit-identical to the hash path.
        sorted_intersection_excluding(self.row(a), self.row(b), exclude, self.tuning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteGraph;
    use crate::count_butterflies_with_edge;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn edge(l: u32, r: u32) -> Edge {
        Edge::new(l, r)
    }

    #[test]
    fn rows_are_sorted_and_mirror_insertions_and_removals() {
        let mut snap = CsrSnapshot::new(KernelTuning::default());
        for &(l, r) in &[(1, 20), (1, 10), (1, 30), (2, 10)] {
            snap.apply(edge(l, r), true);
        }
        assert_eq!(snap.num_edges(), 4);
        assert_eq!(snap.row(VertexRef::left(1)), &[10, 20, 30]);
        assert_eq!(snap.row(VertexRef::right(10)), &[1, 2]);
        snap.apply(edge(1, 20), false);
        assert_eq!(snap.row(VertexRef::left(1)), &[10, 30]);
        assert_eq!(snap.num_edges(), 3);
        assert!(snap.row(VertexRef::left(99)).is_empty());
    }

    #[test]
    fn compaction_preserves_rows_and_clears_patches() {
        let mut snap = CsrSnapshot::new(KernelTuning::default());
        for l in 0..10u32 {
            for r in 0..5u32 {
                snap.apply(edge(l, 100 + r), true);
            }
        }
        snap.apply(edge(3, 100), false);
        assert!(snap.patched_rows() > 0);
        let rows_before: Vec<Vec<u32>> = (0..10)
            .map(|l| snap.row(VertexRef::left(l)).to_vec())
            .collect();
        snap.compact();
        assert_eq!(snap.patched_rows(), 0);
        for (l, want) in rows_before.iter().enumerate() {
            assert_eq!(snap.row(VertexRef::left(l as u32)), &want[..]);
        }
        // Rows emptied by removals disappear from the arena entirely.
        for r in 0..5u32 {
            snap.apply(edge(7, 100 + r), false);
        }
        snap.compact();
        assert!(snap.row(VertexRef::left(7)).is_empty());
        assert_eq!(snap.num_edges(), 10 * 5 - 1 - 5);
    }

    #[test]
    fn churn_triggers_automatic_compaction() {
        let mut snap = CsrSnapshot::new(KernelTuning::default());
        // Enough distinct left vertices that the patch threshold
        // (COMPACT_BASE + rows/4) is crossed while inserting.
        for l in 0..200u32 {
            snap.apply(edge(l, 0), true);
        }
        assert!(
            snap.patched_rows() < 200,
            "patches were never folded back: {}",
            snap.patched_rows()
        );
        // Every row is still correct after the automatic compactions.
        for l in 0..200u32 {
            assert_eq!(snap.row(VertexRef::left(l)), &[0]);
        }
        assert_eq!(snap.row(VertexRef::right(0)).len(), 200);
    }

    #[test]
    fn intersection_matches_probe_model_comparisons() {
        let snap = CsrSnapshot::from_edges(
            (0..40u32)
                .map(|l| edge(l, 1))
                .chain((20..100u32).map(|l| edge(l, 2))),
            KernelTuning::default(),
        );
        let r1 = VertexRef::right(1);
        let r2 = VertexRef::right(2);
        let result = snap.view_intersection_excluding(r1, r2, 25);
        assert_eq!(result.count, 19); // overlap 20..40 minus the excluded 25
        assert_eq!(result.comparisons, 39); // |small| − 1 excluded member
        let result = snap.view_intersection_excluding(r1, r2, 1_000);
        assert_eq!(result.count, 20);
        assert_eq!(result.comparisons, 40);
        // Absent operand: zero work, zero count.
        let absent = snap.view_intersection_excluding(r1, VertexRef::right(9), 0);
        assert_eq!(absent, IntersectionResult::default());
    }

    #[test]
    fn butterfly_kernel_runs_against_the_snapshot() {
        let edges = [(0, 11), (1, 10), (1, 11)].map(|(l, r)| edge(l, r));
        let snap = CsrSnapshot::from_edges(edges, KernelTuning::default());
        let graph = BipartiteGraph::from_edges(edges);
        let via_snapshot = count_butterflies_with_edge(&snap, edge(0, 10));
        let via_graph = count_butterflies_with_edge(&graph, edge(0, 10));
        assert_eq!(via_snapshot.butterflies, via_graph.butterflies);
        assert_eq!(via_snapshot.butterflies, 1);
    }

    #[test]
    fn accounting_reports_resident_entries_and_bytes() {
        let snap =
            CsrSnapshot::from_edges((0..50u32).map(|l| edge(l, l % 5)), KernelTuning::default());
        // Each edge appears once per side.
        assert_eq!(snap.resident_entries(), 100);
        assert!(snap.heap_bytes() >= 100 * size_of::<u32>());
        assert_eq!(snap.tuning(), KernelTuning::default());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under random insert/remove streams (with interleaved forced
        /// compactions) the snapshot reports exactly the reference adjacency,
        /// degrees, membership, and intersections.
        #[test]
        fn mirrors_a_reference_graph(
            ops in proptest::collection::vec((any::<bool>(), 0u32..8, 0u32..8), 1..300),
            compact_every in 1usize..50,
        ) {
            let mut snap = CsrSnapshot::new(KernelTuning::default());
            let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
            for (step, (insert, l, r)) in ops.into_iter().enumerate() {
                if insert {
                    if reference.insert((l, r)) {
                        snap.apply(edge(l, r), true);
                    }
                } else if reference.remove(&(l, r)) {
                    snap.apply(edge(l, r), false);
                }
                if step % compact_every == 0 {
                    snap.compact();
                }
                prop_assert_eq!(snap.num_edges(), reference.len());
            }
            for l in 0..8u32 {
                let want: Vec<u32> = reference
                    .iter()
                    .filter(|&&(a, _)| a == l)
                    .map(|&(_, b)| b)
                    .collect();
                prop_assert_eq!(snap.row(VertexRef::left(l)), &want[..]);
                prop_assert_eq!(snap.view_degree(VertexRef::left(l)), want.len());
                for r in 0..8u32 {
                    prop_assert_eq!(
                        snap.view_contains(VertexRef::left(l), r),
                        reference.contains(&(l, r))
                    );
                }
            }
            for r in 0..8u32 {
                let want: Vec<u32> = reference
                    .iter()
                    .filter(|&&(_, b)| b == r)
                    .map(|&(a, _)| a)
                    .collect();
                prop_assert_eq!(snap.row(VertexRef::right(r)), &want[..]);
            }
        }
    }
}
