//! Set-intersection kernels.
//!
//! Finding the common neighbors of two vertices is the inner loop of butterfly
//! counting (Algorithm 1, line 9 of the paper).  The cost of intersecting two
//! neighbor sets is proportional to the size of the smaller set when the
//! larger one supports O(1) membership probes, which is why ABACUS picks the
//! "cheapest side" before intersecting.
//!
//! Two kernels are provided:
//!
//! * [`intersection_count`] / [`intersection_count_excluding`] — hash-probe
//!   intersection over [`AdjacencySet`]s (the production kernel),
//! * [`sorted_merge_intersection_count`] — classic two-pointer merge over
//!   sorted slices, kept as an ablation target for the micro-benchmarks.
//!
//! All kernels report the number of membership *probes* (`comparisons`) they
//! performed; PARABACUS aggregates these per worker thread to reproduce the
//! load-balance experiment (Fig. 10).

use crate::adjacency::AdjacencySet;

/// Result of an intersection: how many common elements and how many probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntersectionResult {
    /// Number of elements present in both sets (after exclusions).
    pub count: u64,
    /// Number of membership probes performed (= size of the smaller set).
    pub comparisons: u64,
}

impl IntersectionResult {
    /// Adds another result to this one.
    #[inline]
    pub fn accumulate(&mut self, other: IntersectionResult) {
        self.count += other.count;
        self.comparisons += other.comparisons;
    }
}

/// Counts `|a ∩ b|` by probing the larger set with elements of the smaller.
#[inline]
#[must_use]
pub fn intersection_count(a: &AdjacencySet, b: &AdjacencySet) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for x in small.iter() {
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Counts `|a ∩ b \ {exclude}|`.
///
/// The butterfly kernel uses this to drop the incoming edge's own endpoint
/// from the common-neighbor set (a vertex can never complete a butterfly with
/// itself).
#[inline]
#[must_use]
pub fn intersection_count_excluding(
    a: &AdjacencySet,
    b: &AdjacencySet,
    exclude: u32,
) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for x in small.iter() {
        if x == exclude {
            continue;
        }
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Collects `a ∩ b \ {exclude}` into `out` (cleared first).
///
/// Used where the identity of the fourth butterfly vertex matters (per-edge
/// butterfly *enumeration*, e.g. for the bitruss-style extension), as opposed
/// to plain counting.
pub fn intersect_into(a: &AdjacencySet, b: &AdjacencySet, exclude: u32, out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for x in small.iter() {
        if x != exclude && large.contains(x) {
            out.push(x);
        }
    }
}

/// Two-pointer intersection count over sorted slices (ablation kernel).
#[must_use]
pub fn sorted_merge_intersection_count(a: &[u32], b: &[u32]) -> IntersectionResult {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input b must be sorted");
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    let mut comparisons = 0u64;
    while i < a.len() && j < b.len() {
        comparisons += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    IntersectionResult { count, comparisons }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn set(items: &[u32]) -> AdjacencySet {
        items.iter().copied().collect()
    }

    #[test]
    fn count_basic() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        let r = intersection_count(&a, &b);
        assert_eq!(r.count, 2);
        assert_eq!(r.comparisons, 3); // probes with the smaller set (b)
    }

    #[test]
    fn count_with_disjoint_and_empty_sets() {
        let a = set(&[1, 2, 3]);
        let b = set(&[4, 5]);
        assert_eq!(intersection_count(&a, &b).count, 0);
        let empty = AdjacencySet::new();
        assert_eq!(intersection_count(&a, &empty).count, 0);
        assert_eq!(intersection_count(&empty, &empty).comparisons, 0);
    }

    #[test]
    fn excluding_removes_exactly_one_candidate() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[2, 3, 4]);
        assert_eq!(intersection_count_excluding(&a, &b, 3).count, 2);
        assert_eq!(intersection_count_excluding(&a, &b, 99).count, 3);
    }

    #[test]
    fn intersect_into_collects_members() {
        let a = set(&[1, 2, 3, 4, 7]);
        let b = set(&[2, 4, 7, 9]);
        let mut out = Vec::new();
        intersect_into(&a, &b, 4, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 7]);
    }

    #[test]
    fn sorted_merge_matches_hash_probe() {
        let a = set(&[1, 5, 9, 11, 20]);
        let b = set(&[5, 9, 10, 20, 30]);
        let merged = sorted_merge_intersection_count(&a.to_sorted_vec(), &b.to_sorted_vec());
        assert_eq!(merged.count, intersection_count(&a, &b).count);
    }

    #[test]
    fn symmetric_in_count() {
        let a = set(&(0..100).collect::<Vec<_>>());
        let b = set(&(50..200).collect::<Vec<_>>());
        assert_eq!(
            intersection_count(&a, &b).count,
            intersection_count(&b, &a).count
        );
        // Probes are bounded by the smaller set regardless of argument order.
        assert_eq!(intersection_count(&a, &b).comparisons, 100);
        assert_eq!(intersection_count(&b, &a).comparisons, 100);
    }

    proptest! {
        #[test]
        fn matches_btreeset_reference(
            xs in proptest::collection::btree_set(0u32..500, 0..200),
            ys in proptest::collection::btree_set(0u32..500, 0..200),
            exclude in 0u32..500,
        ) {
            let a: AdjacencySet = xs.iter().copied().collect();
            let b: AdjacencySet = ys.iter().copied().collect();
            let expected = xs.intersection(&ys).count() as u64;
            prop_assert_eq!(intersection_count(&a, &b).count, expected);

            let expected_excl = xs
                .intersection(&ys)
                .filter(|&&x| x != exclude)
                .count() as u64;
            prop_assert_eq!(intersection_count_excluding(&a, &b, exclude).count, expected_excl);

            let mut out = Vec::new();
            intersect_into(&a, &b, exclude, &mut out);
            let got: BTreeSet<u32> = out.into_iter().collect();
            let want: BTreeSet<u32> =
                xs.intersection(&ys).copied().filter(|&x| x != exclude).collect();
            prop_assert_eq!(got, want);

            let av = a.to_sorted_vec();
            let bv = b.to_sorted_vec();
            prop_assert_eq!(sorted_merge_intersection_count(&av, &bv).count, expected);
        }
    }
}
