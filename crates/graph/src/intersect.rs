//! Set-intersection kernels.
//!
//! Finding the common neighbors of two vertices is the inner loop of butterfly
//! counting (Algorithm 1, line 9 of the paper).  The cost of intersecting two
//! neighbor sets is proportional to the size of the smaller set when the
//! larger one supports O(1) membership probes, which is why ABACUS picks the
//! "cheapest side" before intersecting.
//!
//! Two kernel families are provided:
//!
//! * [`intersection_count`] / [`intersection_count_excluding`] — the
//!   production kernels over [`AdjacencySet`]s.  They probe the larger set
//!   with the elements of the smaller one, **except** when both operands are
//!   hash-backed hubs of comparable size: then they switch to a two-pointer
//!   sorted merge over the sets' memoised sorted copies
//!   ([`LargeSet::sorted`](crate::adjacency::LargeSet::sorted)), which walks
//!   memory sequentially instead of cache-missing once per probe,
//! * [`sorted_merge_intersection_count`] — the bare two-pointer merge over
//!   sorted slices, usable directly and kept as an ablation target for the
//!   micro-benchmarks,
//! * the **sorted-slice kernels** powering the frozen CSR counting snapshot
//!   ([`crate::csr::CsrSnapshot`]): [`sorted_merge_count`] for comparable
//!   sizes, [`sorted_gallop_count`] for heavily skewed sizes, and
//!   [`sorted_adaptive_count`] which dispatches between them by the
//!   [`KernelTuning`] cutovers.  (An arithmetic-advance "branchless" merge
//!   variant was benchmarked at 2.7× the classic merge's latency across all
//!   size ratios and retired; see `BENCH_intersect.json`.)
//!
//! The production kernels report `comparisons` under the *probe model* of the
//! paper — the number of membership probes the probe kernel performs, i.e.
//! the size of the smaller set after exclusions — regardless of which code
//! path actually ran.  This keeps the per-thread workload counters of the
//! load-balance experiment (Fig. 10) — and PARABACUS/ABACUS work parity —
//! independent of kernel selection.  Only [`sorted_merge_intersection_count`]
//! reports its literal pointer advances, since measuring those is the point
//! of the ablation.

use crate::adjacency::AdjacencySet;

/// Default for [`KernelTuning::merge_size_ratio`]: use the sorted-merge path
/// only when the larger hub is at most this many times the smaller one — a
/// merge always advances through both sets, so with heavily skewed sizes
/// probing the big set `|small|` times is cheaper.
pub const DEFAULT_MERGE_SIZE_RATIO: usize = 8;

/// Default for [`KernelTuning::gallop_size_ratio`]: over sorted slices,
/// switch from the two-pointer merge to galloping (exponential) search once
/// the larger side exceeds this multiple of the smaller one.
///
/// The nominal cost model (merge advances `|small| + |large|` cursors, gallop
/// pays ~`log₂(ratio) + 2` probes per small element) puts the break-even near
/// ratio 4, but the measured picture is different: on the committed
/// `BENCH_intersect.json` workloads the branchy merge runs at 527–586 ns/op
/// through ratio 64 while the gallop needs 946–969 ns/op at those same
/// ratios — per-element galloping mispredicts its doubling loop and forfeits
/// the merge's sequential prefetching.  The cutover therefore sits at 128:
/// galloping is reserved for the extreme-skew regime (a handful of elements
/// against a multi-thousand-entry hub slice) where its O(|small|·log) bound
/// actually wins.
pub const DEFAULT_GALLOP_SIZE_RATIO: usize = 128;

/// Default for [`KernelTuning::adj_spill_threshold`], mirroring
/// [`crate::adjacency::SMALL_THRESHOLD`].
///
/// The `micro` bench's `adjacency_spill` sweep (spill 8–64 × reserve 4/8
/// over an end-to-end 20k-element ABACUS run) is scale-sensitive: at a
/// 1.5k-edge budget the mean sampled degree stays small enough that spill 64
/// wins (~7.2 ms vs ~8.5 ms for 32), but at the fig9 gate scale (7.5k-edge
/// budget) the denser neighborhoods turn the inline vector's linear probes
/// into the dominant cost and 64 regresses the paired PARABACUS/ABACUS
/// overhead ratio on both reference streams (movielens 3.11 → 3.34,
/// trackers 2.90 → 3.38).  The default therefore stays at 32 — the knob is
/// there for small-budget deployments that want the larger inline tier.
pub const DEFAULT_ADJ_SPILL_THRESHOLD: usize = crate::adjacency::SMALL_THRESHOLD;

/// Default for [`KernelTuning::adj_first_reserve`], mirroring
/// [`crate::adjacency::SMALL_PRESIZE`]: reserving 8 slots on a vertex's
/// first neighbor skips the 4 → 8 realloc ladder that every new vertex in an
/// insert-heavy stream would otherwise walk.
pub const DEFAULT_ADJ_FIRST_RESERVE: usize = crate::adjacency::SMALL_PRESIZE;

/// Cutover ratios of the adaptive intersection kernels.
///
/// The defaults are justified by the `intersect` micro-benchmark
/// (`cargo bench -p abacus-bench --bench intersect`), which sweeps probe,
/// merge, and gallop kernels across operand-size ratios.  The values are
/// wired through `AbacusConfig` so ablations can move the cutovers without
/// recompiling.
///
/// Which kernel runs never changes reported numbers: counts are exact set
/// intersections on every path and the production kernels report probe-model
/// `comparisons` (see the module docs), so tuning only affects wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTuning {
    /// Hash-backed hub pairs switch from probing to the sorted merge when
    /// `|large| <= |small| * merge_size_ratio`.
    pub merge_size_ratio: usize,
    /// Sorted CSR slices switch from the merge to galloping search when
    /// `|large| > |small| * gallop_size_ratio`.
    pub gallop_size_ratio: usize,
    /// [`AdjacencySet`] keeps at most this many neighbors inline in its
    /// unsorted vector before spilling to the hash-backed representation.
    ///
    /// A layout-only knob: it is deliberately **not** part of any persisted
    /// config fingerprint (manifests and ABSNAP1 payloads), because it can
    /// never change an estimate, `comparisons`, or RNG consumption — only
    /// memory shape and wall time.
    pub adj_spill_threshold: usize,
    /// Capacity reserved by the first insertion into an empty inline
    /// adjacency vector.  Layout-only, unpersisted, like
    /// [`adj_spill_threshold`](KernelTuning::adj_spill_threshold).
    pub adj_first_reserve: usize,
}

impl Default for KernelTuning {
    fn default() -> Self {
        KernelTuning {
            merge_size_ratio: DEFAULT_MERGE_SIZE_RATIO,
            gallop_size_ratio: DEFAULT_GALLOP_SIZE_RATIO,
            adj_spill_threshold: DEFAULT_ADJ_SPILL_THRESHOLD,
            adj_first_reserve: DEFAULT_ADJ_FIRST_RESERVE,
        }
    }
}

/// Result of an intersection: how many common elements and how many probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntersectionResult {
    /// Number of elements present in both sets (after exclusions).
    pub count: u64,
    /// Number of membership probes performed (= size of the smaller set).
    pub comparisons: u64,
}

impl IntersectionResult {
    /// Adds another result to this one.
    #[inline]
    pub fn accumulate(&mut self, other: IntersectionResult) {
        self.count += other.count;
        self.comparisons += other.comparisons;
    }
}

/// Whether the hub-vs-hub sorted-merge path applies to this operand pair.
///
/// Which path runs can never change the reported numbers: counts are exact
/// set intersections either way, and `comparisons` follow the probe model in
/// both paths, so ABACUS/PARABACUS work parity is independent of this
/// decision.
#[inline]
fn merge_applies(small: &AdjacencySet, large: &AdjacencySet, tuning: KernelTuning) -> bool {
    // Both operands must actually be hash-backed: a `Large` set that shrank
    // can be outsized by a vector-backed `Small` one, which has no sorted
    // cache to merge over.
    small.as_large().is_some()
        && large.as_large().is_some()
        && large.len() <= small.len().saturating_mul(tuning.merge_size_ratio)
}

/// Two-pointer match count over the memoised sorted copies, skipping
/// `exclude` (pass a value outside the id space to skip nothing).
#[inline]
fn merge_count(small: &AdjacencySet, large: &AdjacencySet, exclude: Option<u32>) -> u64 {
    let (a, b) = (
        small
            .as_large()
            // lint:allow(panic-policy): merge_applies() gated both operands as Large; this is the hot Large/Large dispatch path and cannot fail
            .expect("merge path requires Large")
            .sorted(),
        large
            .as_large()
            // lint:allow(panic-policy): merge_applies() gated both operands as Large; this is the hot Large/Large dispatch path and cannot fail
            .expect("merge path requires Large")
            .sorted(),
    );
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if Some(a[i]) != exclude {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Counts `|a ∩ b|` by probing the larger set with elements of the smaller,
/// or by a sorted merge when both operands are comparably sized hubs.
#[inline]
#[must_use]
pub fn intersection_count(a: &AdjacencySet, b: &AdjacencySet) -> IntersectionResult {
    intersection_count_with(a, b, KernelTuning::default())
}

/// [`intersection_count`] with explicit cutover tuning.
#[inline]
#[must_use]
pub fn intersection_count_with(
    a: &AdjacencySet,
    b: &AdjacencySet,
    tuning: KernelTuning,
) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if merge_applies(small, large, tuning) {
        return IntersectionResult {
            count: merge_count(small, large, None),
            // Probe model: what the probe kernel would have performed.
            comparisons: small.len() as u64,
        };
    }
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for x in small {
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Counts `|a ∩ b \ {exclude}|`.
///
/// The butterfly kernel uses this to drop the incoming edge's own endpoint
/// from the common-neighbor set (a vertex can never complete a butterfly with
/// itself).
#[inline]
#[must_use]
pub fn intersection_count_excluding(
    a: &AdjacencySet,
    b: &AdjacencySet,
    exclude: u32,
) -> IntersectionResult {
    intersection_count_excluding_with(a, b, exclude, KernelTuning::default())
}

/// [`intersection_count_excluding`] with explicit cutover tuning.
#[inline]
#[must_use]
pub fn intersection_count_excluding_with(
    a: &AdjacencySet,
    b: &AdjacencySet,
    exclude: u32,
    tuning: KernelTuning,
) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if merge_applies(small, large, tuning) {
        return IntersectionResult {
            count: merge_count(small, large, Some(exclude)),
            // Probe model: the probe kernel skips `exclude` without probing.
            comparisons: small.len() as u64 - u64::from(small.contains(exclude)),
        };
    }
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for x in small {
        if x == exclude {
            continue;
        }
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Collects `a ∩ b \ {exclude}` into `out` (cleared first).
///
/// Used where the identity of the fourth butterfly vertex matters (per-edge
/// butterfly *enumeration*, e.g. for the bitruss-style extension), as opposed
/// to plain counting.
pub fn intersect_into(a: &AdjacencySet, b: &AdjacencySet, exclude: u32, out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for x in small {
        if x != exclude && large.contains(x) {
            out.push(x);
        }
    }
}

/// Two-pointer intersection count over sorted slices (ablation kernel).
#[must_use]
pub fn sorted_merge_intersection_count(a: &[u32], b: &[u32]) -> IntersectionResult {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input b must be sorted");
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    let mut comparisons = 0u64;
    while i < a.len() && j < b.len() {
        comparisons += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    IntersectionResult { count, comparisons }
}

/// First index `>= from` whose element is `>= target`, found by galloping:
/// double the step until the element is overshot, then binary-search the last
/// doubled window.  O(log distance) instead of O(log len), which is what
/// makes repeated searches with an advancing cursor linear overall.
#[inline]
fn gallop_lower_bound(slice: &[u32], from: usize, target: u32) -> usize {
    if from >= slice.len() || slice[from] >= target {
        return from;
    }
    // Invariant: slice[lo] < target.
    let mut lo = from;
    let mut step = 1usize;
    while lo + step < slice.len() && slice[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(slice.len());
    lo + 1 + slice[lo + 1..hi].partition_point(|&v| v < target)
}

/// Match count over strictly ascending slices by galloping the larger slice
/// with the elements of the smaller one.
///
/// The cursor into `large` only moves forward, so the total gallop work is
/// O(|small| · log(|large| / |small|)) — the right kernel when the operand
/// sizes are heavily skewed.
#[inline]
#[must_use]
pub fn sorted_gallop_count(small: &[u32], large: &[u32]) -> u64 {
    debug_assert!(
        small.windows(2).all(|w| w[0] < w[1]),
        "input small must be sorted"
    );
    debug_assert!(
        large.windows(2).all(|w| w[0] < w[1]),
        "input large must be sorted"
    );
    let mut cursor = 0usize;
    let mut count = 0u64;
    for &x in small {
        cursor = gallop_lower_bound(large, cursor, x);
        if cursor == large.len() {
            break;
        }
        if large[cursor] == x {
            count += 1;
            cursor += 1;
        }
    }
    count
}

/// Classic two-pointer match count over strictly ascending slices (count
/// only, no comparison accounting).
#[inline]
#[must_use]
pub fn sorted_merge_count(a: &[u32], b: &[u32]) -> u64 {
    let mut i = 0usize;
    let mut j = 0usize;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Adaptive match count over strictly ascending slices: two-pointer merge
/// for comparable sizes, galloping search beyond
/// [`KernelTuning::gallop_size_ratio`].
#[inline]
#[must_use]
pub fn sorted_adaptive_count(a: &[u32], b: &[u32], tuning: KernelTuning) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() > small.len().saturating_mul(tuning.gallop_size_ratio) {
        sorted_gallop_count(small, large)
    } else {
        sorted_merge_count(small, large)
    }
}

/// Binary-search membership probe over a strictly ascending slice.
#[inline]
#[must_use]
pub fn sorted_contains(slice: &[u32], x: u32) -> bool {
    slice.binary_search(&x).is_ok()
}

/// Adaptive `|a ∩ b \ {exclude}|` over strictly ascending slices with the
/// probe-model `comparisons` of the production kernels.  The gallop branch
/// folds the `exclude` bookkeeping into its scan; the merge branch pays one
/// extra O(log |small|) membership search up front.
///
/// This is the kernel the frozen CSR snapshot runs per wedge: two-pointer
/// merge for comparable sizes, galloping search beyond
/// [`KernelTuning::gallop_size_ratio`].
#[inline]
#[must_use]
pub fn sorted_intersection_excluding(
    a: &[u32],
    b: &[u32],
    exclude: u32,
    tuning: KernelTuning,
) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return IntersectionResult::default();
    }
    let (count, excluded_from_small) =
        if large.len() > small.len().saturating_mul(tuning.gallop_size_ratio) {
            gallop_excluding(small, large, exclude)
        } else {
            merge_excluding(small, large, exclude)
        };
    IntersectionResult {
        count,
        // Probe model: the probe kernel iterates the smaller operand and
        // skips `exclude` without probing.
        comparisons: small.len() as u64 - u64::from(excluded_from_small),
    }
}

/// Two-pointer merge counting matches other than `exclude`; also reports
/// whether `exclude` is a member of `small`.  (The three-way-branch shape
/// compiles measurably faster than a "branchless" arithmetic-advance loop on
/// current x86 — see the `intersect` micro-benchmark.)
#[inline]
fn merge_excluding(small: &[u32], large: &[u32], exclude: u32) -> (u64, bool) {
    let excluded = sorted_contains(small, exclude);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut count = 0u64;
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += u64::from(small[i] != exclude);
                i += 1;
                j += 1;
            }
        }
    }
    (count, excluded)
}

/// Counts `|small ∩ large \ {exclude}|` by iterating a sorted slice and
/// probing an [`AdjacencySet`], with probe-model comparisons.
///
/// This is the skew kernel of the hybrid snapshot view: a contiguous slice
/// walk feeding O(1) expected hash probes beats both a full merge (which
/// must advance through the huge operand) and galloping (O(log) per probe)
/// once the larger side is a hash-backed hub many times the smaller one.
#[inline]
#[must_use]
pub fn slice_probe_excluding(
    small: &[u32],
    large: &AdjacencySet,
    exclude: u32,
) -> IntersectionResult {
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for &x in small {
        if x == exclude {
            continue;
        }
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Gallop counting matches other than `exclude`; also reports whether
/// `exclude` is a member of `small`.
#[inline]
fn gallop_excluding(small: &[u32], large: &[u32], exclude: u32) -> (u64, bool) {
    let mut cursor = 0usize;
    let mut count = 0u64;
    let mut excluded = false;
    for &x in small {
        if x == exclude {
            excluded = true;
            continue;
        }
        if cursor == large.len() {
            continue; // still must finish scanning `small` for `exclude`
        }
        cursor = gallop_lower_bound(large, cursor, x);
        if cursor < large.len() && large[cursor] == x {
            count += 1;
            cursor += 1;
        }
    }
    (count, excluded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn set(items: &[u32]) -> AdjacencySet {
        items.iter().copied().collect()
    }

    #[test]
    fn count_basic() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        let r = intersection_count(&a, &b);
        assert_eq!(r.count, 2);
        assert_eq!(r.comparisons, 3); // probes with the smaller set (b)
    }

    #[test]
    fn count_with_disjoint_and_empty_sets() {
        let a = set(&[1, 2, 3]);
        let b = set(&[4, 5]);
        assert_eq!(intersection_count(&a, &b).count, 0);
        let empty = AdjacencySet::new();
        assert_eq!(intersection_count(&a, &empty).count, 0);
        assert_eq!(intersection_count(&empty, &empty).comparisons, 0);
    }

    #[test]
    fn excluding_removes_exactly_one_candidate() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[2, 3, 4]);
        assert_eq!(intersection_count_excluding(&a, &b, 3).count, 2);
        assert_eq!(intersection_count_excluding(&a, &b, 99).count, 3);
    }

    #[test]
    fn intersect_into_collects_members() {
        let a = set(&[1, 2, 3, 4, 7]);
        let b = set(&[2, 4, 7, 9]);
        let mut out = Vec::new();
        intersect_into(&a, &b, 4, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 7]);
    }

    #[test]
    fn sorted_merge_with_one_empty_side_is_free() {
        let r = sorted_merge_intersection_count(&[], &[1, 2, 3]);
        assert_eq!(r.count, 0);
        assert_eq!(r.comparisons, 0);
        let r = sorted_merge_intersection_count(&[1, 2, 3], &[]);
        assert_eq!(r.count, 0);
        assert_eq!(r.comparisons, 0);
        let r = sorted_merge_intersection_count(&[], &[]);
        assert_eq!(r, IntersectionResult::default());
    }

    #[test]
    fn sorted_merge_with_identical_inputs_matches_everything() {
        let v: Vec<u32> = (0..50).collect();
        let r = sorted_merge_intersection_count(&v, &v);
        assert_eq!(r.count, 50);
        assert_eq!(r.comparisons, 50); // every advance is a match
    }

    #[test]
    fn sorted_merge_comparisons_are_bounded_by_total_length() {
        let a: Vec<u32> = (0..40).map(|x| x * 2).collect(); // evens
        let b: Vec<u32> = (0..40).map(|x| x * 2 + 1).collect(); // odds
        let r = sorted_merge_intersection_count(&a, &b);
        assert_eq!(r.count, 0);
        assert!(r.comparisons <= (a.len() + b.len()) as u64);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must be sorted")]
    fn sorted_merge_rejects_duplicates_in_debug_builds() {
        // The duplicate-free (strictly ascending) invariant is enforced by a
        // debug assertion; `w[0] < w[1]` fails on the repeated 2.
        let _ = sorted_merge_intersection_count(&[1, 2, 2, 3], &[2]);
    }

    #[test]
    fn hub_pairs_take_the_merge_path_with_probe_model_comparisons() {
        // Both sets are Large (>32 elements) and comparably sized, so the
        // kernels merge the memoised sorted copies — but the reported
        // comparisons must still follow the probe model.
        let a: AdjacencySet = (0..60u32).collect();
        let b: AdjacencySet = (30..100u32).collect();
        assert!(a.as_large().is_some() && b.as_large().is_some());

        let r = intersection_count(&a, &b);
        assert_eq!(r.count, 30);
        assert_eq!(r.comparisons, 60); // |a| = the smaller side

        let r = intersection_count_excluding(&a, &b, 30);
        assert_eq!(r.count, 29);
        assert_eq!(r.comparisons, 59); // the excluded member is never probed
        let r = intersection_count_excluding(&a, &b, 1_000);
        assert_eq!(r.count, 30);
        assert_eq!(r.comparisons, 60);
    }

    #[test]
    fn shrunken_large_sets_fall_back_to_probing() {
        // Regression: a `Large` set that shrank below the small threshold can
        // be the *smaller* operand of a `Small`-variant set; the merge path
        // must not be taken (the vector side has no sorted cache).
        let mut shrunk: AdjacencySet = (0..40u32).collect();
        for x in 8..40 {
            shrunk.remove(x);
        }
        assert!(shrunk.as_large().is_some() && shrunk.len() == 8);
        let small_variant: AdjacencySet = (0..20u32).collect();
        assert!(small_variant.as_large().is_none());
        let r = intersection_count(&shrunk, &small_variant);
        assert_eq!(r.count, 8);
        assert_eq!(r.comparisons, 8);
        let r = intersection_count_excluding(&shrunk, &small_variant, 3);
        assert_eq!(r.count, 7);
        assert_eq!(r.comparisons, 7);
    }

    #[test]
    fn skewed_hub_pairs_keep_the_probe_path() {
        // Size ratio beyond MERGE_SIZE_RATIO: probing |small| times beats
        // advancing through both sets.
        let small: AdjacencySet = (0..40u32).collect();
        let large: AdjacencySet = (0..1_000u32).collect();
        assert!(!merge_applies(&small, &large, KernelTuning::default()));
        let r = intersection_count(&small, &large);
        assert_eq!(r.count, 40);
        assert_eq!(r.comparisons, 40);
    }

    #[test]
    fn sorted_merge_matches_hash_probe() {
        let a = set(&[1, 5, 9, 11, 20]);
        let b = set(&[5, 9, 10, 20, 30]);
        let merged = sorted_merge_intersection_count(&a.to_sorted_vec(), &b.to_sorted_vec());
        assert_eq!(merged.count, intersection_count(&a, &b).count);
    }

    #[test]
    fn symmetric_in_count() {
        let a = set(&(0..100).collect::<Vec<_>>());
        let b = set(&(50..200).collect::<Vec<_>>());
        assert_eq!(
            intersection_count(&a, &b).count,
            intersection_count(&b, &a).count
        );
        // Probes are bounded by the smaller set regardless of argument order.
        assert_eq!(intersection_count(&a, &b).comparisons, 100);
        assert_eq!(intersection_count(&b, &a).comparisons, 100);
    }

    #[test]
    fn gallop_agrees_with_the_classic_merge() {
        let a: Vec<u32> = (0..200).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..400).map(|x| x * 2).collect();
        let expected = sorted_merge_intersection_count(&a, &b).count;
        assert_eq!(sorted_gallop_count(&a, &b), expected);
        assert_eq!(
            sorted_adaptive_count(&a, &b, KernelTuning::default()),
            expected
        );
        // Empty operands are free on every kernel.
        assert_eq!(sorted_gallop_count(&[], &b), 0);
        assert_eq!(sorted_gallop_count(&a, &[]), 0);
        assert_eq!(sorted_adaptive_count(&[], &[], KernelTuning::default()), 0);
    }

    #[test]
    fn gallop_lower_bound_walks_forward_only() {
        let v: Vec<u32> = (0..100).map(|x| x * 2).collect();
        assert_eq!(gallop_lower_bound(&v, 0, 0), 0);
        assert_eq!(gallop_lower_bound(&v, 0, 1), 1);
        assert_eq!(gallop_lower_bound(&v, 0, 198), 99);
        assert_eq!(gallop_lower_bound(&v, 0, 500), 100); // past the end
        assert_eq!(gallop_lower_bound(&v, 50, 10), 50); // never moves backwards
        assert_eq!(gallop_lower_bound(&[], 0, 7), 0);
    }

    #[test]
    fn adaptive_count_picks_gallop_for_skewed_sizes() {
        // 4 vs 4096 elements: ratio far beyond the gallop cutover; the result
        // must be identical either way.
        let small: Vec<u32> = vec![5, 1_000, 2_000, 4_095];
        let large: Vec<u32> = (0..4_096).collect();
        let tuning = KernelTuning::default();
        assert!(large.len() > small.len() * tuning.gallop_size_ratio);
        assert_eq!(sorted_adaptive_count(&small, &large, tuning), 4);
        // Forcing the merge path gives the same count.
        let merge_only = KernelTuning {
            gallop_size_ratio: usize::MAX,
            ..tuning
        };
        assert_eq!(sorted_adaptive_count(&small, &large, merge_only), 4);
    }

    #[test]
    fn sorted_contains_probes_by_binary_search() {
        let v: Vec<u32> = (0..50).map(|x| x * 2).collect();
        assert!(sorted_contains(&v, 0));
        assert!(sorted_contains(&v, 98));
        assert!(!sorted_contains(&v, 99));
        assert!(!sorted_contains(&[], 1));
    }

    #[test]
    fn merge_cutover_is_tunable() {
        // With the ratio forced to 0 a comparably sized hub pair falls back to
        // probing; the result (count and probe-model comparisons) is the same.
        let a: AdjacencySet = (0..60u32).collect();
        let b: AdjacencySet = (30..100u32).collect();
        let probe_only = KernelTuning {
            merge_size_ratio: 0,
            ..KernelTuning::default()
        };
        assert!(!merge_applies(&a, &b, probe_only));
        let default = intersection_count(&a, &b);
        let tuned = intersection_count_with(&a, &b, probe_only);
        assert_eq!(default, tuned);
        let default = intersection_count_excluding(&a, &b, 30);
        let tuned = intersection_count_excluding_with(&a, &b, 30, probe_only);
        assert_eq!(default, tuned);
    }

    proptest! {
        /// The sorted-slice kernels (classic merge, gallop, adaptive) all
        /// agree with the BTreeSet reference on random inputs, and the fused
        /// excluding kernel matches the hash kernels' count and probe-model
        /// comparisons exactly.
        #[test]
        fn sorted_kernels_agree_on_random_slices(
            xs in proptest::collection::btree_set(0u32..600, 0..250),
            ys in proptest::collection::btree_set(0u32..600, 0..250),
            exclude in 0u32..600,
        ) {
            let a: Vec<u32> = xs.iter().copied().collect();
            let b: Vec<u32> = ys.iter().copied().collect();
            let expected = xs.intersection(&ys).count() as u64;
            prop_assert_eq!(sorted_merge_count(&a, &b), expected);
            prop_assert_eq!(sorted_gallop_count(&a, &b), expected);
            prop_assert_eq!(sorted_gallop_count(&b, &a), expected);
            prop_assert_eq!(sorted_adaptive_count(&a, &b, KernelTuning::default()), expected);

            let sa: AdjacencySet = xs.iter().copied().collect();
            let sb: AdjacencySet = ys.iter().copied().collect();
            let want = intersection_count_excluding(&sa, &sb, exclude);
            for tuning in [
                KernelTuning::default(),
                KernelTuning { merge_size_ratio: 8, gallop_size_ratio: 0 , ..KernelTuning::default()}, // force gallop
                KernelTuning { merge_size_ratio: 8, gallop_size_ratio: usize::MAX , ..KernelTuning::default()}, // force merge
            ] {
                prop_assert_eq!(
                    sorted_intersection_excluding(&a, &b, exclude, tuning),
                    want
                );
                prop_assert_eq!(
                    sorted_intersection_excluding(&b, &a, exclude, tuning),
                    want
                );
            }
        }

        #[test]
        fn matches_btreeset_reference(
            xs in proptest::collection::btree_set(0u32..500, 0..200),
            ys in proptest::collection::btree_set(0u32..500, 0..200),
            exclude in 0u32..500,
        ) {
            let a: AdjacencySet = xs.iter().copied().collect();
            let b: AdjacencySet = ys.iter().copied().collect();
            let expected = xs.intersection(&ys).count() as u64;
            prop_assert_eq!(intersection_count(&a, &b).count, expected);

            let expected_excl = xs
                .intersection(&ys)
                .filter(|&&x| x != exclude)
                .count() as u64;
            prop_assert_eq!(intersection_count_excluding(&a, &b, exclude).count, expected_excl);

            let mut out = Vec::new();
            intersect_into(&a, &b, exclude, &mut out);
            let got: BTreeSet<u32> = out.into_iter().collect();
            let want: BTreeSet<u32> =
                xs.intersection(&ys).copied().filter(|&x| x != exclude).collect();
            prop_assert_eq!(got, want);

            let av = a.to_sorted_vec();
            let bv = b.to_sorted_vec();
            prop_assert_eq!(sorted_merge_intersection_count(&av, &bv).count, expected);
        }

        /// The sorted-merge kernel agrees with `intersection_count` on random
        /// sets of every size class (Small/Small, Small/Large, Large/Large),
        /// and the production kernels' probe-model comparisons depend only on
        /// the smaller operand regardless of which path ran.
        #[test]
        fn sorted_merge_agrees_with_production_kernel(
            xs in proptest::collection::btree_set(0u32..400, 0..120),
            ys in proptest::collection::btree_set(0u32..400, 0..120),
        ) {
            let a: AdjacencySet = xs.iter().copied().collect();
            let b: AdjacencySet = ys.iter().copied().collect();
            let av: Vec<u32> = xs.iter().copied().collect();
            let bv: Vec<u32> = ys.iter().copied().collect();
            let merged = sorted_merge_intersection_count(&av, &bv);
            let probed = intersection_count(&a, &b);
            prop_assert_eq!(merged.count, probed.count);
            prop_assert_eq!(probed.comparisons, xs.len().min(ys.len()) as u64);
            prop_assert!(merged.comparisons <= (xs.len() + ys.len()) as u64);
        }
    }
}
