//! Set-intersection kernels.
//!
//! Finding the common neighbors of two vertices is the inner loop of butterfly
//! counting (Algorithm 1, line 9 of the paper).  The cost of intersecting two
//! neighbor sets is proportional to the size of the smaller set when the
//! larger one supports O(1) membership probes, which is why ABACUS picks the
//! "cheapest side" before intersecting.
//!
//! Two kernel families are provided:
//!
//! * [`intersection_count`] / [`intersection_count_excluding`] — the
//!   production kernels over [`AdjacencySet`]s.  They probe the larger set
//!   with the elements of the smaller one, **except** when both operands are
//!   hash-backed hubs of comparable size: then they switch to a two-pointer
//!   sorted merge over the sets' memoised sorted copies
//!   ([`LargeSet::sorted`](crate::adjacency::LargeSet::sorted)), which walks
//!   memory sequentially instead of cache-missing once per probe,
//! * [`sorted_merge_intersection_count`] — the bare two-pointer merge over
//!   sorted slices, usable directly and kept as an ablation target for the
//!   micro-benchmarks.
//!
//! The production kernels report `comparisons` under the *probe model* of the
//! paper — the number of membership probes the probe kernel performs, i.e.
//! the size of the smaller set after exclusions — regardless of which code
//! path actually ran.  This keeps the per-thread workload counters of the
//! load-balance experiment (Fig. 10) — and PARABACUS/ABACUS work parity —
//! independent of kernel selection.  Only [`sorted_merge_intersection_count`]
//! reports its literal pointer advances, since measuring those is the point
//! of the ablation.

use crate::adjacency::AdjacencySet;

/// Use the sorted-merge path only when the larger hub is at most this many
/// times the smaller one: a merge always advances through both sets, so with
/// heavily skewed sizes probing the big set `|small|` times is cheaper.
const MERGE_SIZE_RATIO: usize = 8;

/// Result of an intersection: how many common elements and how many probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntersectionResult {
    /// Number of elements present in both sets (after exclusions).
    pub count: u64,
    /// Number of membership probes performed (= size of the smaller set).
    pub comparisons: u64,
}

impl IntersectionResult {
    /// Adds another result to this one.
    #[inline]
    pub fn accumulate(&mut self, other: IntersectionResult) {
        self.count += other.count;
        self.comparisons += other.comparisons;
    }
}

/// Whether the hub-vs-hub sorted-merge path applies to this operand pair.
///
/// Which path runs can never change the reported numbers: counts are exact
/// set intersections either way, and `comparisons` follow the probe model in
/// both paths, so ABACUS/PARABACUS work parity is independent of this
/// decision.
#[inline]
fn merge_applies(small: &AdjacencySet, large: &AdjacencySet) -> bool {
    // Both operands must actually be hash-backed: a `Large` set that shrank
    // can be outsized by a vector-backed `Small` one, which has no sorted
    // cache to merge over.
    small.as_large().is_some()
        && large.as_large().is_some()
        && large.len() <= small.len().saturating_mul(MERGE_SIZE_RATIO)
}

/// Two-pointer match count over the memoised sorted copies, skipping
/// `exclude` (pass a value outside the id space to skip nothing).
#[inline]
fn merge_count(small: &AdjacencySet, large: &AdjacencySet, exclude: Option<u32>) -> u64 {
    let (a, b) = (
        small
            .as_large()
            .expect("merge path requires Large")
            .sorted(),
        large
            .as_large()
            .expect("merge path requires Large")
            .sorted(),
    );
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if Some(a[i]) != exclude {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Counts `|a ∩ b|` by probing the larger set with elements of the smaller,
/// or by a sorted merge when both operands are comparably sized hubs.
#[inline]
#[must_use]
pub fn intersection_count(a: &AdjacencySet, b: &AdjacencySet) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if merge_applies(small, large) {
        return IntersectionResult {
            count: merge_count(small, large, None),
            // Probe model: what the probe kernel would have performed.
            comparisons: small.len() as u64,
        };
    }
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for x in small.iter() {
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Counts `|a ∩ b \ {exclude}|`.
///
/// The butterfly kernel uses this to drop the incoming edge's own endpoint
/// from the common-neighbor set (a vertex can never complete a butterfly with
/// itself).
#[inline]
#[must_use]
pub fn intersection_count_excluding(
    a: &AdjacencySet,
    b: &AdjacencySet,
    exclude: u32,
) -> IntersectionResult {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if merge_applies(small, large) {
        return IntersectionResult {
            count: merge_count(small, large, Some(exclude)),
            // Probe model: the probe kernel skips `exclude` without probing.
            comparisons: small.len() as u64 - u64::from(small.contains(exclude)),
        };
    }
    let mut count = 0u64;
    let mut comparisons = 0u64;
    for x in small.iter() {
        if x == exclude {
            continue;
        }
        comparisons += 1;
        if large.contains(x) {
            count += 1;
        }
    }
    IntersectionResult { count, comparisons }
}

/// Collects `a ∩ b \ {exclude}` into `out` (cleared first).
///
/// Used where the identity of the fourth butterfly vertex matters (per-edge
/// butterfly *enumeration*, e.g. for the bitruss-style extension), as opposed
/// to plain counting.
pub fn intersect_into(a: &AdjacencySet, b: &AdjacencySet, exclude: u32, out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for x in small.iter() {
        if x != exclude && large.contains(x) {
            out.push(x);
        }
    }
}

/// Two-pointer intersection count over sorted slices (ablation kernel).
#[must_use]
pub fn sorted_merge_intersection_count(a: &[u32], b: &[u32]) -> IntersectionResult {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input b must be sorted");
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    let mut comparisons = 0u64;
    while i < a.len() && j < b.len() {
        comparisons += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    IntersectionResult { count, comparisons }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn set(items: &[u32]) -> AdjacencySet {
        items.iter().copied().collect()
    }

    #[test]
    fn count_basic() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        let r = intersection_count(&a, &b);
        assert_eq!(r.count, 2);
        assert_eq!(r.comparisons, 3); // probes with the smaller set (b)
    }

    #[test]
    fn count_with_disjoint_and_empty_sets() {
        let a = set(&[1, 2, 3]);
        let b = set(&[4, 5]);
        assert_eq!(intersection_count(&a, &b).count, 0);
        let empty = AdjacencySet::new();
        assert_eq!(intersection_count(&a, &empty).count, 0);
        assert_eq!(intersection_count(&empty, &empty).comparisons, 0);
    }

    #[test]
    fn excluding_removes_exactly_one_candidate() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[2, 3, 4]);
        assert_eq!(intersection_count_excluding(&a, &b, 3).count, 2);
        assert_eq!(intersection_count_excluding(&a, &b, 99).count, 3);
    }

    #[test]
    fn intersect_into_collects_members() {
        let a = set(&[1, 2, 3, 4, 7]);
        let b = set(&[2, 4, 7, 9]);
        let mut out = Vec::new();
        intersect_into(&a, &b, 4, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 7]);
    }

    #[test]
    fn sorted_merge_with_one_empty_side_is_free() {
        let r = sorted_merge_intersection_count(&[], &[1, 2, 3]);
        assert_eq!(r.count, 0);
        assert_eq!(r.comparisons, 0);
        let r = sorted_merge_intersection_count(&[1, 2, 3], &[]);
        assert_eq!(r.count, 0);
        assert_eq!(r.comparisons, 0);
        let r = sorted_merge_intersection_count(&[], &[]);
        assert_eq!(r, IntersectionResult::default());
    }

    #[test]
    fn sorted_merge_with_identical_inputs_matches_everything() {
        let v: Vec<u32> = (0..50).collect();
        let r = sorted_merge_intersection_count(&v, &v);
        assert_eq!(r.count, 50);
        assert_eq!(r.comparisons, 50); // every advance is a match
    }

    #[test]
    fn sorted_merge_comparisons_are_bounded_by_total_length() {
        let a: Vec<u32> = (0..40).map(|x| x * 2).collect(); // evens
        let b: Vec<u32> = (0..40).map(|x| x * 2 + 1).collect(); // odds
        let r = sorted_merge_intersection_count(&a, &b);
        assert_eq!(r.count, 0);
        assert!(r.comparisons <= (a.len() + b.len()) as u64);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must be sorted")]
    fn sorted_merge_rejects_duplicates_in_debug_builds() {
        // The duplicate-free (strictly ascending) invariant is enforced by a
        // debug assertion; `w[0] < w[1]` fails on the repeated 2.
        let _ = sorted_merge_intersection_count(&[1, 2, 2, 3], &[2]);
    }

    #[test]
    fn hub_pairs_take_the_merge_path_with_probe_model_comparisons() {
        // Both sets are Large (>32 elements) and comparably sized, so the
        // kernels merge the memoised sorted copies — but the reported
        // comparisons must still follow the probe model.
        let a: AdjacencySet = (0..60u32).collect();
        let b: AdjacencySet = (30..100u32).collect();
        assert!(a.as_large().is_some() && b.as_large().is_some());

        let r = intersection_count(&a, &b);
        assert_eq!(r.count, 30);
        assert_eq!(r.comparisons, 60); // |a| = the smaller side

        let r = intersection_count_excluding(&a, &b, 30);
        assert_eq!(r.count, 29);
        assert_eq!(r.comparisons, 59); // the excluded member is never probed
        let r = intersection_count_excluding(&a, &b, 1_000);
        assert_eq!(r.count, 30);
        assert_eq!(r.comparisons, 60);
    }

    #[test]
    fn shrunken_large_sets_fall_back_to_probing() {
        // Regression: a `Large` set that shrank below the small threshold can
        // be the *smaller* operand of a `Small`-variant set; the merge path
        // must not be taken (the vector side has no sorted cache).
        let mut shrunk: AdjacencySet = (0..40u32).collect();
        for x in 8..40 {
            shrunk.remove(x);
        }
        assert!(shrunk.as_large().is_some() && shrunk.len() == 8);
        let small_variant: AdjacencySet = (0..20u32).collect();
        assert!(small_variant.as_large().is_none());
        let r = intersection_count(&shrunk, &small_variant);
        assert_eq!(r.count, 8);
        assert_eq!(r.comparisons, 8);
        let r = intersection_count_excluding(&shrunk, &small_variant, 3);
        assert_eq!(r.count, 7);
        assert_eq!(r.comparisons, 7);
    }

    #[test]
    fn skewed_hub_pairs_keep_the_probe_path() {
        // Size ratio beyond MERGE_SIZE_RATIO: probing |small| times beats
        // advancing through both sets.
        let small: AdjacencySet = (0..40u32).collect();
        let large: AdjacencySet = (0..1_000u32).collect();
        assert!(!merge_applies(&small, &large));
        let r = intersection_count(&small, &large);
        assert_eq!(r.count, 40);
        assert_eq!(r.comparisons, 40);
    }

    #[test]
    fn sorted_merge_matches_hash_probe() {
        let a = set(&[1, 5, 9, 11, 20]);
        let b = set(&[5, 9, 10, 20, 30]);
        let merged = sorted_merge_intersection_count(&a.to_sorted_vec(), &b.to_sorted_vec());
        assert_eq!(merged.count, intersection_count(&a, &b).count);
    }

    #[test]
    fn symmetric_in_count() {
        let a = set(&(0..100).collect::<Vec<_>>());
        let b = set(&(50..200).collect::<Vec<_>>());
        assert_eq!(
            intersection_count(&a, &b).count,
            intersection_count(&b, &a).count
        );
        // Probes are bounded by the smaller set regardless of argument order.
        assert_eq!(intersection_count(&a, &b).comparisons, 100);
        assert_eq!(intersection_count(&b, &a).comparisons, 100);
    }

    proptest! {
        #[test]
        fn matches_btreeset_reference(
            xs in proptest::collection::btree_set(0u32..500, 0..200),
            ys in proptest::collection::btree_set(0u32..500, 0..200),
            exclude in 0u32..500,
        ) {
            let a: AdjacencySet = xs.iter().copied().collect();
            let b: AdjacencySet = ys.iter().copied().collect();
            let expected = xs.intersection(&ys).count() as u64;
            prop_assert_eq!(intersection_count(&a, &b).count, expected);

            let expected_excl = xs
                .intersection(&ys)
                .filter(|&&x| x != exclude)
                .count() as u64;
            prop_assert_eq!(intersection_count_excluding(&a, &b, exclude).count, expected_excl);

            let mut out = Vec::new();
            intersect_into(&a, &b, exclude, &mut out);
            let got: BTreeSet<u32> = out.into_iter().collect();
            let want: BTreeSet<u32> =
                xs.intersection(&ys).copied().filter(|&x| x != exclude).collect();
            prop_assert_eq!(got, want);

            let av = a.to_sorted_vec();
            let bv = b.to_sorted_vec();
            prop_assert_eq!(sorted_merge_intersection_count(&av, &bv).count, expected);
        }

        /// The sorted-merge kernel agrees with `intersection_count` on random
        /// sets of every size class (Small/Small, Small/Large, Large/Large),
        /// and the production kernels' probe-model comparisons depend only on
        /// the smaller operand regardless of which path ran.
        #[test]
        fn sorted_merge_agrees_with_production_kernel(
            xs in proptest::collection::btree_set(0u32..400, 0..120),
            ys in proptest::collection::btree_set(0u32..400, 0..120),
        ) {
            let a: AdjacencySet = xs.iter().copied().collect();
            let b: AdjacencySet = ys.iter().copied().collect();
            let av: Vec<u32> = xs.iter().copied().collect();
            let bv: Vec<u32> = ys.iter().copied().collect();
            let merged = sorted_merge_intersection_count(&av, &bv);
            let probed = intersection_count(&a, &b);
            prop_assert_eq!(merged.count, probed.count);
            prop_assert_eq!(probed.comparisons, xs.len().min(ys.len()) as u64);
            prop_assert!(merged.comparisons <= (xs.len() + ys.len()) as u64);
        }
    }
}
