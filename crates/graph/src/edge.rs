//! Edges of a bipartite graph.
//!
//! An edge always connects one left vertex and one right vertex, so it is
//! stored in the normalized form `(left, right)` rather than as an unordered
//! pair.  [`EdgeKey`] packs an edge into a single `u64` for cheap hashing and
//! compact edge→slot indices.

use crate::vertex::{Side, VertexRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An undirected edge `{u, v}` with `u ∈ L` and `v ∈ R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// The left endpoint.
    pub left: u32,
    /// The right endpoint.
    pub right: u32,
}

impl Edge {
    /// Creates an edge between left vertex `left` and right vertex `right`.
    #[inline]
    #[must_use]
    pub fn new(left: u32, right: u32) -> Self {
        Edge { left, right }
    }

    /// The left endpoint as a [`VertexRef`].
    #[inline]
    #[must_use]
    pub fn left_ref(&self) -> VertexRef {
        VertexRef::left(self.left)
    }

    /// The right endpoint as a [`VertexRef`].
    #[inline]
    #[must_use]
    pub fn right_ref(&self) -> VertexRef {
        VertexRef::right(self.right)
    }

    /// Both endpoints, left first.
    #[inline]
    #[must_use]
    pub fn endpoints(&self) -> (VertexRef, VertexRef) {
        (self.left_ref(), self.right_ref())
    }

    /// The endpoint lying on `side`.
    #[inline]
    #[must_use]
    pub fn endpoint_on(&self, side: Side) -> u32 {
        match side {
            Side::Left => self.left,
            Side::Right => self.right,
        }
    }

    /// Whether the given vertex is one of the endpoints.
    #[inline]
    #[must_use]
    pub fn contains(&self, v: VertexRef) -> bool {
        match v.side {
            Side::Left => self.left == v.id,
            Side::Right => self.right == v.id,
        }
    }

    /// Packs the edge into an [`EdgeKey`].
    #[inline]
    #[must_use]
    pub fn key(&self) -> EdgeKey {
        EdgeKey::from(*self)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(L{}, R{})", self.left, self.right)
    }
}

impl From<(u32, u32)> for Edge {
    #[inline]
    fn from((left, right): (u32, u32)) -> Self {
        Edge::new(left, right)
    }
}

/// A packed 64-bit edge identifier: `left` in the high 32 bits, `right` in the
/// low 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeKey(pub u64);

impl EdgeKey {
    /// Recovers the edge from the packed representation.
    #[inline]
    #[must_use]
    pub fn unpack(self) -> Edge {
        Edge::new((self.0 >> 32) as u32, self.0 as u32)
    }
}

impl From<Edge> for EdgeKey {
    #[inline]
    fn from(e: Edge) -> Self {
        EdgeKey((u64::from(e.left) << 32) | u64::from(e.right))
    }
}

impl From<EdgeKey> for Edge {
    #[inline]
    fn from(k: EdgeKey) -> Self {
        k.unpack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_sides() {
        let e = Edge::new(3, 9);
        assert_eq!(e.left_ref(), VertexRef::left(3));
        assert_eq!(e.right_ref(), VertexRef::right(9));
        assert_eq!(e.endpoint_on(Side::Left), 3);
        assert_eq!(e.endpoint_on(Side::Right), 9);
        let (l, r) = e.endpoints();
        assert_eq!((l.id, r.id), (3, 9));
    }

    #[test]
    fn contains_checks_side() {
        let e = Edge::new(3, 9);
        assert!(e.contains(VertexRef::left(3)));
        assert!(e.contains(VertexRef::right(9)));
        assert!(!e.contains(VertexRef::right(3)));
        assert!(!e.contains(VertexRef::left(9)));
    }

    #[test]
    fn edge_key_round_trip() {
        for &(l, r) in &[(0u32, 0u32), (1, 2), (u32::MAX, 0), (0, u32::MAX), (7, 7)] {
            let e = Edge::new(l, r);
            assert_eq!(EdgeKey::from(e).unpack(), e);
            assert_eq!(Edge::from(e.key()), e);
        }
    }

    #[test]
    fn edge_key_is_injective_on_swapped_endpoints() {
        assert_ne!(Edge::new(1, 2).key(), Edge::new(2, 1).key());
    }

    #[test]
    fn display_and_from_tuple() {
        let e: Edge = (4, 5).into();
        assert_eq!(e.to_string(), "(L4, R5)");
    }
}
