//! A fully dynamic in-memory bipartite graph.
//!
//! [`BipartiteGraph`] stores one adjacency map per partition and supports
//! edge insertion and deletion in O(1) expected time.  It follows the paper's
//! graph model: undirected, unweighted, no parallel edges, and vertices with
//! degree zero are dropped (Definition 1).
//!
//! The exact butterfly counting algorithms in [`crate::exact`] and the
//! ground-truth streaming oracle in `abacus-core` both operate on this type.

use crate::adjacency::AdjacencySet;
use crate::edge::Edge;
use crate::fxhash::FxHashMap;
use crate::peredge::NeighborhoodView;
use crate::vertex::{Side, VertexRef};

/// A dynamic bipartite graph `G = (L ∪ R, E)`.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    adj_left: FxHashMap<u32, AdjacencySet>,
    adj_right: FxHashMap<u32, AdjacencySet>,
    num_edges: usize,
}

impl BipartiteGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity hints for the two vertex maps.
    #[must_use]
    pub fn with_capacity(left_vertices: usize, right_vertices: usize) -> Self {
        BipartiteGraph {
            adj_left: crate::fxhash::fx_hashmap_with_capacity(left_vertices),
            adj_right: crate::fxhash::fx_hashmap_with_capacity(right_vertices),
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge iterator, ignoring duplicates.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        let mut g = BipartiteGraph::new();
        for e in edges {
            g.insert_edge(e);
        }
        g
    }

    /// Number of edges currently in the graph.
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of left vertices with degree ≥ 1.
    #[inline]
    #[must_use]
    pub fn num_left_vertices(&self) -> usize {
        self.adj_left.len()
    }

    /// Number of right vertices with degree ≥ 1.
    #[inline]
    #[must_use]
    pub fn num_right_vertices(&self) -> usize {
        self.adj_right.len()
    }

    /// Whether the graph has no edges.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Whether the edge is present.
    #[inline]
    #[must_use]
    pub fn has_edge(&self, edge: Edge) -> bool {
        self.adj_left
            .get(&edge.left)
            .is_some_and(|n| n.contains(edge.right))
    }

    /// Inserts an edge.  Returns `false` (and leaves the graph unchanged) if
    /// the edge already exists.
    pub fn insert_edge(&mut self, edge: Edge) -> bool {
        let left_set = self.adj_left.entry(edge.left).or_default();
        if !left_set.insert(edge.right) {
            return false;
        }
        self.adj_right
            .entry(edge.right)
            .or_default()
            .insert(edge.left);
        self.num_edges += 1;
        true
    }

    /// Deletes an edge.  Returns `false` if the edge was not present.
    ///
    /// Endpoints whose degree drops to zero are removed from the vertex maps,
    /// matching the paper's convention that zero-degree vertices leave `V(t)`.
    pub fn delete_edge(&mut self, edge: Edge) -> bool {
        let Some(left_set) = self.adj_left.get_mut(&edge.left) else {
            return false;
        };
        if !left_set.remove(edge.right) {
            return false;
        }
        if left_set.is_empty() {
            self.adj_left.remove(&edge.left);
        }
        if let Some(right_set) = self.adj_right.get_mut(&edge.right) {
            right_set.remove(edge.left);
            if right_set.is_empty() {
                self.adj_right.remove(&edge.right);
            }
        }
        self.num_edges -= 1;
        true
    }

    /// Degree of a vertex (0 if absent).
    #[inline]
    #[must_use]
    pub fn degree(&self, v: VertexRef) -> usize {
        self.neighbors(v).map_or(0, AdjacencySet::len)
    }

    /// Neighbor set of a vertex, if the vertex exists.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: VertexRef) -> Option<&AdjacencySet> {
        match v.side {
            Side::Left => self.adj_left.get(&v.id),
            Side::Right => self.adj_right.get(&v.id),
        }
    }

    /// Iterates over the vertex ids of one partition (arbitrary order).
    pub fn vertices(&self, side: Side) -> impl Iterator<Item = u32> + '_ {
        match side {
            // lint:allow(hash-iter): documented arbitrary-order primitive; order-sensitive callers must sort the ids they collect
            Side::Left => self.adj_left.keys().copied(),
            // lint:allow(hash-iter): documented arbitrary-order primitive; order-sensitive callers must sort the ids they collect
            Side::Right => self.adj_right.keys().copied(),
        }
    }

    /// Iterates over all edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj_left
            .iter()
            .flat_map(|(&l, nbrs)| nbrs.iter().map(move |r| Edge::new(l, r)))
    }

    /// Maximum degree over one partition.
    #[must_use]
    pub fn max_degree(&self, side: Side) -> usize {
        match side {
            Side::Left => self.adj_left.values().map(AdjacencySet::len).max(),
            Side::Right => self.adj_right.values().map(AdjacencySet::len).max(),
        }
        .unwrap_or(0)
    }

    /// Sum of squared degrees over one partition (the cost driver of exact
    /// wedge-based butterfly counting).
    #[must_use]
    pub fn sum_squared_degrees(&self, side: Side) -> u128 {
        let it: Box<dyn Iterator<Item = usize>> = match side {
            // lint:allow(hash-iter): integer sum of squared degrees is order-insensitive
            Side::Left => Box::new(self.adj_left.values().map(AdjacencySet::len)),
            // lint:allow(hash-iter): integer sum of squared degrees is order-insensitive
            Side::Right => Box::new(self.adj_right.values().map(AdjacencySet::len)),
        };
        it.map(|d| (d as u128) * (d as u128)).sum()
    }

    /// Removes all vertices and edges.
    pub fn clear(&mut self) {
        self.adj_left.clear();
        self.adj_right.clear();
        self.num_edges = 0;
    }

    /// Approximate heap footprint in bytes (adjacency payloads only).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.adj_left
            .values()
            .chain(self.adj_right.values())
            .map(AdjacencySet::heap_bytes)
            .sum::<usize>()
            + (self.adj_left.capacity() + self.adj_right.capacity()) * 48
    }
}

impl NeighborhoodView for BipartiteGraph {
    #[inline]
    fn view_degree(&self, v: VertexRef) -> usize {
        self.degree(v)
    }

    #[inline]
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        self.neighbors(v).is_some_and(|n| n.contains(neighbor))
    }

    #[inline]
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        if let Some(n) = self.neighbors(v) {
            for x in n {
                f(x);
            }
        }
    }

    #[inline]
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> crate::intersect::IntersectionResult {
        // Resolve both adjacency sets once and intersect them directly instead
        // of paying one map lookup per probe.
        match (self.neighbors(a), self.neighbors(b)) {
            (Some(na), Some(nb)) => crate::intersect::intersection_count_excluding(na, nb, exclude),
            _ => crate::intersect::IntersectionResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn edge(l: u32, r: u32) -> Edge {
        Edge::new(l, r)
    }

    #[test]
    fn insert_and_query() {
        let mut g = BipartiteGraph::new();
        assert!(g.insert_edge(edge(1, 10)));
        assert!(g.insert_edge(edge(1, 11)));
        assert!(g.insert_edge(edge(2, 10)));
        assert!(!g.insert_edge(edge(1, 10)), "duplicate must be rejected");

        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_left_vertices(), 2);
        assert_eq!(g.num_right_vertices(), 2);
        assert!(g.has_edge(edge(1, 10)));
        assert!(!g.has_edge(edge(2, 11)));
        assert_eq!(g.degree(VertexRef::left(1)), 2);
        assert_eq!(g.degree(VertexRef::right(10)), 2);
        assert_eq!(g.degree(VertexRef::left(99)), 0);
    }

    #[test]
    fn delete_removes_zero_degree_vertices() {
        let mut g = BipartiteGraph::from_edges([edge(1, 10), edge(1, 11)]);
        assert!(g.delete_edge(edge(1, 10)));
        assert!(!g.delete_edge(edge(1, 10)), "double delete must fail");
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_right_vertices(), 1, "R10 must have been dropped");
        assert!(g.delete_edge(edge(1, 11)));
        assert!(g.is_empty());
        assert_eq!(g.num_left_vertices(), 0);
        assert_eq!(g.num_right_vertices(), 0);
    }

    #[test]
    fn delete_missing_edge_is_noop() {
        let mut g = BipartiteGraph::from_edges([edge(1, 10)]);
        assert!(!g.delete_edge(edge(2, 10)));
        assert!(!g.delete_edge(edge(1, 11)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let input = vec![edge(1, 10), edge(1, 11), edge(2, 10), edge(3, 12)];
        let g = BipartiteGraph::from_edges(input.clone());
        let got: BTreeSet<Edge> = g.edges().collect();
        let want: BTreeSet<Edge> = input.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn vertices_and_max_degree() {
        let g = BipartiteGraph::from_edges([edge(1, 10), edge(1, 11), edge(1, 12), edge(2, 10)]);
        let lefts: BTreeSet<u32> = g.vertices(Side::Left).collect();
        assert_eq!(lefts, BTreeSet::from([1, 2]));
        assert_eq!(g.max_degree(Side::Left), 3);
        assert_eq!(g.max_degree(Side::Right), 2);
        assert_eq!(g.sum_squared_degrees(Side::Left), 9 + 1);
        assert_eq!(g.sum_squared_degrees(Side::Right), 4 + 1 + 1);
    }

    #[test]
    fn neighborhood_view_matches_direct_access() {
        let g = BipartiteGraph::from_edges([edge(1, 10), edge(1, 11), edge(2, 10)]);
        assert_eq!(g.view_degree(VertexRef::left(1)), 2);
        assert!(g.view_contains(VertexRef::right(10), 2));
        assert!(!g.view_contains(VertexRef::right(11), 2));
        let mut seen = Vec::new();
        g.view_for_each_neighbor(VertexRef::left(1), &mut |x| seen.push(x));
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = BipartiteGraph::from_edges([edge(1, 10), edge(2, 11)]);
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_left_vertices(), 0);
        assert!(g.insert_edge(edge(1, 10)));
    }

    proptest! {
        /// Inserting then deleting a random multiset of edges keeps the edge
        /// count and membership consistent with a reference set at all times.
        #[test]
        fn matches_reference_edge_set(
            ops in proptest::collection::vec((any::<bool>(), 0u32..20, 0u32..20), 0..400)
        ) {
            let mut g = BipartiteGraph::new();
            let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
            for (is_insert, l, r) in ops {
                let e = edge(l, r);
                if is_insert {
                    prop_assert_eq!(g.insert_edge(e), reference.insert((l, r)));
                } else {
                    prop_assert_eq!(g.delete_edge(e), reference.remove(&(l, r)));
                }
                prop_assert_eq!(g.num_edges(), reference.len());
                prop_assert_eq!(g.has_edge(e), reference.contains(&(l, r)));
            }
            // Degrees must sum to the number of edges on both sides.
            let left_sum: usize = g.vertices(Side::Left).map(|v| g.degree(VertexRef::left(v))).sum();
            let right_sum: usize = g.vertices(Side::Right).map(|v| g.degree(VertexRef::right(v))).sum();
            prop_assert_eq!(left_sum, reference.len());
            prop_assert_eq!(right_sum, reference.len());
        }
    }
}
