//! # abacus-graph
//!
//! Dynamic bipartite graph substrate and exact butterfly counting used by the
//! ABACUS / PARABACUS reproduction.
//!
//! A *butterfly* is a 2×2 biclique: two left vertices `u, w` and two right
//! vertices `v, x` connected by the four edges `(u,v)`, `(u,x)`, `(w,v)`,
//! `(w,x)`.  This crate provides everything that is needed to reason about
//! butterflies on a concrete in-memory graph:
//!
//! * [`BipartiteGraph`] — a fully dynamic (insert *and* delete) adjacency-list
//!   bipartite graph,
//! * [`exact`] — exact butterfly counting (global, per-vertex, per-edge),
//! * [`peredge`] — the per-edge butterfly counting kernel shared by the exact
//!   oracle, ABACUS, and the FLEET baseline (Algorithm 1, lines 7–11 of the
//!   paper),
//! * [`intersect`] — set-intersection primitives with comparison accounting
//!   (used for the load-balance experiment, Fig. 10), including the adaptive
//!   sorted-slice kernels (two-pointer merge / galloping search),
//! * [`csr`] — the frozen CSR counting snapshot the estimators intersect
//!   against in their per-edge hot loop,
//! * [`fxhash`] — a fast, DoS-insensitive hasher for integer keys (the
//!   `rustc-hash` algorithm re-implemented locally),
//! * [`persist`] — the persistence primitives (typed errors, CRC32, the
//!   little-endian binary codec) shared by the durable snapshot and WAL
//!   formats up the crate stack,
//! * [`stats`] — the dataset statistics reported in Table II of the paper.
//!
//! The crate is deliberately free of any sampling or streaming logic; those
//! live in `abacus-sampling`, `abacus-stream` and `abacus-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bipartite;
pub mod bitruss;
pub mod clustering;
pub mod csr;
pub mod edge;
pub mod exact;
pub mod fxhash;
pub mod intersect;
pub mod peredge;
pub mod persist;
pub mod stats;
pub mod vertex;

pub use adjacency::AdjacencySet;
pub use bipartite::BipartiteGraph;
pub use bitruss::{bitruss_decomposition, peel_from_supports, BitrussDecomposition, BitrussState};
pub use clustering::{butterfly_clustering_coefficient, count_caterpillars, ClusteringState};
pub use csr::CsrSnapshot;
pub use edge::{Edge, EdgeKey};
pub use exact::{count_butterflies, count_butterflies_per_left_vertex, ExactCounts};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intersect::KernelTuning;
pub use peredge::{
    count_butterflies_with_edge, for_each_butterfly_with_edge, EdgeSupports, NeighborhoodView,
    PerEdgeCount,
};
pub use persist::{crc32, Crc32, Decoder, Encoder, PersistError};
pub use stats::GraphStatistics;
pub use vertex::{Side, VertexButterflyCounts, VertexRef};
