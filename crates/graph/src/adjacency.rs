//! Neighbor-set container used by the dynamic graph and the graph sample.
//!
//! Degree distributions of real bipartite graphs are heavily skewed: most
//! vertices have a handful of neighbors while a few hubs have thousands.
//! [`AdjacencySet`] therefore uses a hybrid representation:
//!
//! * small sets are an unsorted `Vec<u32>` (linear membership probes are
//!   faster than hashing below a few dozen elements and use a fraction of the
//!   memory),
//! * once a set grows beyond [`SMALL_THRESHOLD`] elements it is promoted to an
//!   [`FxHashSet`] with O(1) expected membership.
//!
//! The container never stores duplicates and supports O(1) expected insert,
//! remove and membership operations — exactly what the per-edge butterfly
//! counting kernel needs.
//!
//! Large sets additionally memoise a sorted copy of their elements
//! ([`LargeSet::sorted`], invalidated on every mutation) so that the
//! intersection kernels can switch to a cache-friendly sorted-merge when both
//! operands are hubs — the hot case of the per-edge counting phase, where the
//! sample is frozen and the cache is built once and reused for every
//! intersection of the batch.

use crate::fxhash::FxHashSet;
use std::collections::hash_set;
use std::sync::OnceLock;

/// Maximum number of neighbors kept in the vector representation.
///
/// Chosen by the `adjacency_spill` micro-bench sweep (see
/// [`crate::intersect::DEFAULT_ADJ_SPILL_THRESHOLD`] for the numbers): larger
/// spill points win on small sample budgets but regress the paired
/// counting-phase overhead at the reference-benchmark scale, so 32 is the
/// default and [`crate::intersect::KernelTuning`] exposes the knob.
pub const SMALL_THRESHOLD: usize = 32;

/// Capacity reserved by the first insertion into an empty `Small` vector.
///
/// A fresh `Vec<u32>` would otherwise crawl through the 4 → 8 reallocation
/// ladder while a vertex accumulates its first neighbors — measurable churn
/// in the insert-heavy phase of a stream, where every new vertex takes this
/// path.  32 bytes per active vertex buys the whole `Small` range at most
/// two grow steps (8 → 16 → 32).
pub const SMALL_PRESIZE: usize = 8;

/// The hash-backed representation of a large neighbor set, plus a lazily
/// built sorted copy of the elements.
///
/// The sorted copy feeds the sorted-merge intersection kernel
/// ([`crate::intersect::intersection_count`] and friends).  It is built on
/// first use — typically during a counting phase, when the owning graph is
/// immutable — and dropped by any subsequent mutation, so it can never go
/// stale.  Building is thread-safe ([`OnceLock`]), which matters because
/// PARABACUS worker threads intersect shared, frozen samples concurrently.
#[derive(Debug, Clone, Default)]
pub struct LargeSet {
    set: FxHashSet<u32>,
    sorted: OnceLock<Vec<u32>>,
}

impl LargeSet {
    fn with_capacity(capacity: usize) -> Self {
        LargeSet {
            set: crate::fxhash::fx_hashset_with_capacity(capacity),
            sorted: OnceLock::new(),
        }
    }

    /// The elements in ascending order, memoised until the next mutation.
    #[must_use]
    pub fn sorted(&self) -> &[u32] {
        self.sorted.get_or_init(|| {
            let mut v: Vec<u32> = self.set.iter().copied().collect();
            v.sort_unstable();
            v
        })
    }

    /// Length of the memoised sorted copy, or `None` when it has not been
    /// built since the last mutation.  Peeking never builds the copy — the
    /// estimators use this for honest memory accounting without inflating
    /// the very footprint they are measuring.
    #[must_use]
    pub fn sorted_cache_len(&self) -> Option<usize> {
        self.sorted.get().map(Vec::len)
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// O(1) expected membership probe.
    #[must_use]
    pub fn contains(&self, x: u32) -> bool {
        self.set.contains(&x)
    }

    fn invalidate(&mut self) {
        self.sorted.take();
    }
}

/// A set of neighbor identifiers (`u32`) with a size-adaptive representation.
///
/// ```
/// use abacus_graph::adjacency::AdjacencySet;
///
/// let mut neighbors = AdjacencySet::new();
/// assert!(neighbors.insert(7));
/// assert!(!neighbors.insert(7)); // duplicates are rejected
/// assert!(neighbors.contains(7));
/// assert!(neighbors.remove(7));
/// assert!(neighbors.is_empty());
///
/// // Collecting promotes past the small-vector threshold automatically.
/// let hub: AdjacencySet = (0..100u32).collect();
/// assert_eq!(hub.len(), 100);
/// assert_eq!(hub.to_sorted_vec().first(), Some(&0));
/// ```
#[derive(Debug, Clone)]
pub enum AdjacencySet {
    /// Unsorted vector representation for small sets.
    Small(Vec<u32>),
    /// Hash-set representation for large sets.
    ///
    /// Boxed so the enum stays pointer-sized-ish (32 bytes instead of 64):
    /// the sample store and the dynamic graph keep one `AdjacencySet` per
    /// active vertex in a dense slab, and most vertices are `Small`, so the
    /// rare hub should not double every slot.  Hubs pay one extra pointer
    /// chase on top of the hash probe they already do.
    Large(Box<LargeSet>),
}

impl Default for AdjacencySet {
    fn default() -> Self {
        AdjacencySet::Small(Vec::new())
    }
}

impl AdjacencySet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set able to hold `capacity` elements without
    /// reallocating (chooses the representation accordingly).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity <= SMALL_THRESHOLD {
            AdjacencySet::Small(Vec::with_capacity(capacity))
        } else {
            AdjacencySet::Large(Box::new(LargeSet::with_capacity(capacity)))
        }
    }

    /// Number of neighbors.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AdjacencySet::Small(v) => v.len(),
            AdjacencySet::Large(s) => s.len(),
        }
    }

    /// Whether the set is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership probe.
    #[inline]
    #[must_use]
    pub fn contains(&self, x: u32) -> bool {
        match self {
            AdjacencySet::Small(v) => v.contains(&x),
            AdjacencySet::Large(s) => s.contains(x),
        }
    }

    /// Inserts `x`; returns `true` if it was not already present.
    pub fn insert(&mut self, x: u32) -> bool {
        self.insert_tuned(x, SMALL_THRESHOLD, SMALL_PRESIZE)
    }

    /// Inserts `x` with explicit layout knobs: `spill_threshold` is the
    /// inline-vector length at which the set spills to the hash-backed
    /// representation, `first_reserve` the capacity reserved by the first
    /// insertion into an empty inline vector.
    ///
    /// The knobs only move memory layout and wall time: membership, counts,
    /// probe-model `comparisons`, and iteration *sets* (not order) are
    /// identical for every setting, so tuning them can never change a
    /// reported number.  A `spill_threshold` of zero is treated as one.
    pub fn insert_tuned(&mut self, x: u32, spill_threshold: usize, first_reserve: usize) -> bool {
        match self {
            AdjacencySet::Small(v) => {
                if v.contains(&x) {
                    return false;
                }
                let spill = spill_threshold.max(1);
                if v.len() >= spill {
                    let mut large = LargeSet::with_capacity(spill * 2);
                    large.set.extend(v.iter().copied());
                    large.set.insert(x);
                    *self = AdjacencySet::Large(Box::new(large));
                } else {
                    if v.capacity() == 0 && first_reserve > 0 {
                        v.reserve(first_reserve);
                    }
                    v.push(x);
                }
                true
            }
            AdjacencySet::Large(s) => {
                let inserted = s.set.insert(x);
                if inserted {
                    s.invalidate();
                }
                inserted
            }
        }
    }

    /// Removes `x`; returns `true` if it was present.
    pub fn remove(&mut self, x: u32) -> bool {
        match self {
            AdjacencySet::Small(v) => {
                if let Some(pos) = v.iter().position(|&y| y == x) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            AdjacencySet::Large(s) => {
                let removed = s.set.remove(&x);
                if removed {
                    s.invalidate();
                }
                removed
            }
        }
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        match self {
            AdjacencySet::Small(v) => v.clear(),
            AdjacencySet::Large(s) => {
                s.set.clear();
                s.invalidate();
            }
        }
    }

    /// Iterates over the neighbors in unspecified order.
    pub fn iter(&self) -> AdjacencyIter<'_> {
        match self {
            AdjacencySet::Small(v) => AdjacencyIter::Small(v.iter()),
            // lint:allow(hash-iter): this IS the documented unordered primitive; order-sensitive callers go through sorted()
            AdjacencySet::Large(s) => AdjacencyIter::Large(s.set.iter()),
        }
    }

    /// Forces the hash-backed [`Large`](AdjacencySet::Large) representation,
    /// regardless of the current size.
    ///
    /// The representation is history-dependent (a set that ever crossed
    /// [`SMALL_THRESHOLD`] stays `Large` even after shrinking), so rebuilding
    /// a graph from its surviving edges alone would not reproduce it.  The
    /// durable-state codecs record which sets are `Large` and call this after
    /// reinsertion, restoring the exact representation — and with it the
    /// kernel choices and memory accounting — of the checkpointed run.
    /// Idempotent; a no-op on sets that are already `Large`.
    pub fn promote(&mut self) {
        if let AdjacencySet::Small(v) = self {
            let mut large = LargeSet::with_capacity(v.len().max(SMALL_THRESHOLD * 2));
            large.set.extend(v.iter().copied());
            *self = AdjacencySet::Large(Box::new(large));
        }
    }

    /// The large-set representation, if this set has been promoted.
    ///
    /// The intersection kernels use this to reach the memoised sorted copy
    /// without exposing the representation choice anywhere else.
    #[must_use]
    pub fn as_large(&self) -> Option<&LargeSet> {
        match self {
            AdjacencySet::Small(_) => None,
            AdjacencySet::Large(s) => Some(s),
        }
    }

    /// Returns the neighbors as a freshly sorted vector (test / debugging aid
    /// and input for the sorted-merge intersection ablation).
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.iter().collect();
        v.sort_unstable();
        v
    }

    /// Approximate heap footprint in bytes (used for memory accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            AdjacencySet::Small(v) => v.capacity() * size_of::<u32>(),
            // A hashbrown bucket stores the element plus one control byte and
            // the table is at most ~8/7 over-allocated; 8 bytes/entry of
            // capacity is a serviceable estimate for accounting purposes.
            // The memoised sorted copy is accounted only once built.
            AdjacencySet::Large(s) => {
                size_of::<LargeSet>()
                    + s.set.capacity() * 8
                    + s.sorted
                        .get()
                        .map_or(0, |v| v.capacity() * size_of::<u32>())
            }
        }
    }
}

impl FromIterator<u32> for AdjacencySet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut set = AdjacencySet::new();
        for x in iter {
            set.insert(x);
        }
        set
    }
}

impl<'a> IntoIterator for &'a AdjacencySet {
    type Item = u32;
    type IntoIter = AdjacencyIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the elements of an [`AdjacencySet`].
pub enum AdjacencyIter<'a> {
    /// Iterating the vector representation.
    Small(std::slice::Iter<'a, u32>),
    /// Iterating the hash-set representation.
    Large(hash_set::Iter<'a, u32>),
}

impl Iterator for AdjacencyIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            AdjacencyIter::Small(it) => it.next().copied(),
            AdjacencyIter::Large(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            AdjacencyIter::Small(it) => it.size_hint(),
            AdjacencyIter::Large(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for AdjacencyIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn first_insert_presizes_the_small_vector() {
        let mut s = AdjacencySet::new();
        assert!(s.insert(1));
        let AdjacencySet::Small(v) = &s else {
            panic!("one element must stay Small");
        };
        assert!(v.capacity() >= SMALL_PRESIZE);
    }

    #[test]
    fn sorted_cache_len_peeks_without_building() {
        let s: AdjacencySet = (0..80u32).collect();
        let large = s.as_large().expect("80 elements must be Large");
        assert_eq!(large.sorted_cache_len(), None);
        let _ = large.sorted();
        assert_eq!(large.sorted_cache_len(), Some(80));
    }

    #[test]
    fn insert_contains_remove_small() {
        let mut s = AdjacencySet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(9));
        assert_eq!(s.len(), 2);
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
        assert!(matches!(s, AdjacencySet::Small(_)));
    }

    #[test]
    fn promotes_to_large_beyond_threshold() {
        let mut s = AdjacencySet::new();
        for i in 0..(SMALL_THRESHOLD as u32 + 5) {
            assert!(s.insert(i));
        }
        assert!(matches!(s, AdjacencySet::Large(_)));
        assert_eq!(s.len(), SMALL_THRESHOLD + 5);
        for i in 0..(SMALL_THRESHOLD as u32 + 5) {
            assert!(s.contains(i));
        }
        assert!(!s.contains(SMALL_THRESHOLD as u32 + 5));
    }

    #[test]
    fn promotion_preserves_all_elements_and_uniqueness() {
        let mut s = AdjacencySet::new();
        // Insert duplicates around the promotion boundary.
        for i in 0..(SMALL_THRESHOLD as u32 * 2) {
            s.insert(i % (SMALL_THRESHOLD as u32 + 3));
        }
        let sorted = s.to_sorted_vec();
        let expected: Vec<u32> = (0..(SMALL_THRESHOLD as u32 + 3)).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn promote_forces_large_and_is_idempotent() {
        let mut s: AdjacencySet = (0..5u32).collect();
        assert!(matches!(s, AdjacencySet::Small(_)));
        s.promote();
        assert!(matches!(s, AdjacencySet::Large(_)));
        assert_eq!(s.to_sorted_vec(), vec![0, 1, 2, 3, 4]);
        // A second promotion (and promoting an organically Large set) is a
        // no-op that keeps the elements intact.
        s.promote();
        assert_eq!(s.len(), 5);
        let mut hub: AdjacencySet = (0..100u32).collect();
        hub.promote();
        assert_eq!(hub.len(), 100);
    }

    #[test]
    fn with_capacity_picks_representation() {
        assert!(matches!(
            AdjacencySet::with_capacity(4),
            AdjacencySet::Small(_)
        ));
        assert!(matches!(
            AdjacencySet::with_capacity(SMALL_THRESHOLD * 4),
            AdjacencySet::Large(_)
        ));
    }

    #[test]
    fn clear_keeps_working() {
        let mut s: AdjacencySet = (0..10u32).collect();
        s.clear();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iterator_yields_each_element_once() {
        let s: AdjacencySet = (0..100u32).collect();
        let seen: BTreeSet<u32> = s.iter().collect();
        assert_eq!(seen.len(), 100);
        assert_eq!(s.iter().len(), 100);
    }

    #[test]
    fn sorted_cache_is_built_lazily_and_invalidated_on_mutation() {
        let mut s: AdjacencySet = (0..80u32).rev().collect();
        let large = s.as_large().expect("80 elements must be Large");
        let expected: Vec<u32> = (0..80).collect();
        assert_eq!(large.sorted(), &expected[..]);

        s.insert(200);
        let mut expected: Vec<u32> = (0..80).collect();
        expected.push(200);
        assert_eq!(s.as_large().unwrap().sorted(), &expected[..]);

        s.remove(0);
        assert_eq!(s.as_large().unwrap().sorted(), &expected[1..]);

        // Failed mutations keep the cache.
        let before = s.as_large().unwrap().sorted().as_ptr();
        s.insert(200);
        s.remove(0);
        assert_eq!(s.as_large().unwrap().sorted().as_ptr(), before);

        assert!(AdjacencySet::new().as_large().is_none());
    }

    #[test]
    fn heap_bytes_is_monotone_in_size_class() {
        let small: AdjacencySet = (0..4u32).collect();
        let large: AdjacencySet = (0..1000u32).collect();
        assert!(small.heap_bytes() < large.heap_bytes());
    }

    proptest! {
        /// The hybrid set must behave exactly like a reference BTreeSet under
        /// an arbitrary interleaving of inserts and removes.
        #[test]
        fn behaves_like_reference_set(ops in proptest::collection::vec((any::<bool>(), 0u32..200), 0..500)) {
            let mut sut = AdjacencySet::new();
            let mut reference = BTreeSet::new();
            for (is_insert, x) in ops {
                if is_insert {
                    prop_assert_eq!(sut.insert(x), reference.insert(x));
                } else {
                    prop_assert_eq!(sut.remove(x), reference.remove(&x));
                }
                prop_assert_eq!(sut.len(), reference.len());
            }
            let got = sut.to_sorted_vec();
            let want: Vec<u32> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
