//! Persistence primitives shared by every durable-state codec in the
//! workspace: the typed [`PersistError`], a table-driven CRC32 (IEEE), and a
//! little-endian binary [`Encoder`] / [`Decoder`] pair.
//!
//! This crate sits at the bottom of the dependency stack, so the sampling,
//! stream, and core crates can all speak one error type and one byte format
//! without a dependency cycle.  The *formats* built on these primitives
//! (`ABSNAP1` estimator snapshots, the `ABWL1` write-ahead log) live next to
//! the state they serialize; this module only provides the plumbing they
//! share.
//!
//! Everything here fails closed: a truncated buffer, a trailing byte, a bad
//! magic string, or a checksum mismatch is a typed error, never a panic or a
//! silently wrong value.

use std::fmt;

pub mod format {
    //! The single registry of on-disk format magics and versions.
    //!
    //! Every durable artifact this workspace writes — binary stream segments,
    //! estimator snapshots, WAL segments, the committed watermark, the run
    //! manifest — introduces itself with a short ASCII magic.  Those magics
    //! (and the version bytes some formats carry after them) are defined
    //! HERE and nowhere else; `abacus-lint`'s `persist-format` rule rejects
    //! any re-spelled literal, so a reader and its writer can never drift
    //! apart on what bytes mark a valid file.

    /// One on-disk format: its magic string plus the format revision this
    /// build reads and writes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PersistFormat {
        /// The ASCII magic introducing the format.  By convention it ends in
        /// the format's generation digit (`ABST` + `1`).
        pub name: &'static str,
        /// The separate version byte written after the magic, for formats
        /// that carry one (currently only snapshots); `1` otherwise.
        pub version: u8,
    }

    impl PersistFormat {
        /// The magic as raw header bytes.
        #[must_use]
        pub const fn magic(&self) -> &'static [u8] {
            self.name.as_bytes()
        }

        /// Magic length in bytes (const, usable as an array length).
        #[must_use]
        pub const fn magic_len(&self) -> usize {
            self.name.len()
        }
    }

    /// Compact binary element-stream segments
    /// (`abacus_stream::binary::{BinarySource, BinaryStreamWriter}`).
    pub const STREAM_SEGMENT: PersistFormat = PersistFormat {
        name: "ABST1",
        version: 1,
    };

    /// Versioned estimator-state snapshots (`ButterflyCounter::save_state`).
    pub const SNAPSHOT: PersistFormat = PersistFormat {
        name: "ABSNAP1",
        version: 1,
    };

    /// Write-ahead-log segment files (`abacus_stream::persist::WalWriter`).
    pub const WAL_SEGMENT: PersistFormat = PersistFormat {
        name: "ABWL1",
        version: 1,
    };

    /// The committed-watermark file inside a checkpoint directory.
    pub const WATERMARK: PersistFormat = PersistFormat {
        name: "ABWM1",
        version: 1,
    };

    /// The run-manifest file inside a checkpoint directory.
    pub const MANIFEST: PersistFormat = PersistFormat {
        name: "ABMF1",
        version: 1,
    };
}

/// Errors surfaced by the durability subsystem (snapshots, WAL, recovery).
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file did not start with the expected magic string.
    BadMagic {
        /// The magic string the reader expected.
        expected: &'static str,
        /// The bytes actually found (possibly short).
        found: Vec<u8>,
    },
    /// A file carried a format version this build does not understand.
    BadVersion {
        /// The highest version the reader supports.
        expected: u8,
        /// The version byte actually found.
        found: u8,
    },
    /// The payload ended before a complete record/section could be read.
    Truncated(String),
    /// The payload is structurally invalid or failed its checksum.
    Corrupt(String),
    /// Replay found a hole or overlap in the element sequence.
    Gap {
        /// The sequence number replay expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// The estimator does not implement durable state (named for messages).
    Unsupported(&'static str),
    /// An internal invariant did not hold.  This indicates a bug; the
    /// panic-policy surfaces it as a typed error instead of a panic so
    /// durability paths fail closed rather than crashing a supervisor.
    Invariant(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic { expected, found } => {
                write!(f, "bad magic {found:?}, expected {expected:?}")
            }
            PersistError::BadVersion { expected, found } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads version {expected})"
                )
            }
            PersistError::Truncated(what) => write!(f, "truncated data: {what}"),
            PersistError::Corrupt(what) => write!(f, "corrupt data: {what}"),
            PersistError::Gap { expected, found } => {
                write!(
                    f,
                    "sequence gap: expected element {expected}, found {found}"
                )
            }
            PersistError::Unsupported(name) => {
                write!(f, "estimator {name} does not support durable state")
            }
            PersistError::Invariant(what) => {
                write!(f, "internal invariant violated (bug): {what}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// computed at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum guarding every snapshot section
/// and every sealed WAL segment.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finalize()
}

/// An incremental CRC32 (IEEE) hasher, for writers that stream bytes out
/// (the WAL appends records one at a time and seals with the digest).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            let index = ((self.state ^ u32::from(byte)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC32_TABLE[index];
        }
    }

    /// The digest of everything fed so far (the hasher stays usable).
    #[must_use]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// A little-endian binary encoder over a growable byte buffer.
///
/// The durable formats are all fixed-width little-endian (counts as `u64`,
/// floats as their IEEE 754 bit patterns) — trivially portable and, unlike a
/// varint encoding, byte-for-byte reproducible from equal state, which is
/// what the recovery parity suite compares.
#[derive(Debug, Default)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// The encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The reader half of [`Encoder`]; every accessor fails closed on a short
/// buffer, and [`expect_end`](Decoder::expect_end) rejects trailing garbage.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, offset: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated(format!(
                "needed {n} bytes for {what}, only {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] if the buffer is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let raw = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let raw = self.take(8, "u64")?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] on a short buffer,
    /// [`PersistError::Corrupt`] if the value does not fit a `usize`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| PersistError::Corrupt("count exceeds the address space".into()))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] if fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        self.take(n, "raw bytes")
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] / [`PersistError::Corrupt`] on short or
    /// implausible buffers.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(PersistError::Truncated(format!(
                "length prefix {len} exceeds the {} bytes left",
                self.remaining()
            )));
        }
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// As [`get_bytes`](Decoder::get_bytes), plus [`PersistError::Corrupt`]
    /// on invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, PersistError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| PersistError::Corrupt("string is not valid UTF-8".into()))
    }

    /// Asserts every byte was consumed.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abacus"), crc32(b"abacut"));
    }

    #[test]
    fn incremental_crc_matches_one_shot() {
        let mut hasher = Crc32::new();
        hasher.update(b"1234");
        hasher.update(b"");
        hasher.update(b"56789");
        assert_eq!(hasher.finalize(), crc32(b"123456789"));
        // finalize() is non-destructive.
        assert_eq!(hasher.finalize(), crc32(b"123456789"));
    }

    #[test]
    fn encoder_decoder_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 3);
        enc.put_usize(42);
        enc.put_f64(-0.125);
        enc.put_bytes(b"payload");
        enc.put_str("name");
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.get_usize().unwrap(), 42);
        assert_eq!(dec.get_f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(dec.get_bytes().unwrap(), b"payload");
        assert_eq!(dec.get_str().unwrap(), "name");
        dec.expect_end().unwrap();
    }

    #[test]
    fn short_buffers_fail_closed() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        assert!(matches!(dec.get_u64(), Err(PersistError::Truncated(_))));
        // A length prefix pointing past the end is truncation, not a panic.
        let mut enc = Encoder::new();
        enc.put_usize(1_000);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_bytes(), Err(PersistError::Truncated(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(1);
        enc.put_u8(2);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        dec.get_u8().unwrap();
        assert!(matches!(dec.expect_end(), Err(PersistError::Corrupt(_))));
        dec.get_u8().unwrap();
        dec.expect_end().unwrap();
    }

    #[test]
    fn errors_render_their_context() {
        let gap = PersistError::Gap {
            expected: 10,
            found: 20,
        };
        assert!(gap.to_string().contains("expected element 10"));
        let magic = PersistError::BadMagic {
            expected: format::WAL_SEGMENT.name,
            found: vec![0, 1],
        };
        assert!(magic.to_string().contains(format::WAL_SEGMENT.name));
        assert!(PersistError::Unsupported("STUB")
            .to_string()
            .contains("STUB"));
    }
}
