//! Per-edge butterfly counting (Algorithm 1, lines 7–11).
//!
//! Given an edge `{u, v}` (which may or may not be part of the underlying
//! graph yet), the kernel counts the butterflies that `{u, v}` forms together
//! with three other edges of a *neighborhood view*: for every neighbor `w` of
//! `u` in the view (excluding `v`), every common neighbor `x` of `w` and `v`
//! (excluding `u`) completes the butterfly `{u, v, w, x}` through the edges
//! `{u, w}`, `{w, x}`, `{x, v}`.
//!
//! ABACUS runs this kernel against its bounded sample, the exact oracle runs
//! it against the full graph, FLEET runs it against its reservoir, and
//! PARABACUS runs it against a *versioned* sample view — hence the kernel is
//! generic over the [`NeighborhoodView`] trait instead of a concrete graph
//! type.
//!
//! The *cheapest-side heuristic* (line 7) picks which endpoint's neighborhood
//! to iterate: the one whose neighbors have the smaller cumulative degree, so
//! that the set intersections probe the smaller sets.

use crate::bipartite::BipartiteGraph;
use crate::edge::Edge;
use crate::fxhash::FxHashMap;
use crate::intersect::IntersectionResult;
use crate::vertex::VertexRef;

/// Read-only access to vertex neighborhoods, abstracting over the full graph,
/// the bounded sample, and versioned sample views.
pub trait NeighborhoodView {
    /// Degree of `v` in the view (0 if absent).
    fn view_degree(&self, v: VertexRef) -> usize;

    /// Whether `neighbor` (a vertex on the opposite side) is adjacent to `v`.
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool;

    /// Calls `f` for every neighbor of `v` in the view.
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32));

    /// Cumulative degree of the neighbors of `v` (default: one pass over the
    /// neighborhood).  This is the quantity compared by the cheapest-side
    /// heuristic.
    fn view_neighbor_degree_sum(&self, v: VertexRef) -> usize {
        let mut sum = 0usize;
        let opposite = v.side.opposite();
        self.view_for_each_neighbor(v, &mut |x| {
            sum += self.view_degree(VertexRef::new(opposite, x));
        });
        sum
    }

    /// Counts `|N(a) ∩ N(b) \ {exclude}|` together with the number of
    /// membership probes performed.
    ///
    /// This is the innermost loop of the butterfly kernel (Algorithm 1,
    /// line 9), so implementors are encouraged to override the default with a
    /// version that resolves both neighborhoods once instead of re-resolving
    /// `a` and `b` for every probe.
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> IntersectionResult {
        let (iterate, probe) = if self.view_degree(a) <= self.view_degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let mut result = IntersectionResult::default();
        self.view_for_each_neighbor(iterate, &mut |x| {
            if x == exclude {
                return;
            }
            result.comparisons += 1;
            if self.view_contains(probe, x) {
                result.count += 1;
            }
        });
        result
    }
}

/// Outcome of the per-edge counting kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerEdgeCount {
    /// Number of butterflies the edge forms with edges of the view.
    pub butterflies: u64,
    /// Number of membership probes performed inside the set intersections
    /// (the workload unit reported per thread in Fig. 10 of the paper).
    pub comparisons: u64,
}

impl PerEdgeCount {
    /// Adds another per-edge result into this accumulator.
    #[inline]
    pub fn accumulate(&mut self, other: PerEdgeCount) {
        self.butterflies += other.butterflies;
        self.comparisons += other.comparisons;
    }
}

/// Which endpoint's neighborhood the kernel iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideChoice {
    /// Use the cheapest-side heuristic from the paper (default).
    Cheapest,
    /// Always iterate the neighbors of the *left* endpoint (ablation).
    IterateLeftNeighbors,
    /// Always iterate the neighbors of the *right* endpoint (ablation).
    IterateRightNeighbors,
}

/// Counts butterflies formed by `edge` with the edges of `view`, using the
/// cheapest-side heuristic.
#[inline]
#[must_use]
pub fn count_butterflies_with_edge<G: NeighborhoodView + ?Sized>(
    view: &G,
    edge: Edge,
) -> PerEdgeCount {
    count_butterflies_with_edge_choice(view, edge, SideChoice::Cheapest)
}

/// Counts butterflies formed by `edge` with the edges of `view` using an
/// explicit side choice (used by the heuristic ablation benchmark).
#[must_use]
pub fn count_butterflies_with_edge_choice<G: NeighborhoodView + ?Sized>(
    view: &G,
    edge: Edge,
    choice: SideChoice,
) -> PerEdgeCount {
    let u = edge.left_ref();
    let v = edge.right_ref();

    let iterate_left_endpoint = match choice {
        SideChoice::IterateLeftNeighbors => true,
        SideChoice::IterateRightNeighbors => false,
        SideChoice::Cheapest => {
            // Line 7: if the cumulative degree of u's neighbors is smaller,
            // "choose v", i.e. iterate the neighbors of u.
            view.view_neighbor_degree_sum(u) < view.view_neighbor_degree_sum(v)
        }
    };

    if iterate_left_endpoint {
        count_via_anchor(view, u, v)
    } else {
        count_via_anchor(view, v, u)
    }
}

/// Counts `Σ_{w ∈ N(anchor) \ {other}} |N(w) ∩ N(other) \ {anchor}|`.
fn count_via_anchor<G: NeighborhoodView + ?Sized>(
    view: &G,
    anchor: VertexRef,
    other: VertexRef,
) -> PerEdgeCount {
    let mut result = PerEdgeCount::default();
    if view.view_degree(other) == 0 {
        return result;
    }
    let wedge_side = anchor.side.opposite(); // side of w (same side as `other`)
    view.view_for_each_neighbor(anchor, &mut |w_id| {
        if w_id == other.id {
            return;
        }
        // Intersect N(w) with N(other), excluding the anchor itself.
        let w = VertexRef::new(wedge_side, w_id);
        let intersection = view.view_intersection_excluding(w, other, anchor.id);
        result.butterflies += intersection.count;
        result.comparisons += intersection.comparisons;
    });
    result
}

/// Calls `f(x, w)` once for every butterfly `{u, v, x, w}` that
/// `edge = {u, v}` forms with the edges of `view`: `w` ranges over the
/// right-side partners `N(u) \ {v}` and `x` over the left-side partners
/// `N(w) ∩ N(v) \ {u}`, so each butterfly is reported exactly once and the
/// number of callbacks equals
/// [`count_butterflies_with_edge`]`(view, edge).butterflies`.
///
/// This is the enumerating twin of the counting kernel: the delta-maintained
/// views ([`EdgeSupports`], `VertexButterflyCounts`) need the *identities* of
/// the three completing edges `{u, w}`, `{x, w}`, `{x, v}`, not just how many
/// butterflies the mutation touches.  Like the counting kernel it never looks
/// at `edge` itself, so the enumeration is identical whether `edge` is already
/// present in the view or not.
pub fn for_each_butterfly_with_edge<G: NeighborhoodView + ?Sized>(
    view: &G,
    edge: Edge,
    f: &mut dyn FnMut(u32, u32),
) {
    let u = edge.left_ref();
    let v = edge.right_ref();
    if view.view_degree(v) == 0 || view.view_degree(u) == 0 {
        return;
    }
    view.view_for_each_neighbor(u, &mut |w_id| {
        if w_id == edge.right {
            return;
        }
        let w = VertexRef::right(w_id);
        // Iterate the smaller of N(w) and N(v), probe the other; both sets
        // hold left-side vertices, so either order yields the partners `x`.
        let (iterate, probe) = if view.view_degree(w) <= view.view_degree(v) {
            (w, v)
        } else {
            (v, w)
        };
        view.view_for_each_neighbor(iterate, &mut |x| {
            if x != edge.left && view.view_contains(probe, x) {
                f(x, w_id);
            }
        });
    });
}

/// Delta-maintained butterfly support of every live edge.
///
/// The incremental counterpart of [`edge_supports`](crate::bitruss::edge_supports):
/// instead of recomputing the per-edge kernel over the whole graph after every
/// mutation, the map is patched with the butterflies the mutated edge
/// completes (as enumerated by [`for_each_butterfly_with_edge`] against the
/// pre-insert / post-delete graph, the same convention the streaming
/// estimators use).
///
/// Invariant: after a sequence of [`apply_insert`](Self::apply_insert) /
/// [`apply_delete`](Self::apply_delete) calls mirroring the graph's
/// mutations, the map equals `edge_supports` of the current graph bit for
/// bit — including live edges whose support is (or has dropped back to) zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeSupports {
    supports: FxHashMap<Edge, u64>,
}

impl EdgeSupports {
    /// Empty support map (matching an empty graph).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offline recomputation from scratch: the ground truth the incremental
    /// path must bit-match.
    #[must_use]
    pub fn recompute(graph: &BipartiteGraph) -> Self {
        EdgeSupports {
            supports: crate::bitruss::edge_supports(graph),
        }
    }

    /// Applies the insertion of `edge`, whose enumerated butterfly partners
    /// are `butterflies` (the `(x, w)` pairs reported by
    /// [`for_each_butterfly_with_edge`] against the graph *without* `edge`).
    ///
    /// The new edge enters with support `butterflies.len()`; each completing
    /// edge `{u, w}`, `{x, w}`, `{x, v}` gains one butterfly.
    pub fn apply_insert(&mut self, edge: Edge, butterflies: &[(u32, u32)]) {
        *self.supports.entry(edge).or_insert(0) += butterflies.len() as u64;
        for &(x, w) in butterflies {
            for other in [
                Edge::new(edge.left, w),
                Edge::new(x, w),
                Edge::new(x, edge.right),
            ] {
                *self.supports.entry(other).or_insert(0) += 1;
            }
        }
    }

    /// Applies the deletion of `edge`, whose enumerated butterfly partners are
    /// `butterflies` (reported against the graph *after* removing `edge`).
    ///
    /// The deleted edge leaves the map; each formerly completing edge loses
    /// one butterfly but stays tracked — live edges with support zero are part
    /// of the offline answer too.
    pub fn apply_delete(&mut self, edge: Edge, butterflies: &[(u32, u32)]) {
        self.supports.remove(&edge);
        for &(x, w) in butterflies {
            for other in [
                Edge::new(edge.left, w),
                Edge::new(x, w),
                Edge::new(x, edge.right),
            ] {
                if let Some(support) = self.supports.get_mut(&other) {
                    *support = support.saturating_sub(1);
                }
            }
        }
    }

    /// Support of one edge (`None` if the edge is not live).
    #[must_use]
    pub fn support(&self, edge: Edge) -> Option<u64> {
        self.supports.get(&edge).copied()
    }

    /// The full edge → support map.
    #[must_use]
    pub fn supports(&self) -> &FxHashMap<Edge, u64> {
        &self.supports
    }

    /// Number of live edges tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.supports.len()
    }

    /// `true` when no edges are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// Sum of all supports (four times the global butterfly count).
    #[must_use]
    pub fn total_support(&self) -> u128 {
        // lint:allow(hash-iter): u128 sum is order-insensitive
        self.supports.values().map(|&s| u128::from(s)).sum()
    }

    /// The edge with the largest support, ties broken by the larger edge key
    /// so the answer is deterministic across hash-map iteration orders.
    #[must_use]
    pub fn max_support(&self) -> Option<(Edge, u64)> {
        self.supports
            .iter()
            .map(|(&e, &s)| (e, s))
            .max_by_key(|&(e, s)| (s, e.key()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteGraph;

    fn graph(edges: &[(u32, u32)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(edges.iter().map(|&(l, r)| Edge::new(l, r)))
    }

    #[test]
    fn empty_view_yields_zero() {
        let g = BipartiteGraph::new();
        let r = count_butterflies_with_edge(&g, Edge::new(1, 2));
        assert_eq!(r.butterflies, 0);
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn single_butterfly_is_found_for_missing_edge() {
        // Sample holds {u=0-r=10 is the incoming edge}; stored edges complete
        // exactly one butterfly {0, 10, 1, 11}: (0,11), (1,10), (1,11).
        let g = graph(&[(0, 11), (1, 10), (1, 11)]);
        let r = count_butterflies_with_edge(&g, Edge::new(0, 10));
        assert_eq!(r.butterflies, 1);
    }

    #[test]
    fn counts_butterflies_containing_an_existing_edge() {
        // Complete 2x2 biclique: exactly one butterfly; each edge belongs to it.
        let g = graph(&[(0, 10), (0, 11), (1, 10), (1, 11)]);
        for &(l, r) in &[(0, 10), (0, 11), (1, 10), (1, 11)] {
            let c = count_butterflies_with_edge(&g, Edge::new(l, r));
            assert_eq!(c.butterflies, 1, "edge ({l},{r})");
        }
    }

    #[test]
    fn complete_biclique_counts() {
        // K_{3,3}: every new edge {u, v} with u,v fresh vertices forms no
        // butterfly, while an edge inside the biclique participates in
        // (3-1)*(3-1) = 4 butterflies.
        let mut edges = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                edges.push((l, r));
            }
        }
        let g = graph(&edges);
        let c = count_butterflies_with_edge(&g, Edge::new(0, 10));
        assert_eq!(c.butterflies, 4);
        let fresh = count_butterflies_with_edge(&g, Edge::new(7, 20));
        assert_eq!(fresh.butterflies, 0);
    }

    #[test]
    fn degenerate_wedges_are_excluded() {
        // Edge (0,10) plus a path 0-11, 1-11, 1-10.  The incoming edge (0,11)
        // must not count the wedge through its own endpoints twice.
        let g = graph(&[(0, 10), (1, 10), (1, 11)]);
        // Incoming edge (0, 11): butterflies {0,11,1,10} requires (0,10),(1,10),(1,11) — all present.
        let c = count_butterflies_with_edge(&g, Edge::new(0, 11));
        assert_eq!(c.butterflies, 1);
        // Incoming edge (0, 10) is already present; other butterfly edges absent.
        let c2 = count_butterflies_with_edge(&g, Edge::new(0, 10));
        assert_eq!(c2.butterflies, 0);
    }

    #[test]
    fn running_example_from_the_paper() {
        // Figure 1b: sample edges (black + red in the figure): v-l1, v-l2,
        // u-r2, l1-r2, plus extra sample edges l2-r1, l3-r3, l4-r4.
        // Incoming edge {u, v} forms exactly one butterfly {u, v, l1, r2}.
        // Encode: left partition = {l1=1, l2=2, l3=3, l4=4, u=5},
        //         right partition = {r1=11, r2=12, r3=13, r4=14, v=15}.
        let g = graph(&[
            (1, 15),
            (2, 15),
            (5, 12),
            (1, 12),
            (2, 11),
            (3, 13),
            (4, 14),
        ]);
        let c = count_butterflies_with_edge(&g, Edge::new(5, 15));
        assert_eq!(c.butterflies, 1);
    }

    #[test]
    fn all_side_choices_agree_on_the_count() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (0, 12),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (3, 12),
            (3, 10),
        ]);
        for &(l, r) in &[(0, 10), (1, 12), (2, 10), (3, 11), (4, 13)] {
            let e = Edge::new(l, r);
            let a = count_butterflies_with_edge_choice(&g, e, SideChoice::Cheapest).butterflies;
            let b = count_butterflies_with_edge_choice(&g, e, SideChoice::IterateLeftNeighbors)
                .butterflies;
            let c = count_butterflies_with_edge_choice(&g, e, SideChoice::IterateRightNeighbors)
                .butterflies;
            assert_eq!(a, b, "edge ({l},{r})");
            assert_eq!(b, c, "edge ({l},{r})");
        }
    }

    #[test]
    fn cheapest_side_never_does_more_probes_than_both_fixed_sides_min() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (0, 12),
            (0, 13),
            (1, 10),
            (2, 10),
            (3, 10),
            (1, 11),
            (2, 12),
        ]);
        let e = Edge::new(0, 10);
        let cheap = count_butterflies_with_edge_choice(&g, e, SideChoice::Cheapest).comparisons;
        let left =
            count_butterflies_with_edge_choice(&g, e, SideChoice::IterateLeftNeighbors).comparisons;
        let right = count_butterflies_with_edge_choice(&g, e, SideChoice::IterateRightNeighbors)
            .comparisons;
        assert!(cheap <= left.max(right));
    }

    #[test]
    fn neighbor_degree_sum_default_impl() {
        let g = graph(&[(0, 10), (0, 11), (1, 10)]);
        // Neighbors of L0 are R10 (deg 2) and R11 (deg 1) => 3.
        assert_eq!(g.view_neighbor_degree_sum(VertexRef::left(0)), 3);
        // Neighbors of R10 are L0 (deg 2) and L1 (deg 1) => 3.
        assert_eq!(g.view_neighbor_degree_sum(VertexRef::right(10)), 3);
        assert_eq!(g.view_neighbor_degree_sum(VertexRef::left(42)), 0);
    }

    fn enumerate(g: &BipartiteGraph, edge: Edge) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for_each_butterfly_with_edge(g, edge, &mut |x, w| pairs.push((x, w)));
        pairs
    }

    #[test]
    fn enumeration_agrees_with_the_counting_kernel() {
        let g = graph(&[
            (0, 10),
            (0, 11),
            (0, 12),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (3, 12),
            (3, 10),
        ]);
        for l in 0..5u32 {
            for r in 10..14u32 {
                let e = Edge::new(l, r);
                let pairs = enumerate(&g, e);
                let counted = count_butterflies_with_edge(&g, e).butterflies;
                assert_eq!(pairs.len() as u64, counted, "edge ({l},{r})");
                // Each reported pair completes a genuine butterfly, and no
                // butterfly is reported twice.
                let mut seen = pairs.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), pairs.len(), "edge ({l},{r})");
                for (x, w) in pairs {
                    assert_ne!(x, l);
                    assert_ne!(w, r);
                    assert!(g.has_edge(Edge::new(l, w)), "edge ({l},{r}) via {x},{w}");
                    assert!(g.has_edge(Edge::new(x, w)), "edge ({l},{r}) via {x},{w}");
                    assert!(g.has_edge(Edge::new(x, r)), "edge ({l},{r}) via {x},{w}");
                }
            }
        }
    }

    #[test]
    fn edge_supports_track_inserts_and_deletes_bit_exactly() {
        let script: &[(u32, u32)] = &[
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (0, 12),
            (3, 12),
            (3, 10),
        ];
        let mut g = BipartiteGraph::new();
        let mut supports = EdgeSupports::new();
        for &(l, r) in script {
            let e = Edge::new(l, r);
            let pairs = enumerate(&g, e); // pre-insert view
            supports.apply_insert(e, &pairs);
            g.insert_edge(e);
            assert_eq!(supports, EdgeSupports::recompute(&g), "after +({l},{r})");
        }
        for &(l, r) in &[(1, 11), (0, 10), (2, 12)] {
            let e = Edge::new(l, r);
            g.delete_edge(e);
            let pairs = enumerate(&g, e); // post-delete view
            supports.apply_delete(e, &pairs);
            assert_eq!(supports, EdgeSupports::recompute(&g), "after -({l},{r})");
        }
        assert_eq!(supports.len(), g.num_edges());
        assert_eq!(
            supports.total_support() % 4,
            0,
            "every butterfly is counted on four edges"
        );
    }

    #[test]
    fn edge_supports_accessors() {
        let g = graph(&[(0, 10), (0, 11), (1, 10), (1, 11)]);
        let supports = EdgeSupports::recompute(&g);
        assert!(!supports.is_empty());
        assert_eq!(supports.len(), 4);
        assert_eq!(supports.support(Edge::new(0, 10)), Some(1));
        assert_eq!(supports.support(Edge::new(7, 7)), None);
        assert_eq!(supports.total_support(), 4);
        let (edge, support) = supports.max_support().unwrap();
        assert_eq!(support, 1);
        // Deterministic tie-break: the largest edge key wins.
        assert_eq!(edge, Edge::new(1, 11));
    }
}
