//! Butterfly support and k-bitruss decomposition.
//!
//! The paper's introduction motivates per-edge butterfly counting through the
//! *k-bitruss*: the maximal subgraph in which every edge is contained in at
//! least `k` butterflies.  Bitruss decomposition (computing, for every edge,
//! the largest `k` such that the edge survives in the k-bitruss — its *bitruss
//! number*) is the standard peeling consumer of butterfly support and is used
//! for community and spam detection.
//!
//! The implementation follows the classic peeling strategy (Sariyüce & Pinar,
//! WSDM 2018; Wang et al., VLDB J. 2022): compute the butterfly support of
//! every edge, then repeatedly remove an edge of minimum support, decrementing
//! the support of the other three edges of every butterfly the removed edge
//! participated in.

use crate::bipartite::BipartiteGraph;
use crate::edge::Edge;
use crate::fxhash::FxHashMap;
use crate::intersect::intersect_into;
use crate::peredge::count_butterflies_with_edge;
use crate::vertex::VertexRef;
use std::collections::BTreeSet;

/// Butterfly support (number of butterflies containing each edge) of every
/// edge in the graph.
#[must_use]
pub fn edge_supports(graph: &BipartiteGraph) -> FxHashMap<Edge, u64> {
    graph
        .edges()
        .map(|edge| (edge, count_butterflies_with_edge(graph, edge).butterflies))
        .collect()
}

/// Result of a bitruss decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitrussDecomposition {
    /// The bitruss number of every edge of the input graph: the largest `k`
    /// such that the edge belongs to the k-bitruss.
    pub bitruss_numbers: FxHashMap<Edge, u64>,
}

impl BitrussDecomposition {
    /// The largest bitruss number present (0 for butterfly-free graphs).
    #[must_use]
    pub fn max_bitruss(&self) -> u64 {
        self.bitruss_numbers.values().copied().max().unwrap_or(0)
    }

    /// The edges of the `k`-bitruss: every edge whose bitruss number is ≥ `k`.
    #[must_use]
    pub fn k_bitruss_edges(&self, k: u64) -> Vec<Edge> {
        let mut edges: Vec<Edge> = self
            .bitruss_numbers
            .iter()
            .filter(|&(_, &number)| number >= k)
            .map(|(&edge, _)| edge)
            .collect();
        edges.sort_unstable();
        edges
    }

    /// The `k`-bitruss as a graph.
    #[must_use]
    pub fn k_bitruss_graph(&self, k: u64) -> BipartiteGraph {
        BipartiteGraph::from_edges(self.k_bitruss_edges(k))
    }

    /// Number of edges per bitruss tier, ascending by tier: the membership
    /// summary the delta circuit reports per batch.
    #[must_use]
    pub fn tier_sizes(&self) -> Vec<(u64, usize)> {
        let mut tiers: FxHashMap<u64, usize> = FxHashMap::default();
        // lint:allow(hash-iter): integer tier tallies are order-insensitive, and the result is sorted before returning
        for &number in self.bitruss_numbers.values() {
            *tiers.entry(number).or_insert(0) += 1;
        }
        let mut sizes: Vec<(u64, usize)> = tiers.into_iter().collect();
        sizes.sort_unstable();
        sizes
    }
}

/// Computes the bitruss number of every edge by bottom-up peeling.
///
/// Runs in `O(Σ_e support(e) + |E| log |E|)` using an ordered peeling set; the
/// support updates enumerate the butterflies of the peeled edge through set
/// intersections on the shrinking graph.
#[must_use]
pub fn bitruss_decomposition(graph: &BipartiteGraph) -> BitrussDecomposition {
    peel_from_supports(graph, edge_supports(graph))
}

/// [`bitruss_decomposition`] with the initial butterfly supports supplied by
/// the caller instead of recomputed from scratch.
///
/// `supports` must map exactly the edges of `graph` to their butterfly
/// supports — the invariant the delta-maintained
/// [`EdgeSupports`](crate::peredge::EdgeSupports) guarantees — so the peeling
/// (which is deterministic given the graph and supports) produces the same
/// decomposition as the offline path, without the `O(Σ d²)` support pass.
#[must_use]
pub fn peel_from_supports(
    graph: &BipartiteGraph,
    supports: FxHashMap<Edge, u64>,
) -> BitrussDecomposition {
    // Work on a mutable copy: edges are physically removed as they are peeled.
    let mut remaining = graph.clone();
    let mut supports = supports;

    // Ordered set of (support, edge) for O(log n) minimum extraction and
    // re-prioritisation.
    let mut queue: BTreeSet<(u64, Edge)> = supports.iter().map(|(&e, &s)| (s, e)).collect();
    let mut bitruss_numbers: FxHashMap<Edge, u64> = FxHashMap::default();
    let mut current_level = 0u64;
    let mut scratch = Vec::new();

    while let Some(&(support, edge)) = queue.iter().next() {
        queue.remove(&(support, edge));
        // The bitruss number is monotone along the peeling order.
        current_level = current_level.max(support);
        bitruss_numbers.insert(edge, current_level);

        // Enumerate the butterflies containing `edge` in the remaining graph
        // and decrement the supports of their other three edges.
        let u = edge.left_ref();
        let v = edge.right_ref();
        let wedge_candidates: Vec<u32> = remaining
            .neighbors(u)
            .map(|n| n.iter().filter(|&w| w != edge.right).collect())
            .unwrap_or_default();
        for w in wedge_candidates {
            let w_ref = VertexRef::right(w);
            let (Some(w_neighbors), Some(v_neighbors)) =
                (remaining.neighbors(w_ref), remaining.neighbors(v))
            else {
                continue;
            };
            intersect_into(w_neighbors, v_neighbors, edge.left, &mut scratch);
            let fourth_vertices = scratch.clone();
            for x in fourth_vertices {
                for other in [
                    Edge::new(edge.left, w),
                    Edge::new(x, w),
                    Edge::new(x, edge.right),
                ] {
                    if let Some(support_ref) = supports.get_mut(&other) {
                        let old = *support_ref;
                        let new = old.saturating_sub(1);
                        if queue.remove(&(old, other)) {
                            *support_ref = new;
                            queue.insert((new, other));
                        }
                    }
                }
            }
        }

        remaining.delete_edge(edge);
        supports.remove(&edge);
    }

    BitrussDecomposition { bitruss_numbers }
}

/// Delta-maintained bitruss-tier membership.
///
/// Bitruss numbers are a global fixpoint — a single edge mutation can cascade
/// through arbitrarily many tiers — so there is no cheap per-edge patch for
/// the decomposition itself.  What *can* be maintained incrementally is the
/// expensive first phase: the butterfly support of every live edge.  This
/// state wraps a delta-maintained [`EdgeSupports`](crate::peredge::EdgeSupports)
/// and runs only the peeling
/// phase ([`peel_from_supports`]) when a decomposition is requested, which is
/// deterministic given graph + supports and therefore bit-matches the offline
/// [`bitruss_decomposition`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitrussState {
    supports: crate::peredge::EdgeSupports,
}

impl BitrussState {
    /// State of an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offline recomputation of the supports from scratch.
    #[must_use]
    pub fn recompute(graph: &BipartiteGraph) -> Self {
        BitrussState {
            supports: crate::peredge::EdgeSupports::recompute(graph),
        }
    }

    /// Applies an edge insertion (see
    /// [`EdgeSupports::apply_insert`](crate::peredge::EdgeSupports::apply_insert)).
    pub fn apply_insert(&mut self, edge: Edge, butterflies: &[(u32, u32)]) {
        self.supports.apply_insert(edge, butterflies);
    }

    /// Applies an edge deletion (see
    /// [`EdgeSupports::apply_delete`](crate::peredge::EdgeSupports::apply_delete)).
    pub fn apply_delete(&mut self, edge: Edge, butterflies: &[(u32, u32)]) {
        self.supports.apply_delete(edge, butterflies);
    }

    /// The maintained per-edge supports.
    #[must_use]
    pub fn supports(&self) -> &crate::peredge::EdgeSupports {
        &self.supports
    }

    /// Peels the maintained supports into a full bitruss decomposition of
    /// `graph` (which must be the graph the supports were maintained
    /// against).
    #[must_use]
    pub fn decomposition(&self, graph: &BipartiteGraph) -> BitrussDecomposition {
        peel_from_supports(graph, self.supports.supports().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_butterflies;
    use proptest::prelude::*;

    fn graph(edges: &[(u32, u32)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(edges.iter().map(|&(l, r)| Edge::new(l, r)))
    }

    /// Reference implementation: the k-bitruss is the fixpoint of repeatedly
    /// deleting edges with support < k.
    fn naive_k_bitruss(graph: &BipartiteGraph, k: u64) -> Vec<Edge> {
        let mut current = graph.clone();
        loop {
            let to_remove: Vec<Edge> = current
                .edges()
                .filter(|&e| count_butterflies_with_edge(&current, e).butterflies < k)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for e in to_remove {
                current.delete_edge(e);
            }
        }
        let mut edges: Vec<Edge> = current.edges().collect();
        edges.sort_unstable();
        edges
    }

    #[test]
    fn supports_of_a_single_butterfly() {
        let g = graph(&[(0, 10), (0, 11), (1, 10), (1, 11)]);
        let supports = edge_supports(&g);
        assert_eq!(supports.len(), 4);
        assert!(supports.values().all(|&s| s == 1));
    }

    #[test]
    fn butterfly_free_graph_has_zero_bitruss() {
        let g = graph(&[(0, 10), (1, 10), (1, 11), (2, 11)]);
        let decomposition = bitruss_decomposition(&g);
        assert_eq!(decomposition.max_bitruss(), 0);
        assert_eq!(decomposition.k_bitruss_edges(1), Vec::<Edge>::new());
        assert_eq!(decomposition.bitruss_numbers.len(), 4);
    }

    #[test]
    fn complete_biclique_bitruss_numbers() {
        // In K_{3,3} every edge lies in (3-1)*(3-1) = 4 butterflies, and the
        // graph is its own 4-bitruss.
        let mut edges = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                edges.push((l, r));
            }
        }
        let g = graph(&edges);
        let decomposition = bitruss_decomposition(&g);
        assert_eq!(decomposition.max_bitruss(), 4);
        assert!(decomposition.bitruss_numbers.values().all(|&k| k == 4));
        assert_eq!(decomposition.k_bitruss_edges(4).len(), 9);
        assert_eq!(decomposition.k_bitruss_edges(5).len(), 0);
        assert_eq!(decomposition.k_bitruss_graph(4).num_edges(), 9);
    }

    #[test]
    fn dense_core_survives_peeling_of_a_sparse_fringe() {
        // A K_{3,3} core plus pendant edges that belong to no butterfly.
        let mut edges = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                edges.push((l, r));
            }
        }
        edges.extend_from_slice(&[(7, 10), (8, 11), (0, 99)]);
        let g = graph(&edges);
        let decomposition = bitruss_decomposition(&g);
        // Fringe edges have bitruss number 0, the core keeps 4.
        assert_eq!(decomposition.bitruss_numbers[&Edge::new(7, 10)], 0);
        assert_eq!(decomposition.bitruss_numbers[&Edge::new(0, 99)], 0);
        assert_eq!(decomposition.k_bitruss_edges(1).len(), 9);
        let core = decomposition.k_bitruss_graph(4);
        assert_eq!(core.num_edges(), 9);
        assert_eq!(count_butterflies(&core), 9);
    }

    #[test]
    fn tier_sizes_summarise_the_decomposition() {
        // K_{3,3} core (bitruss 4) plus two pendant edges (bitruss 0).
        let mut edges = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                edges.push((l, r));
            }
        }
        edges.extend_from_slice(&[(7, 10), (0, 99)]);
        let decomposition = bitruss_decomposition(&graph(&edges));
        assert_eq!(decomposition.tier_sizes(), vec![(0, 2), (4, 9)]);
        assert!(BitrussDecomposition::default().tier_sizes().is_empty());
    }

    #[test]
    fn delta_maintained_state_peels_to_the_offline_decomposition() {
        let script: &[(u32, u32)] = &[
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
            (2, 11),
            (2, 12),
            (0, 12),
            (3, 12),
            (3, 10),
        ];
        let mut g = BipartiteGraph::new();
        let mut state = BitrussState::new();
        for &(l, r) in script {
            let e = Edge::new(l, r);
            let mut pairs = Vec::new();
            crate::peredge::for_each_butterfly_with_edge(&g, e, &mut |x, w| pairs.push((x, w)));
            state.apply_insert(e, &pairs);
            g.insert_edge(e);
        }
        for &(l, r) in &[(1, 11), (0, 12)] {
            let e = Edge::new(l, r);
            g.delete_edge(e);
            let mut pairs = Vec::new();
            crate::peredge::for_each_butterfly_with_edge(&g, e, &mut |x, w| pairs.push((x, w)));
            state.apply_delete(e, &pairs);
        }
        assert_eq!(state, BitrussState::recompute(&g));
        let incremental = state.decomposition(&g);
        let offline = bitruss_decomposition(&g);
        assert_eq!(incremental.bitruss_numbers, offline.bitruss_numbers);
        assert_eq!(incremental.tier_sizes(), offline.tier_sizes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The k-bitruss derived from the decomposition's bitruss numbers must
        /// equal the fixpoint computed by naive repeated deletion, for every k
        /// up to the maximum support.
        #[test]
        fn decomposition_matches_naive_peeling(
            edges in proptest::collection::btree_set((0u32..7, 0u32..7), 0..30),
        ) {
            let g = graph(&edges.iter().copied().collect::<Vec<_>>());
            let decomposition = bitruss_decomposition(&g);
            let max_k = decomposition.max_bitruss().min(6);
            for k in 1..=max_k.max(1) {
                let fast = decomposition.k_bitruss_edges(k);
                let slow = naive_k_bitruss(&g, k);
                prop_assert_eq!(&fast, &slow, "k = {}", k);
            }
        }
    }
}
