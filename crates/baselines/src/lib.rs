//! # abacus-baselines
//!
//! The state-of-the-art *insert-only* butterfly estimators the paper compares
//! against:
//!
//! * [`fleet`] — FLEET3 (Sanei-Mehri et al., CIKM 2019): adaptive Bernoulli
//!   reservoir with γ-resizing and a `1/p³` extrapolation per discovered
//!   butterfly,
//! * [`cas`] — CAS (Li et al., TKDE 2022): a co-affiliation sampling scheme
//!   that splits its memory between an edge reservoir and an AMS-style
//!   sketch (ratio λ),
//! * [`sketch`] — the AMS second-moment sketch used by CAS.
//!
//! Both baselines silently drop edge deletions — exactly as the original
//! systems do — which is what produces the accuracy gap measured in Fig. 3 of
//! the paper.  See `DESIGN.md` §3 for the re-implementation caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cas;
pub mod fleet;
pub mod sketch;

pub use cas::{Cas, CasConfig};
pub use fleet::{Fleet, FleetConfig};
pub use sketch::AmsSketch;
