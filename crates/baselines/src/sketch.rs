//! AMS (Alon–Matias–Szegedy) second-moment sketch.
//!
//! CAS devotes a fraction λ of its memory to sketches that summarise the
//! wedge structure of the stream.  The workhorse is the classic AMS sketch:
//! every key is mapped, per estimator row, to a ±1 sign; the sketch maintains
//! the signed sum of updates per row and estimates the second moment
//! `F₂ = Σ_key f_key²` as the median of the squared row sums (averaged over
//! buckets within a row for variance reduction).
//!
//! The second moment of the *left-vertex frequency vector* of an edge stream
//! is `Σ_u d_u²`, from which the total wedge count `Σ_u d_u(d_u−1)/2` follows
//! directly — the quantity CAS combines with its edge reservoir.

use abacus_graph::fxhash::FxHasher;
use std::hash::{Hash, Hasher};

/// An AMS second-moment sketch with `rows × buckets` counters.
#[derive(Debug, Clone)]
pub struct AmsSketch {
    rows: usize,
    buckets: usize,
    counters: Vec<i64>,
    total_updates: u64,
}

impl AmsSketch {
    /// Creates a sketch with the given number of independent rows and buckets
    /// per row.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, buckets: usize) -> Self {
        assert!(rows >= 1, "at least one row is required");
        assert!(buckets >= 1, "at least one bucket is required");
        AmsSketch {
            rows,
            buckets,
            counters: vec![0; rows * buckets],
            total_updates: 0,
        }
    }

    /// Creates a sketch that fits a memory budget expressed in "equivalent
    /// stored edges" (each counter is charged like one stored edge, following
    /// the paper's like-for-like memory accounting), split across 4 rows.
    #[must_use]
    pub fn with_edge_budget(equivalent_edges: usize) -> Self {
        let rows = 4;
        let buckets = (equivalent_edges / rows).max(1);
        Self::new(rows, buckets)
    }

    /// Rebuilds a sketch from previously captured state — the
    /// checkpoint/restore path.
    ///
    /// # Panics
    /// Panics if either dimension is zero or `counters` does not hold exactly
    /// `rows × buckets` values.
    #[must_use]
    pub fn from_state(rows: usize, buckets: usize, counters: Vec<i64>, total_updates: u64) -> Self {
        assert!(rows >= 1, "at least one row is required");
        assert!(buckets >= 1, "at least one bucket is required");
        assert_eq!(
            counters.len(),
            rows * buckets,
            "counter vector must match the sketch dimensions"
        );
        AmsSketch {
            rows,
            buckets,
            counters,
            total_updates,
        }
    }

    /// The raw counter values in row-major order.
    #[must_use]
    pub fn counter_values(&self) -> &[i64] {
        &self.counters
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of buckets per row.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Total number of counters (memory footprint in counter units).
    #[must_use]
    pub fn counters(&self) -> usize {
        self.counters.len()
    }

    /// Number of updates applied.
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    fn hash_pair<K: Hash>(&self, row: usize, key: &K) -> (usize, i64) {
        let mut hasher = FxHasher::default();
        (row as u64).hash(&mut hasher);
        key.hash(&mut hasher);
        let h = hasher.finish();
        let bucket = (h % self.buckets as u64) as usize;
        // An independent bit decides the sign.
        let sign = if (h >> 37) & 1 == 1 { 1 } else { -1 };
        (bucket, sign)
    }

    /// Adds `weight` occurrences of `key`.
    pub fn update<K: Hash>(&mut self, key: &K, weight: i64) {
        self.total_updates += 1;
        for row in 0..self.rows {
            let (bucket, sign) = self.hash_pair(row, key);
            self.counters[row * self.buckets + bucket] += sign * weight;
        }
    }

    /// Estimates the second moment `Σ_key f_key²` of the update frequency
    /// vector as the median over rows of the per-row sum of squared counters.
    #[must_use]
    pub fn second_moment(&self) -> f64 {
        let mut row_estimates: Vec<f64> = (0..self.rows)
            .map(|row| {
                self.counters[row * self.buckets..(row + 1) * self.buckets]
                    .iter()
                    .map(|&c| (c as f64) * (c as f64))
                    .sum::<f64>()
            })
            .collect();
        row_estimates.sort_by(f64::total_cmp);
        let mid = row_estimates.len() / 2;
        if row_estimates.len() % 2 == 1 {
            row_estimates[mid]
        } else {
            (row_estimates[mid - 1] + row_estimates[mid]) / 2.0
        }
    }

    /// Estimates the number of wedges `Σ_key C(f_key, 2)` from the second
    /// moment and the total number of updates (`Σ f_key`).
    #[must_use]
    pub fn estimated_wedges(&self) -> f64 {
        ((self.second_moment() - self.total_updates as f64) / 2.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_f2(frequencies: &[(u32, u64)]) -> f64 {
        frequencies.iter().map(|&(_, f)| (f * f) as f64).sum()
    }

    #[test]
    fn dimensions_and_accessors() {
        let sketch = AmsSketch::new(4, 32);
        assert_eq!(sketch.rows(), 4);
        assert_eq!(sketch.buckets(), 32);
        assert_eq!(sketch.counters(), 128);
        assert_eq!(sketch.total_updates(), 0);
        let budgeted = AmsSketch::with_edge_budget(100);
        assert_eq!(budgeted.counters(), 100); // 4 rows * 25 buckets
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let sketch = AmsSketch::new(3, 8);
        assert_eq!(sketch.second_moment(), 0.0);
        assert_eq!(sketch.estimated_wedges(), 0.0);
    }

    #[test]
    fn second_moment_is_estimated_within_tolerance() {
        // Skewed frequency vector: key i appears (i+1)² times for i in 0..20.
        let frequencies: Vec<(u32, u64)> = (0..20u32)
            .map(|i| (i, u64::from(i + 1) * u64::from(i + 1)))
            .collect();
        let mut sketch = AmsSketch::new(8, 256);
        for &(key, f) in &frequencies {
            for _ in 0..f {
                sketch.update(&key, 1);
            }
        }
        let exact = exact_f2(&frequencies);
        let estimate = sketch.second_moment();
        let relative = (estimate - exact).abs() / exact;
        assert!(relative < 0.35, "estimate {estimate} vs exact {exact}");
    }

    #[test]
    fn wedge_estimate_matches_exact_on_simple_input() {
        // 5 keys, each with frequency 4: wedges = 5 * C(4,2) = 30.
        let mut sketch = AmsSketch::new(8, 512);
        for key in 0..5u32 {
            for _ in 0..4 {
                sketch.update(&key, 1);
            }
        }
        let wedges = sketch.estimated_wedges();
        assert!((wedges - 30.0).abs() < 15.0, "wedges {wedges}");
        assert_eq!(sketch.total_updates(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = AmsSketch::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = AmsSketch::new(2, 0);
    }
}
