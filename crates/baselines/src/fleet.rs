//! FLEET3 (Sanei-Mehri, Zhang, Sariyüce, Tirthapura — CIKM 2019).
//!
//! FLEET estimates butterfly counts over *insert-only* bipartite graph
//! streams with a fixed memory budget:
//!
//! * every arriving edge is counted against the current reservoir (the same
//!   per-edge kernel ABACUS uses) and each discovered butterfly contributes
//!   `1/p³` to the estimate, where `p` is the current admission probability —
//!   the probability that each of the three complementary edges survived into
//!   the reservoir,
//! * the edge is then admitted to the reservoir with probability `p`,
//! * whenever the reservoir fills up, it is resized: every stored edge is kept
//!   independently with probability γ (0.75, the value recommended and used in
//!   the paper) and `p ← γ·p`.
//!
//! Deletions are **ignored** (the original algorithm has no concept of them);
//! the estimator exposes how many were dropped so experiments can report it.

use abacus_graph::count_butterflies_with_edge;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_metrics::ProcessingStats;
use abacus_sampling::SampleGraph;
use abacus_sampling::{AdaptiveBernoulli, SampleStore};
use abacus_stream::ButterflyCounter;
use abacus_stream::{EdgeDelta, StreamElement};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the FLEET3 baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Reservoir capacity (edges).
    pub capacity: usize,
    /// Resize factor γ ∈ (0, 1); the paper proposes 0.75.
    pub gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FleetConfig {
    /// Creates a configuration with the paper's γ = 0.75.
    ///
    /// # Panics
    /// Panics if `capacity < 2`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity >= 2,
            "FLEET requires a capacity of at least 2 edges"
        );
        FleetConfig {
            capacity,
            gamma: 0.75,
            seed: 0,
        }
    }

    /// Returns the configuration with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different resize factor.
    ///
    /// # Panics
    /// Panics if γ is outside `(0, 1)`.
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0, 1)");
        self.gamma = gamma;
        self
    }
}

/// The FLEET3 estimator.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    sample: SampleGraph,
    policy: AdaptiveBernoulli,
    rng: StdRng,
    estimate: f64,
    stats: ProcessingStats,
    ignored_deletions: u64,
}

impl Fleet {
    /// Creates the estimator.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        Fleet {
            config,
            sample: SampleGraph::with_budget(config.capacity),
            policy: AdaptiveBernoulli::new(config.capacity, config.gamma),
            rng: StdRng::seed_from_u64(config.seed),
            estimate: 0.0,
            stats: ProcessingStats::default(),
            ignored_deletions: 0,
        }
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Current admission probability `p`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.policy.probability()
    }

    /// Number of reservoir resize events so far.
    #[must_use]
    pub fn resizes(&self) -> usize {
        self.policy.resizes()
    }

    /// Number of deletions that were dropped because FLEET cannot handle them.
    #[must_use]
    pub fn ignored_deletions(&self) -> u64 {
        self.ignored_deletions
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }

    fn subsample_reservoir(&mut self) {
        let keep_probability = self.policy.resize();
        let edges: Vec<_> = self.sample.edges().to_vec();
        for edge in edges {
            if !self.rng.random_bool(keep_probability) {
                self.sample.store_remove(&edge);
            }
        }
    }
}

impl ButterflyCounter for Fleet {
    fn process(&mut self, element: StreamElement) {
        match element.delta {
            EdgeDelta::Delete => {
                // FLEET is insert-only: deletions are silently dropped.
                self.ignored_deletions += 1;
            }
            EdgeDelta::Insert => {
                // 1. Count against the reservoir and extrapolate with 1/p³.
                let per_edge = count_butterflies_with_edge(&self.sample, element.edge);
                let p = self.policy.probability();
                if per_edge.butterflies > 0 && p > 0.0 {
                    self.estimate += per_edge.butterflies as f64 / (p * p * p);
                }
                self.stats
                    .record_element(true, per_edge.butterflies, per_edge.comparisons);

                // 2. Admit with probability p; resize when full.
                if self.policy.admit(&mut self.rng) {
                    self.sample.store_insert(element.edge);
                    if self.sample.len() >= self.config.capacity {
                        self.subsample_reservoir();
                    }
                }
            }
        }
    }

    fn estimate(&self) -> f64 {
        self.estimate
    }

    fn memory_edges(&self) -> usize {
        self.sample.len()
    }

    fn name(&self) -> &'static str {
        "FLEET"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        let mut enc = Encoder::new();
        enc.put_usize(self.config.capacity);
        enc.put_f64(self.config.gamma);
        enc.put_u64(self.config.seed);
        enc.put_f64(self.policy.probability());
        enc.put_usize(self.policy.resizes());
        for word in self.rng.state() {
            enc.put_u64(word);
        }
        self.sample.encode_state(&mut enc);
        enc.put_f64(self.estimate);
        encode_stats(&mut enc, &self.stats);
        enc.put_u64(self.ignored_deletions);
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let capacity = dec.get_usize()?;
        let gamma = dec.get_f64()?;
        let seed = dec.get_u64()?;
        if capacity != self.config.capacity
            || gamma.to_bits() != self.config.gamma.to_bits()
            || seed != self.config.seed
        {
            return Err(PersistError::Corrupt(
                "FLEET snapshot was written under a different configuration".into(),
            ));
        }
        let probability = dec.get_f64()?;
        let resizes = dec.get_usize()?;
        self.policy = AdaptiveBernoulli::from_state(capacity, gamma, probability, resizes);
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.get_u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        self.sample.restore_state(&mut dec)?;
        self.estimate = dec.get_f64()?;
        self.stats = decode_stats(&mut dec)?;
        self.ignored_deletions = dec.get_u64()?;
        dec.expect_end()
    }
}

pub(crate) fn encode_stats(enc: &mut Encoder, stats: &ProcessingStats) {
    enc.put_u64(stats.elements);
    enc.put_u64(stats.insertions);
    enc.put_u64(stats.deletions);
    enc.put_u64(stats.discovered_butterflies);
    enc.put_u64(stats.comparisons);
}

pub(crate) fn decode_stats(dec: &mut Decoder<'_>) -> Result<ProcessingStats, PersistError> {
    Ok(ProcessingStats {
        elements: dec.get_u64()?,
        insertions: dec.get_u64()?,
        deletions: dec.get_u64()?,
        discovered_butterflies: dec.get_u64()?,
        comparisons: dec.get_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::{count_butterflies, Edge};
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn insert_stream(seed: u64, edges: usize) -> Vec<StreamElement> {
        uniform_bipartite(100, 100, edges, &mut StdRng::seed_from_u64(seed))
            .into_iter()
            .map(StreamElement::insert)
            .collect()
    }

    #[test]
    fn exact_while_probability_is_one() {
        // Capacity larger than the stream: p stays 1, estimate is exact.
        let stream = vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::insert(Edge::new(0, 11)),
            StreamElement::insert(Edge::new(1, 10)),
            StreamElement::insert(Edge::new(1, 11)),
        ];
        let mut fleet = Fleet::new(FleetConfig::new(100).with_seed(1));
        fleet.process_stream(&stream);
        assert_eq!(fleet.estimate(), 1.0);
        assert_eq!(fleet.probability(), 1.0);
        assert_eq!(fleet.resizes(), 0);
        assert_eq!(fleet.name(), "FLEET");
    }

    #[test]
    fn resizes_keep_reservoir_under_capacity() {
        let stream = insert_stream(2, 5_000);
        let mut fleet = Fleet::new(FleetConfig::new(256).with_seed(3));
        for e in &stream {
            fleet.process(*e);
            assert!(fleet.memory_edges() <= 256);
        }
        assert!(fleet.resizes() > 0);
        assert!(fleet.probability() < 1.0);
        assert_eq!(fleet.stats().insertions, 5_000);
    }

    #[test]
    fn reasonably_accurate_on_insert_only_streams() {
        let stream = insert_stream(4, 4_000);
        let truth = count_butterflies(&final_graph(&stream)) as f64;
        assert!(truth > 0.0);
        // Average over several runs to smooth sampling noise.
        let runs = 20;
        let mean: f64 = (0..runs)
            .map(|seed| {
                let mut fleet = Fleet::new(FleetConfig::new(1_000).with_seed(seed));
                fleet.process_stream(&stream);
                fleet.estimate()
            })
            .sum::<f64>()
            / runs as f64;
        let relative = (mean - truth).abs() / truth;
        assert!(relative < 0.30, "mean {mean} vs truth {truth} ({relative})");
    }

    #[test]
    fn deletions_are_ignored_and_counted() {
        let edges = uniform_bipartite(50, 50, 1_000, &mut StdRng::seed_from_u64(5));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.3),
            &mut StdRng::seed_from_u64(6),
        );
        let mut fleet = Fleet::new(FleetConfig::new(2_000).with_seed(7));
        fleet.process_stream(&stream);
        assert_eq!(fleet.ignored_deletions(), 300);
        // With capacity above the stream size FLEET counts the insert-only
        // graph exactly — which over-counts the true (post-deletion) graph.
        let insert_only_truth = count_butterflies(&final_graph(
            &edges
                .iter()
                .copied()
                .map(StreamElement::insert)
                .collect::<Vec<_>>(),
        )) as f64;
        let dynamic_truth = count_butterflies(&final_graph(&stream)) as f64;
        assert_eq!(fleet.estimate(), insert_only_truth);
        assert!(
            fleet.estimate() > dynamic_truth,
            "deletions must hurt FLEET"
        );
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_panics() {
        let _ = FleetConfig::new(10).with_gamma(1.5);
    }
}
