//! CAS — Co-Affiliation Sampling (Li et al., TKDE 2022), insert-only.
//!
//! CAS estimates butterfly counts on insert-only bipartite streams by
//! combining **edge sampling** with **sketching**: a fraction λ of the memory
//! budget feeds AMS sketches summarising the wedge (co-affiliation) structure,
//! the remaining 1−λ holds a uniform edge reservoir; butterflies discovered
//! between an arriving edge and the reservoir are extrapolated by the inverse
//! probability that the three complementary edges are simultaneously present
//! in the reservoir.  The paper's recommended memory split is λ = 0.33, which
//! this implementation adopts as its default (CAS-R configuration).
//!
//! This is a behavioural re-implementation, not a line-by-line port of the
//! original Java code: the estimator follows the published high-level design
//! (reservoir + sketch, insert-only, λ memory split) and reproduces the three
//! properties the ABACUS paper measures — good insert-only accuracy, complete
//! blindness to deletions, and per-edge sketch-maintenance overhead.  See
//! `DESIGN.md` §3.

use crate::fleet::{decode_stats, encode_stats};
use crate::sketch::AmsSketch;
use abacus_graph::count_butterflies_with_edge;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_metrics::ProcessingStats;
use abacus_sampling::ReservoirSampler;
use abacus_sampling::SampleGraph;
use abacus_stream::ButterflyCounter;
use abacus_stream::{EdgeDelta, StreamElement};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the CAS baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CasConfig {
    /// Total memory budget expressed in stored edges (reservoir + sketch).
    pub memory_edges: usize,
    /// Fraction of the memory given to the AMS sketch (λ); 0.33 in the paper.
    pub sketch_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CasConfig {
    /// Creates a configuration with the paper's λ = 0.33.
    ///
    /// # Panics
    /// Panics if the memory budget is smaller than 4 edges.
    #[must_use]
    pub fn new(memory_edges: usize) -> Self {
        assert!(
            memory_edges >= 4,
            "CAS needs a memory budget of at least 4 edges"
        );
        CasConfig {
            memory_edges,
            sketch_fraction: 0.33,
            seed: 0,
        }
    }

    /// Returns the configuration with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different sketch fraction λ.
    ///
    /// # Panics
    /// Panics if λ is not in `[0, 1)`.
    #[must_use]
    pub fn with_sketch_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "sketch fraction must be in [0, 1)"
        );
        self.sketch_fraction = fraction;
        self
    }

    /// The reservoir capacity implied by the memory split.
    #[must_use]
    pub fn reservoir_capacity(&self) -> usize {
        let reservoir = (self.memory_edges as f64 * (1.0 - self.sketch_fraction)).round() as usize;
        reservoir.max(2)
    }

    /// The sketch budget (in equivalent stored edges) implied by the split.
    #[must_use]
    pub fn sketch_budget(&self) -> usize {
        self.memory_edges
            .saturating_sub(self.reservoir_capacity())
            .max(1)
    }
}

/// The CAS estimator.
#[derive(Debug)]
pub struct Cas {
    config: CasConfig,
    reservoir: SampleGraph,
    policy: ReservoirSampler,
    sketch: AmsSketch,
    rng: StdRng,
    estimate: f64,
    stats: ProcessingStats,
    ignored_deletions: u64,
}

impl Cas {
    /// Creates the estimator.
    #[must_use]
    pub fn new(config: CasConfig) -> Self {
        Cas {
            config,
            reservoir: SampleGraph::with_budget(config.reservoir_capacity()),
            policy: ReservoirSampler::new(config.reservoir_capacity()),
            sketch: AmsSketch::with_edge_budget(config.sketch_budget()),
            rng: StdRng::seed_from_u64(config.seed),
            estimate: 0.0,
            stats: ProcessingStats::default(),
            ignored_deletions: 0,
        }
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> CasConfig {
        self.config
    }

    /// Number of deletions that were dropped (CAS cannot process them).
    #[must_use]
    pub fn ignored_deletions(&self) -> u64 {
        self.ignored_deletions
    }

    /// The sketch's current wedge estimate (exposed for diagnostics).
    #[must_use]
    pub fn estimated_wedges(&self) -> f64 {
        self.sketch.estimated_wedges()
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }

    /// Probability that three fixed distinct seen edges are all in a uniform
    /// reservoir of size `s` out of `n` seen edges.
    fn triple_probability(&self) -> f64 {
        let n = self.policy.seen() as f64;
        let s = self.reservoir.len() as f64;
        if n <= s {
            return 1.0;
        }
        if s < 3.0 {
            return 0.0;
        }
        (s / n) * ((s - 1.0) / (n - 1.0)) * ((s - 2.0) / (n - 2.0))
    }
}

impl ButterflyCounter for Cas {
    fn process(&mut self, element: StreamElement) {
        match element.delta {
            EdgeDelta::Delete => {
                self.ignored_deletions += 1;
            }
            EdgeDelta::Insert => {
                // Sketch maintenance: one update per endpoint, charging the
                // per-edge sketch cost the original system pays.
                self.sketch.update(&("L", element.edge.left), 1);
                self.sketch.update(&("R", element.edge.right), 1);

                // Count against the reservoir *before* offering the edge.
                let per_edge = count_butterflies_with_edge(&self.reservoir, element.edge);
                let p = self.triple_probability();
                if per_edge.butterflies > 0 && p > 0.0 {
                    self.estimate += per_edge.butterflies as f64 / p;
                }
                self.stats
                    .record_element(true, per_edge.butterflies, per_edge.comparisons);

                self.policy
                    .insert(element.edge, &mut self.reservoir, &mut self.rng);
            }
        }
    }

    fn estimate(&self) -> f64 {
        self.estimate
    }

    fn memory_edges(&self) -> usize {
        // Sketch counters are charged like stored edges (the paper's
        // like-for-like memory accounting).
        self.reservoir.len() + self.sketch.counters()
    }

    fn name(&self) -> &'static str {
        "CAS"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        let mut enc = Encoder::new();
        enc.put_usize(self.config.memory_edges);
        enc.put_f64(self.config.sketch_fraction);
        enc.put_u64(self.config.seed);
        enc.put_usize(self.policy.seen());
        for word in self.rng.state() {
            enc.put_u64(word);
        }
        self.reservoir.encode_state(&mut enc);
        enc.put_usize(self.sketch.rows());
        enc.put_usize(self.sketch.buckets());
        for &counter in self.sketch.counter_values() {
            enc.put_u64(counter as u64);
        }
        enc.put_u64(self.sketch.total_updates());
        enc.put_f64(self.estimate);
        encode_stats(&mut enc, &self.stats);
        enc.put_u64(self.ignored_deletions);
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let memory_edges = dec.get_usize()?;
        let sketch_fraction = dec.get_f64()?;
        let seed = dec.get_u64()?;
        if memory_edges != self.config.memory_edges
            || sketch_fraction.to_bits() != self.config.sketch_fraction.to_bits()
            || seed != self.config.seed
        {
            return Err(PersistError::Corrupt(
                "CAS snapshot was written under a different configuration".into(),
            ));
        }
        let seen = dec.get_usize()?;
        self.policy = ReservoirSampler::from_state(self.config.reservoir_capacity(), seen);
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.get_u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        self.reservoir.restore_state(&mut dec)?;
        let rows = dec.get_usize()?;
        let buckets = dec.get_usize()?;
        let expected = rows
            .checked_mul(buckets)
            .ok_or_else(|| PersistError::Corrupt("CAS sketch dimensions overflow".into()))?;
        if rows == 0 || buckets == 0 || expected > dec.remaining() / 8 {
            return Err(PersistError::Corrupt(
                "CAS snapshot carries implausible sketch dimensions".into(),
            ));
        }
        let mut counters = Vec::with_capacity(expected);
        for _ in 0..expected {
            counters.push(dec.get_u64()? as i64);
        }
        let total_updates = dec.get_u64()?;
        self.sketch = AmsSketch::from_state(rows, buckets, counters, total_updates);
        self.estimate = dec.get_f64()?;
        self.stats = decode_stats(&mut dec)?;
        self.ignored_deletions = dec.get_u64()?;
        dec.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::{count_butterflies, Edge};
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn insert_stream(seed: u64, edges: usize) -> Vec<StreamElement> {
        uniform_bipartite(100, 100, edges, &mut StdRng::seed_from_u64(seed))
            .into_iter()
            .map(StreamElement::insert)
            .collect()
    }

    #[test]
    fn memory_split_follows_lambda() {
        let config = CasConfig::new(300);
        assert_eq!(config.reservoir_capacity(), 201);
        assert_eq!(config.sketch_budget(), 99);
        let cas = Cas::new(config);
        assert!(cas.memory_edges() <= 300 + 4);
    }

    #[test]
    fn exact_while_reservoir_holds_everything() {
        let stream = vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::insert(Edge::new(0, 11)),
            StreamElement::insert(Edge::new(1, 10)),
            StreamElement::insert(Edge::new(1, 11)),
        ];
        let mut cas = Cas::new(CasConfig::new(64).with_seed(1));
        cas.process_stream(&stream);
        assert_eq!(cas.estimate(), 1.0);
        assert_eq!(cas.name(), "CAS");
    }

    #[test]
    fn reasonably_accurate_on_insert_only_streams() {
        let stream = insert_stream(7, 4_000);
        let truth = count_butterflies(&final_graph(&stream)) as f64;
        let runs = 20;
        let mean: f64 = (0..runs)
            .map(|seed| {
                let mut cas = Cas::new(CasConfig::new(1_500).with_seed(seed));
                cas.process_stream(&stream);
                cas.estimate()
            })
            .sum::<f64>()
            / runs as f64;
        let relative = (mean - truth).abs() / truth;
        assert!(relative < 0.30, "mean {mean} vs truth {truth} ({relative})");
    }

    #[test]
    fn deletions_are_ignored() {
        let edges = uniform_bipartite(50, 50, 1_000, &mut StdRng::seed_from_u64(9));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.25),
            &mut StdRng::seed_from_u64(10),
        );
        let mut cas = Cas::new(CasConfig::new(3_000).with_seed(11));
        cas.process_stream(&stream);
        assert_eq!(cas.ignored_deletions(), 250);
        let dynamic_truth = count_butterflies(&final_graph(&stream)) as f64;
        assert!(
            cas.estimate() > dynamic_truth,
            "CAS must over-count when deletions are dropped"
        );
    }

    #[test]
    fn sketch_tracks_wedges() {
        let stream = insert_stream(13, 2_000);
        let mut cas = Cas::new(CasConfig::new(800).with_seed(13));
        cas.process_stream(&stream);
        assert!(cas.estimated_wedges() > 0.0);
        assert_eq!(cas.stats().insertions, 2_000);
    }

    #[test]
    #[should_panic(expected = "sketch fraction")]
    fn invalid_lambda_panics() {
        let _ = CasConfig::new(100).with_sketch_fraction(1.0);
    }
}
