//! Aggregation of repeated trials.
//!
//! Every accuracy number in the paper is the average over 10 independent
//! trials; [`Summary`] collects per-trial observations and reports mean,
//! sample standard deviation, and the extremes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming summary statistics over a sequence of observations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Builds a summary from an iterator of observations.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        Summary {
            values: values.into_iter().collect(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 for an empty summary).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Population variance (0 for an empty summary).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64
    }

    /// Minimum observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The raw observations.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={})",
            self.mean(),
            self.std_dev(),
            self.count()
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_well_defined() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_std_min_max() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn record_appends() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.values(), &[1.0, 3.0]);
    }

    #[test]
    fn single_observation_has_zero_std_dev() {
        let s = Summary::from_values([42.0]);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn display_contains_mean_and_count() {
        let s = Summary::from_values([1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("2.0000"));
        assert!(text.contains("n=3"));
    }
}
