//! Ensemble health and degradation reporting.
//!
//! The engine's ensemble supervisor quarantines replicas that panic or
//! exhaust their persistence retry budget instead of failing the run.  This
//! module holds the *reporting* side of that contract: a plain-data
//! [`HealthReport`] that callers (CLI report lines, tests, monitoring hooks)
//! can render without depending on the engine crate.
//!
//! Degradation semantics: an ensemble serving with `healthy < total`
//! replicas is *degraded* — its replicate-mode confidence interval is
//! honestly widened because it is computed over fewer independent trials,
//! and its partition-mode sum is missing the quarantined shards'
//! contributions.  A report therefore always carries both counts plus the
//! per-replica quarantine records explaining *why* and *when* (element
//! index) each replica left service.

/// Why and when one replica was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Replica index within the ensemble (`0..total`).
    pub replica: usize,
    /// Global element index at which the fault fired (the element was
    /// covered by the ensemble WAL but not applied to this replica).
    pub at_element: u64,
    /// Human-readable fault description (panic payload or persist error).
    pub reason: String,
}

impl QuarantineRecord {
    /// One-line rendering used in CLI reports.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "replica {} quarantined at element {}: {}",
            self.replica, self.at_element, self.reason
        )
    }
}

/// Point-in-time health of a supervised ensemble.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Total replica count the ensemble was built with.
    pub total: usize,
    /// Replicas currently in service.
    pub healthy: usize,
    /// One record per quarantined replica, ordered by replica index.
    pub quarantined: Vec<QuarantineRecord>,
}

impl HealthReport {
    /// True when at least one replica is out of service.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.healthy < self.total
    }

    /// One-line rendering used in CLI reports, e.g.
    /// `2/3 replicas healthy (degraded)`.
    #[must_use]
    pub fn summary_line(&self) -> String {
        if self.is_degraded() {
            format!(
                "{}/{} replicas healthy (degraded)",
                self.healthy, self.total
            )
        } else {
            format!("{}/{} replicas healthy", self.healthy, self.total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_report_is_not_degraded() {
        let report = HealthReport {
            total: 3,
            healthy: 3,
            quarantined: Vec::new(),
        };
        assert!(!report.is_degraded());
        assert_eq!(report.summary_line(), "3/3 replicas healthy");
    }

    #[test]
    fn degraded_report_carries_quarantine_detail() {
        let report = HealthReport {
            total: 3,
            healthy: 2,
            quarantined: vec![QuarantineRecord {
                replica: 1,
                at_element: 412,
                reason: "replica worker panicked: injected fault".into(),
            }],
        };
        assert!(report.is_degraded());
        assert_eq!(report.summary_line(), "2/3 replicas healthy (degraded)");
        assert_eq!(
            report.quarantined[0].summary_line(),
            "replica 1 quarantined at element 412: replica worker panicked: injected fault"
        );
    }
}
