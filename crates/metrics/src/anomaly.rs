//! Windowed estimate series and burst detection.
//!
//! Streaming deployments rarely want only the final butterfly count: anomaly
//! detectors (§I of the paper) watch how the estimate *evolves* and alert
//! when a window's change is abnormal.  [`AnomalySeries`] is the
//! estimator-agnostic core of that machinery: it is fed one estimate per
//! stream element, records a [`WindowSnapshot`] every `window` elements, and
//! flags windows whose delta is a burst relative to the trailing history.
//!
//! The series deliberately knows nothing about counters, graphs, or threads —
//! it consumes a bare `f64` per element — so the same state can back the
//! `WindowedMonitor` wrapper *and* be registered as a delta-circuit view
//! (both in `abacus-core`), with bit-identical snapshots either way.

/// One recorded window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Index of the window (0-based).
    pub window: usize,
    /// Number of stream elements processed up to and including this window.
    pub elements: u64,
    /// Estimate at the end of the window.
    pub estimate: f64,
    /// Change of the estimate relative to the previous window.
    pub delta: f64,
}

/// A windowed series of estimates with burst detection.
///
/// Feed it one estimate per stream element via [`observe`](Self::observe);
/// every `window` elements it records a snapshot and hands it back so the
/// caller can publish it (to a shared cell, a dashboard, a log line).
#[derive(Debug, Clone)]
pub struct AnomalySeries {
    window: usize,
    in_window: usize,
    elements: u64,
    snapshots: Vec<WindowSnapshot>,
    burst_factor: f64,
}

impl AnomalySeries {
    /// Creates a series that snapshots every `window` elements.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must contain at least one element");
        AnomalySeries {
            window,
            in_window: 0,
            elements: 0,
            snapshots: Vec::new(),
            burst_factor: 8.0,
        }
    }

    /// Sets the burst-detection factor (a window is anomalous when its
    /// absolute delta exceeds `factor ×` the mean absolute delta of the
    /// preceding windows).  Default: 8.
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn with_burst_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "burst factor must be positive");
        self.burst_factor = factor;
        self
    }

    /// Rebuilds a series from previously captured state — the
    /// checkpoint/restore path.  `in_window` is the number of elements
    /// observed since the last snapshot.
    ///
    /// # Panics
    /// Panics if `window` is zero or `burst_factor` is not positive.
    #[must_use]
    pub fn from_state(
        window: usize,
        in_window: usize,
        elements: u64,
        snapshots: Vec<WindowSnapshot>,
        burst_factor: f64,
    ) -> Self {
        assert!(window >= 1, "window must contain at least one element");
        assert!(burst_factor > 0.0, "burst factor must be positive");
        AnomalySeries {
            window,
            in_window,
            elements,
            snapshots,
            burst_factor,
        }
    }

    /// The snapshot cadence in stream elements.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Elements observed since the last snapshot.
    #[must_use]
    pub fn in_window(&self) -> usize {
        self.in_window
    }

    /// The burst-detection factor.
    #[must_use]
    pub fn burst_factor(&self) -> f64 {
        self.burst_factor
    }

    /// Total number of elements observed.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Records one stream element whose post-element estimate is `estimate`.
    ///
    /// Returns the snapshot taken when this element closes a window, `None`
    /// otherwise.  Only the estimate accompanying a window-closing element is
    /// ever read, so callers with expensive estimates may pass a stale value
    /// mid-window as long as the boundary value is fresh.
    pub fn observe(&mut self, estimate: f64) -> Option<WindowSnapshot> {
        self.elements += 1;
        self.in_window += 1;
        if self.in_window >= self.window {
            Some(self.record(estimate))
        } else {
            None
        }
    }

    /// Forces a snapshot of the current partial window.
    ///
    /// A no-op (returning `None`) when the current window is empty (no
    /// elements observed since the last snapshot) *and* the estimate has not
    /// moved: recording it would append a duplicate zero-delta window — e.g.
    /// when the stream length is an exact multiple of `window`, the
    /// per-window snapshot has already fired — silently deflating the
    /// trailing mean that [`anomalous_windows`](Self::anomalous_windows)
    /// compares against.  An empty window whose estimate *did* change (a
    /// buffered counter flushing on finish) is still recorded, so the flushed
    /// value reaches the series.
    pub fn force_snapshot(&mut self, estimate: f64) -> Option<WindowSnapshot> {
        let previous = self.snapshots.last().map_or(0.0, |s| s.estimate);
        if self.in_window == 0 && estimate == previous {
            return None;
        }
        Some(self.record(estimate))
    }

    fn record(&mut self, estimate: f64) -> WindowSnapshot {
        let previous = self.snapshots.last().map_or(0.0, |s| s.estimate);
        let snapshot = WindowSnapshot {
            window: self.snapshots.len(),
            elements: self.elements,
            estimate,
            delta: estimate - previous,
        };
        self.snapshots.push(snapshot);
        self.in_window = 0;
        snapshot
    }

    /// The recorded window snapshots.
    #[must_use]
    pub fn snapshots(&self) -> &[WindowSnapshot] {
        &self.snapshots
    }

    /// Windows whose estimate change is anomalously large compared to the
    /// trailing history.
    ///
    /// A window is flagged when its absolute delta exceeds `burst_factor ×`
    /// the mean absolute delta of the up-to-8 preceding windows.  Two
    /// properties keep the detector scale-independent:
    ///
    /// * the baseline has no absolute floor — only a noise floor relative to
    ///   the estimate's magnitude (`ε·|estimate|`, guarding against float
    ///   summation residue), so streams whose per-window changes are
    ///   fractions of a butterfly can still alert;
    /// * the earliest windows, which have no trailing history, are compared
    ///   against the median absolute delta of the *whole* recorded series (a
    ///   retrospective warm-up baseline), so a spike in window 0 is
    ///   flaggable instead of being its own baseline.
    #[must_use]
    pub fn anomalous_windows(&self) -> Vec<WindowSnapshot> {
        // Warm-up baseline: the series' median |delta| (robust against the
        // spikes the detector is meant to find).
        let mut sorted: Vec<f64> = self.snapshots.iter().map(|s| s.delta.abs()).collect();
        sorted.sort_by(f64::total_cmp);
        let warm_up = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);

        let mut anomalies = Vec::new();
        let mut trailing: Vec<f64> = Vec::new();
        for snapshot in &self.snapshots {
            let baseline = if trailing.is_empty() {
                warm_up
            } else {
                trailing.iter().sum::<f64>() / trailing.len() as f64
            };
            let noise_floor = f64::EPSILON * snapshot.estimate.abs();
            if snapshot.delta.abs() > (self.burst_factor * baseline).max(noise_floor) {
                anomalies.push(*snapshot);
            }
            trailing.push(snapshot.delta.abs());
            if trailing.len() > 8 {
                trailing.remove(0);
            }
        }
        anomalies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_fire_on_window_boundaries() {
        let mut series = AnomalySeries::new(3);
        assert_eq!(series.observe(1.0), None);
        assert_eq!(series.observe(2.0), None);
        let snap = series.observe(3.0).expect("third element closes a window");
        assert_eq!(snap.window, 0);
        assert_eq!(snap.elements, 3);
        assert_eq!(snap.estimate, 3.0);
        assert_eq!(snap.delta, 3.0);
        assert_eq!(series.elements(), 3);
        assert_eq!(series.window(), 3);
        // The next window's delta is relative to the previous snapshot.
        series.observe(4.0);
        series.observe(5.0);
        let snap = series.observe(7.0).unwrap();
        assert_eq!(snap.window, 1);
        assert_eq!(snap.delta, 4.0);
        assert_eq!(series.snapshots().len(), 2);
    }

    #[test]
    fn forced_snapshot_guards_empty_unmoved_windows() {
        let mut series = AnomalySeries::new(2);
        series.observe(1.0);
        series.observe(2.0); // boundary snapshot at estimate 2.0
        assert_eq!(series.force_snapshot(2.0), None, "empty and unmoved");
        let moved = series.force_snapshot(5.0).expect("estimate moved");
        assert_eq!(moved.delta, 3.0);
        series.observe(6.0); // partial window
        let partial = series.force_snapshot(6.0).expect("window not empty");
        assert_eq!(partial.elements, 3);
        assert!(series.force_snapshot(6.0).is_none());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = AnomalySeries::new(0);
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn non_positive_burst_factor_panics() {
        let _ = AnomalySeries::new(1).with_burst_factor(0.0);
    }

    #[test]
    fn burst_detection_flags_a_spike_against_trailing_history() {
        let mut series = AnomalySeries::new(1).with_burst_factor(5.0);
        let mut estimate = 0.0;
        for _ in 0..20 {
            estimate += 0.01;
            series.observe(estimate);
        }
        estimate += 10.0; // spike
        series.observe(estimate);
        for _ in 0..5 {
            estimate += 0.01;
            series.observe(estimate);
        }
        let anomalies = series.anomalous_windows();
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].window, 20);
    }

    #[test]
    fn uniform_series_raises_no_anomalies() {
        let mut series = AnomalySeries::new(1);
        for i in 1..=30 {
            series.observe(f64::from(i));
        }
        assert!(series.anomalous_windows().is_empty());
        assert!(AnomalySeries::new(5).anomalous_windows().is_empty());
    }
}
