//! Result-table rendering.
//!
//! Every experiment binary prints its results as a Markdown table (mirroring
//! the corresponding paper table or figure series) and can also emit CSV for
//! downstream plotting.

use std::fmt::Write as _;

/// A simple column-aligned table with a title.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Convenience for building a row out of displayable values.
    pub fn push_row<I, T>(&mut self, cells: I)
    where
        I: IntoIterator<Item = T>,
        T: ToString,
    {
        self.add_row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as Markdown (with a `### title` heading).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<width$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths));
        let mut sep = String::from("|");
        for width in &widths {
            let _ = write!(sep, "{}|", "-".repeat(width + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header first, no title).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig. 3 — Relative Error", &["dataset", "k", "error %"]);
        t.push_row(["Movielens-like", "1500", "0.52"]);
        t.push_row(["Orkut-like", "1500", "3.05"]);
        t
    }

    #[test]
    fn markdown_contains_title_header_and_rows() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Fig. 3"));
        assert!(md.contains("| dataset"));
        assert!(md.contains("| Movielens-like"));
        assert!(md.contains("| 3.05"));
        // Separator row present.
        assert!(md
            .lines()
            .any(|l| l.starts_with("|---") || l.starts_with("|--")));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(["hello, world", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn length_accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Fig. 3 — Relative Error");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(["only one"]);
    }
}
