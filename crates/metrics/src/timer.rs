//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// A simple wall-clock timer with optional named lap recording, used by the
/// scalability experiment (Fig. 7) to record elapsed time after every
/// processed stream decile.
#[derive(Debug, Clone)]
pub struct Timer {
    start: Instant,
    laps: Vec<(String, Duration)>,
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

impl Timer {
    /// Starts a new timer.
    #[must_use]
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Elapsed time since the timer started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds since the timer started.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Records a named lap at the current elapsed time.
    pub fn lap<S: Into<String>>(&mut self, label: S) {
        self.laps.push((label.into(), self.elapsed()));
    }

    /// The recorded laps, in recording order.
    #[must_use]
    pub fn laps(&self) -> &[(String, Duration)] {
        &self.laps
    }

    /// Restarts the timer and clears the laps.
    pub fn reset(&mut self) {
        self.start = Instant::now();
        self.laps.clear();
    }
}

/// Times a closure and returns its result together with the elapsed duration.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let timer = Timer::start();
        let a = timer.elapsed();
        let b = timer.elapsed();
        assert!(b >= a);
        assert!(timer.elapsed_secs() >= 0.0);
    }

    #[test]
    fn laps_record_in_order() {
        let mut timer = Timer::start();
        timer.lap("first");
        timer.lap("second");
        assert_eq!(timer.laps().len(), 2);
        assert_eq!(timer.laps()[0].0, "first");
        assert!(timer.laps()[1].1 >= timer.laps()[0].1);
        timer.reset();
        assert!(timer.laps().is_empty());
    }

    #[test]
    fn time_it_returns_value_and_duration() {
        let (value, elapsed) = time_it(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(elapsed.as_nanos() > 0);
    }
}
