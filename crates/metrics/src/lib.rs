//! # abacus-metrics
//!
//! Evaluation metrics and reporting utilities shared by the experiment
//! harness:
//!
//! * [`error`] — relative / absolute error between an estimate and the ground
//!   truth (the accuracy metric of §VI),
//! * [`throughput`] — edges-per-second throughput measurements,
//! * [`timer`] — simple wall-clock timers and elapsed-time series,
//! * [`summary`] — mean / standard deviation / min / max over repeated trials,
//! * [`stats`] — the per-run work counters every estimator accumulates
//!   (elements, discoveries, set-intersection probes),
//! * [`table`] — Markdown and CSV table rendering used by every experiment
//!   binary to print paper-shaped result tables,
//! * [`anomaly`] — the windowed estimate series with burst detection shared
//!   by the `WindowedMonitor` wrapper and the delta-circuit anomaly view,
//! * [`health`] — ensemble health/degradation reporting (quarantine records
//!   and the degraded-serving summary line).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod error;
pub mod health;
pub mod stats;
pub mod summary;
pub mod table;
pub mod throughput;
pub mod timer;

pub use anomaly::{AnomalySeries, WindowSnapshot};
pub use error::{absolute_error, relative_error, relative_error_percent};
pub use health::{HealthReport, QuarantineRecord};
pub use stats::ProcessingStats;
pub use summary::Summary;
pub use table::Table;
pub use throughput::Throughput;
pub use timer::Timer;
