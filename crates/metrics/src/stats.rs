//! Processing statistics collected by the estimators.

use std::fmt;

/// Work counters accumulated while processing a stream.
///
/// These drive the throughput breakdowns and the load-balance experiment
/// (Fig. 10 reports the number of set-intersection membership checks per
/// worker thread).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessingStats {
    /// Total stream elements processed.
    pub elements: u64,
    /// Insertions processed.
    pub insertions: u64,
    /// Deletions processed.
    pub deletions: u64,
    /// Butterflies discovered through the sample (raw, un-extrapolated).
    pub discovered_butterflies: u64,
    /// Membership probes performed inside set intersections.
    pub comparisons: u64,
}

impl ProcessingStats {
    /// Records one processed element.
    #[inline]
    pub fn record_element(&mut self, is_insert: bool, discovered: u64, comparisons: u64) {
        self.elements += 1;
        if is_insert {
            self.insertions += 1;
        } else {
            self.deletions += 1;
        }
        self.discovered_butterflies += discovered;
        self.comparisons += comparisons;
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &ProcessingStats) {
        self.elements += other.elements;
        self.insertions += other.insertions;
        self.deletions += other.deletions;
        self.discovered_butterflies += other.discovered_butterflies;
        self.comparisons += other.comparisons;
    }
}

impl fmt::Display for ProcessingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elements={} (+{} / -{}), discovered={}, comparisons={}",
            self.elements,
            self.insertions,
            self.deletions,
            self.discovered_butterflies,
            self.comparisons
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = ProcessingStats::default();
        a.record_element(true, 3, 10);
        a.record_element(false, 1, 5);
        assert_eq!(a.elements, 2);
        assert_eq!(a.insertions, 1);
        assert_eq!(a.deletions, 1);
        assert_eq!(a.discovered_butterflies, 4);
        assert_eq!(a.comparisons, 15);

        let mut b = ProcessingStats::default();
        b.record_element(true, 2, 7);
        a.merge(&b);
        assert_eq!(a.elements, 3);
        assert_eq!(a.discovered_butterflies, 6);
        assert_eq!(a.comparisons, 22);
    }

    #[test]
    fn display_mentions_all_counters() {
        let mut s = ProcessingStats::default();
        s.record_element(true, 9, 42);
        let text = s.to_string();
        assert!(text.contains("elements=1"));
        assert!(text.contains("discovered=9"));
        assert!(text.contains("comparisons=42"));
    }
}
