//! Throughput measurements.
//!
//! The throughput experiments (Fig. 4, Fig. 6b) report thousands of stream
//! elements processed per second, excluding any artificial arrival delays.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Elements processed over a span of wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Number of stream elements processed.
    pub elements: u64,
    /// Wall-clock seconds spent processing them.
    pub seconds: f64,
}

impl Throughput {
    /// Builds a measurement from an element count and a duration.
    #[must_use]
    pub fn new(elements: u64, elapsed: Duration) -> Self {
        Throughput {
            elements,
            seconds: elapsed.as_secs_f64(),
        }
    }

    /// Elements per second (0 for a zero-length interval).
    #[must_use]
    pub fn per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.elements as f64 / self.seconds
        }
    }

    /// Thousands of elements per second — the unit used on the paper's
    /// throughput axes ("K edges/s").
    #[must_use]
    pub fn kilo_per_second(&self) -> f64 {
        self.per_second() / 1_000.0
    }

    /// Combines two measurements (sums elements and time).
    #[must_use]
    pub fn combine(&self, other: &Throughput) -> Throughput {
        Throughput {
            elements: self.elements + other.elements,
            seconds: self.seconds + other.seconds,
        }
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} K edges/s", self.kilo_per_second())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_and_kilo() {
        let t = Throughput::new(10_000, Duration::from_secs(2));
        assert!((t.per_second() - 5_000.0).abs() < 1e-9);
        assert!((t.kilo_per_second() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_not_infinite() {
        let t = Throughput::new(100, Duration::ZERO);
        assert_eq!(t.per_second(), 0.0);
    }

    #[test]
    fn combine_sums_components() {
        let a = Throughput::new(100, Duration::from_secs(1));
        let b = Throughput::new(300, Duration::from_secs(3));
        let c = a.combine(&b);
        assert_eq!(c.elements, 400);
        assert!((c.per_second() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_kilo_units() {
        let t = Throughput::new(250_000, Duration::from_secs(1));
        assert_eq!(t.to_string(), "250.0 K edges/s");
    }
}
