//! Estimation-error metrics.
//!
//! The paper's accuracy metric is the *relative error* `|x − x̂| / x` for a
//! true value `x > 0` (§VI-A, Evaluation Metrics).

/// Absolute error `|truth − estimate|`.
#[inline]
#[must_use]
pub fn absolute_error(truth: f64, estimate: f64) -> f64 {
    (truth - estimate).abs()
}

/// Relative error `|truth − estimate| / truth`.
///
/// Defined for a strictly positive ground truth; for `truth == 0` the function
/// returns `0` when the estimate is also `0` and `+∞` otherwise, which keeps
/// degenerate experiment configurations visible instead of silently dividing
/// by zero.
#[inline]
#[must_use]
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        absolute_error(truth, estimate) / truth.abs()
    }
}

/// Relative error expressed in percent (the unit of Figures 3, 5, 6a).
#[inline]
#[must_use]
pub fn relative_error_percent(truth: f64, estimate: f64) -> f64 {
    relative_error(truth, estimate) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_error_is_symmetric() {
        assert_eq!(absolute_error(10.0, 7.0), 3.0);
        assert_eq!(absolute_error(7.0, 10.0), 3.0);
        assert_eq!(absolute_error(-2.0, 2.0), 4.0);
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(100.0, 110.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn relative_error_percent_scales() {
        assert!((relative_error_percent(200.0, 150.0) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn zero_truth_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(0.0, 1.0).is_infinite());
    }

    #[test]
    fn negative_truth_uses_magnitude() {
        assert!((relative_error(-100.0, -90.0) - 0.1).abs() < 1e-12);
    }
}
