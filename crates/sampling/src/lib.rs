//! # abacus-sampling
//!
//! Bounded-memory sampling schemes for data streams, decoupled from what the
//! sample physically stores:
//!
//! * [`store`] — the [`SampleStore`] trait (ABACUS stores its sample as a
//!   graph, the baselines as edge reservoirs, tests as plain vectors) plus a
//!   reference [`VecSampleStore`],
//! * [`sample_graph`] — [`SampleGraph`], the graph-backed [`SampleStore`]:
//!   a bounded edge sample organised as a bipartite graph with adjacency
//!   sets, shared by ABACUS/PARABACUS and the reservoir baselines,
//! * [`seed`] — [`derive_seed`], the splitmix-style per-replica seed
//!   derivation used by ensemble estimators,
//! * [`random_pairing`] — Random Pairing (Gemulla et al., VLDB J. 2008), the
//!   scheme ABACUS uses to keep a *uniform* bounded sample under both
//!   insertions and deletions (Algorithm 2 of the paper),
//! * [`reservoir`] — classic reservoir sampling (Vitter 1985), uniform for
//!   insert-only streams and the reason insert-only baselines break under
//!   deletions,
//! * [`adaptive`] — the FLEET-style adaptive Bernoulli policy with reservoir
//!   resizing (γ),
//! * [`bernoulli`] — fixed-probability sampling (used by the CAS baseline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bernoulli;
pub mod random_pairing;
pub mod reservoir;
pub mod sample_graph;
pub mod seed;
pub mod store;

pub use adaptive::AdaptiveBernoulli;
pub use bernoulli::BernoulliSampler;
pub use random_pairing::{RandomPairing, RandomPairingState};
pub use reservoir::ReservoirSampler;
pub use sample_graph::SampleGraph;
pub use seed::{derive_seed, splitmix64};
pub use store::{SampleStore, VecSampleStore};
