//! Fixed-probability (Bernoulli) sampling.
//!
//! The CAS baseline splits its memory between an edge reservoir and a sketch;
//! its reservoir part admits edges with a fixed probability chosen from the
//! memory budget.  The policy is trivial but kept here so all sampling
//! decisions in the workspace go through one audited code path.

use rand::{Rng, RngExt};

/// Admits each offered item independently with a fixed probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliSampler {
    probability: f64,
    offered: usize,
    admitted: usize,
}

impl BernoulliSampler {
    /// Creates the sampler with admission probability in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the probability is not a valid probability.
    #[must_use]
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        BernoulliSampler {
            probability,
            offered: 0,
            admitted: 0,
        }
    }

    /// The admission probability.
    #[inline]
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Number of items offered so far.
    #[inline]
    #[must_use]
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Number of items admitted so far.
    #[inline]
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Decides whether to admit the next item.
    #[inline]
    pub fn admit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.offered += 1;
        let admit = match self.probability {
            p if p >= 1.0 => true,
            p if p <= 0.0 => false,
            p => rng.random_bool(p),
        };
        if admit {
            self.admitted += 1;
        }
        admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extreme_probabilities() {
        let mut always = BernoulliSampler::new(1.0);
        let mut never = BernoulliSampler::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(always.admit(&mut rng));
            assert!(!never.admit(&mut rng));
        }
        assert_eq!(always.admitted(), 100);
        assert_eq!(never.admitted(), 0);
        assert_eq!(never.offered(), 100);
    }

    #[test]
    fn admission_rate_close_to_probability() {
        let mut sampler = BernoulliSampler::new(0.3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30_000 {
            sampler.admit(&mut rng);
        }
        let rate = sampler.admitted() as f64 / sampler.offered() as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!((sampler.probability() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = BernoulliSampler::new(1.5);
    }
}
