//! The bounded edge sample stored as a bipartite graph.
//!
//! ABACUS refines its estimate by intersecting neighbor sets *inside the
//! sample*, so the sample cannot be a flat edge list: it is a small bipartite
//! graph with adjacency sets, plus a dense edge vector and an edge→slot index
//! so that the Random Pairing policy can evict a uniformly random edge in
//! O(1).
//!
//! [`SampleGraph`] implements both [`SampleStore`] (so the sampling policy
//! can drive it) and [`NeighborhoodView`] (so the
//! per-edge butterfly kernel can query it).

use crate::store::SampleStore;
use abacus_graph::adjacency::AdjacencySet;
use abacus_graph::intersect::KernelTuning;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_graph::{Edge, EdgeKey, FxHashMap, NeighborhoodView, Side, VertexRef};
use rand::{Rng, RngExt};

/// A bounded sample of edges organised as a bipartite graph.
#[derive(Debug, Clone, Default)]
pub struct SampleGraph {
    adj_left: FxHashMap<u32, AdjacencySet>,
    adj_right: FxHashMap<u32, AdjacencySet>,
    edges: Vec<Edge>,
    slots: FxHashMap<EdgeKey, usize>,
    kernel: KernelTuning,
}

impl SampleGraph {
    /// Creates an empty sample.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sample sized for a memory budget of `k` edges.
    #[must_use]
    pub fn with_budget(k: usize) -> Self {
        SampleGraph {
            adj_left: FxHashMap::default(),
            adj_right: FxHashMap::default(),
            edges: Vec::with_capacity(k),
            slots: abacus_graph::fxhash::fx_hashmap_with_capacity(k * 2),
            kernel: KernelTuning::default(),
        }
    }

    /// Sets the cutover ratios used by this sample's intersection kernels
    /// (see [`KernelTuning`]); the estimators wire their configuration's
    /// values through here.
    pub fn set_kernel_tuning(&mut self, kernel: KernelTuning) {
        self.kernel = kernel;
    }

    /// Number of sampled edges.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the sample is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether an edge is currently sampled.
    #[inline]
    #[must_use]
    pub fn contains(&self, edge: Edge) -> bool {
        self.slots.contains_key(&edge.key())
    }

    /// The sampled edges, in slot order (arbitrary but stable between
    /// mutations).
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbor set of a vertex inside the sample.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: VertexRef) -> Option<&AdjacencySet> {
        match v.side {
            Side::Left => self.adj_left.get(&v.id),
            Side::Right => self.adj_right.get(&v.id),
        }
    }

    /// Degree of a vertex inside the sample.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: VertexRef) -> usize {
        self.neighbors(v).map_or(0, AdjacencySet::len)
    }

    /// Picks a uniformly random sampled edge without removing it.
    ///
    /// # Panics
    /// Panics if the sample is empty.
    pub fn random_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> Edge {
        assert!(!self.edges.is_empty(), "cannot pick from an empty sample");
        self.edges[rng.random_range(0..self.edges.len())]
    }

    /// Inserts an edge known to be absent.
    fn insert_edge(&mut self, edge: Edge) {
        debug_assert!(!self.contains(edge), "duplicate edge in sample");
        self.slots.insert(edge.key(), self.edges.len());
        self.edges.push(edge);
        self.adj_left
            .entry(edge.left)
            .or_default()
            .insert(edge.right);
        self.adj_right
            .entry(edge.right)
            .or_default()
            .insert(edge.left);
    }

    /// Removes an edge; returns whether it was present.
    fn remove_edge(&mut self, edge: Edge) -> bool {
        let Some(slot) = self.slots.remove(&edge.key()) else {
            return false;
        };
        // Swap-remove from the dense vector, fixing the moved edge's slot.
        let last = self.edges.len() - 1;
        self.edges.swap(slot, last);
        self.edges.pop();
        if slot < self.edges.len() {
            self.slots.insert(self.edges[slot].key(), slot);
        }
        // Update adjacency, dropping empty vertices.
        if let Some(set) = self.adj_left.get_mut(&edge.left) {
            set.remove(edge.right);
            if set.is_empty() {
                self.adj_left.remove(&edge.left);
            }
        }
        if let Some(set) = self.adj_right.get_mut(&edge.right) {
            set.remove(edge.left);
            if set.is_empty() {
                self.adj_right.remove(&edge.right);
            }
        }
        true
    }

    /// Total entries held by the memoised sorted copies of hub adjacency
    /// sets ([`abacus_graph::adjacency::LargeSet::sorted`]) — auxiliary
    /// storage the estimators charge (in edge equivalents) to their
    /// `memory_edges` accounting.
    #[must_use]
    pub fn sorted_cache_entries(&self) -> usize {
        self.adj_left
            .values()
            .chain(self.adj_right.values())
            .filter_map(|set| {
                set.as_large()
                    .and_then(abacus_graph::adjacency::LargeSet::sorted_cache_len)
            })
            .sum()
    }

    /// Serializes the sample into `enc` so that [`SampleGraph::restore_state`]
    /// can rebuild it bit-identically.
    ///
    /// Three things make the sample history-dependent, so a plain edge set is
    /// not enough:
    ///
    /// 1. **Slot order.** [`SampleGraph::random_edge`] indexes the dense edge
    ///    vector, so eviction choices (and therefore RNG-driven estimator
    ///    state) depend on the exact slot layout, not just the edge set.
    ///    Edges are written in slot order and re-inserted in that order.
    /// 2. **Adjacency representation.** [`AdjacencySet`] promotes from the
    ///    small sorted vector to the hash representation when it grows past
    ///    the threshold and never demotes, which steers kernel selection.  A
    ///    set that grew large and then shrank would be rebuilt small, so the
    ///    promoted vertices are recorded and re-promoted explicitly.
    /// 3. **Sorted caches.** Memoised sorted copies of hub sets count toward
    ///    `memory_edges` accounting, so which caches exist is recorded and
    ///    they are rebuilt eagerly on restore.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.edges.len());
        for edge in &self.edges {
            enc.put_u32(edge.left);
            enc.put_u32(edge.right);
        }
        for adj in [&self.adj_left, &self.adj_right] {
            let mut large: Vec<(u32, bool)> = adj
                .iter()
                .filter_map(|(&id, set)| {
                    set.as_large().map(|l| (id, l.sorted_cache_len().is_some()))
                })
                .collect();
            large.sort_unstable();
            enc.put_usize(large.len());
            for (id, cached) in large {
                enc.put_u32(id);
                enc.put_u8(u8::from(cached));
            }
        }
    }

    /// Rebuilds the sample from a payload produced by
    /// [`SampleGraph::encode_state`].  Clears any current contents; budget
    /// sizing and kernel tuning are the caller's responsibility (they come
    /// from estimator configuration, not from the snapshot).
    ///
    /// # Errors
    /// Fails closed with [`PersistError`] on truncated payloads, duplicate
    /// edges, or representation flags that reference unknown vertices.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        self.store_clear();
        let n = dec.get_usize()?;
        for _ in 0..n {
            let edge = Edge::new(dec.get_u32()?, dec.get_u32()?);
            if self.contains(edge) {
                return Err(PersistError::Corrupt(format!(
                    "duplicate edge ({}, {}) in sample snapshot",
                    edge.left, edge.right
                )));
            }
            self.insert_edge(edge);
        }
        for side in [Side::Left, Side::Right] {
            let flagged = dec.get_usize()?;
            for _ in 0..flagged {
                let id = dec.get_u32()?;
                let cached = dec.get_u8()? != 0;
                let adj = match side {
                    Side::Left => &mut self.adj_left,
                    Side::Right => &mut self.adj_right,
                };
                let Some(set) = adj.get_mut(&id) else {
                    return Err(PersistError::Corrupt(format!(
                        "representation flag for absent {side:?} vertex {id}"
                    )));
                };
                set.promote();
                if cached {
                    // `promote` guarantees the large representation.
                    let large = set
                        .as_large()
                        .ok_or(PersistError::Invariant("promoted set is large"))?;
                    let _ = large.sorted();
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes (used for memory accounting in the
    /// space-complexity sanity tests).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let adjacency: usize = self
            .adj_left
            .values()
            // lint:allow(hash-iter): usize sum of heap sizes is order-insensitive
            .chain(self.adj_right.values())
            .map(AdjacencySet::heap_bytes)
            .sum();
        adjacency + self.edges.capacity() * size_of::<Edge>() + self.slots.capacity() * 24
    }
}

impl SampleStore<Edge> for SampleGraph {
    fn store_len(&self) -> usize {
        self.len()
    }

    fn store_contains(&self, item: &Edge) -> bool {
        self.contains(*item)
    }

    fn store_insert(&mut self, item: Edge) {
        self.insert_edge(item);
    }

    fn store_remove(&mut self, item: &Edge) -> bool {
        self.remove_edge(*item)
    }

    fn store_replace_random<R: Rng + ?Sized>(&mut self, item: Edge, rng: &mut R) {
        // Deliberately expressed as pick → remove → insert so that the
        // versioned PARABACUS wrapper can reproduce the exact same state
        // transition (and RNG consumption) while logging the two deltas.
        let victim = self.random_edge(rng);
        self.remove_edge(victim);
        self.insert_edge(item);
    }

    fn store_clear(&mut self) {
        self.adj_left.clear();
        self.adj_right.clear();
        self.edges.clear();
        self.slots.clear();
    }
}

impl NeighborhoodView for SampleGraph {
    #[inline]
    fn view_degree(&self, v: VertexRef) -> usize {
        self.degree(v)
    }

    #[inline]
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        self.neighbors(v).is_some_and(|n| n.contains(neighbor))
    }

    #[inline]
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        if let Some(n) = self.neighbors(v) {
            for x in n {
                f(x);
            }
        }
    }

    #[inline]
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> abacus_graph::intersect::IntersectionResult {
        // Resolve both adjacency sets once and intersect them directly instead
        // of paying one map lookup per probe.
        match (self.neighbors(a), self.neighbors(b)) {
            (Some(na), Some(nb)) => abacus_graph::intersect::intersection_count_excluding_with(
                na,
                nb,
                exclude,
                self.kernel,
            ),
            _ => abacus_graph::intersect::IntersectionResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::count_butterflies_with_edge;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn edge(l: u32, r: u32) -> Edge {
        Edge::new(l, r)
    }

    #[test]
    fn insert_remove_and_adjacency_stay_consistent() {
        let mut s = SampleGraph::with_budget(8);
        s.store_insert(edge(1, 10));
        s.store_insert(edge(1, 11));
        s.store_insert(edge(2, 10));
        assert_eq!(s.len(), 3);
        assert!(s.contains(edge(1, 10)));
        assert_eq!(s.degree(VertexRef::left(1)), 2);
        assert_eq!(s.degree(VertexRef::right(10)), 2);

        assert!(s.store_remove(&edge(1, 10)));
        assert!(!s.store_remove(&edge(1, 10)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.degree(VertexRef::left(1)), 1);
        assert_eq!(s.degree(VertexRef::right(10)), 1);
        // Zero-degree vertices disappear.
        assert!(s.store_remove(&edge(2, 10)));
        assert_eq!(s.degree(VertexRef::right(10)), 0);
        assert!(s.neighbors(VertexRef::right(10)).is_none());
    }

    #[test]
    fn replace_random_swaps_one_edge() {
        let mut s = SampleGraph::with_budget(4);
        for i in 0..4 {
            s.store_insert(edge(i, 100 + i));
        }
        let before: BTreeSet<Edge> = s.edges().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(1);
        s.store_replace_random(edge(99, 999), &mut rng);
        let after: BTreeSet<Edge> = s.edges().iter().copied().collect();
        assert_eq!(s.len(), 4);
        assert!(after.contains(&edge(99, 999)));
        assert_eq!(before.intersection(&after).count(), 3);
    }

    #[test]
    fn neighborhood_view_supports_butterfly_counting() {
        let mut s = SampleGraph::new();
        for &(l, r) in &[(0, 11), (1, 10), (1, 11)] {
            s.store_insert(edge(l, r));
        }
        let c = count_butterflies_with_edge(&s, edge(0, 10));
        assert_eq!(c.butterflies, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = SampleGraph::new();
        s.store_insert(edge(1, 2));
        s.store_clear();
        assert!(s.is_empty());
        assert_eq!(s.heap_bytes(), s.heap_bytes()); // accessor does not panic
        assert!(s.neighbors(VertexRef::left(1)).is_none());
    }

    #[test]
    fn encode_restore_round_trips_slot_order_and_representation() {
        let mut s = SampleGraph::with_budget(256);
        // Grow one left hub past the promotion threshold, then shrink it back
        // below so the restored representation must be forced Large.
        for r in 0..40u32 {
            s.store_insert(edge(7, 1_000 + r));
        }
        for r in 0..30u32 {
            assert!(s.store_remove(&edge(7, 1_000 + r)));
        }
        for i in 0..20u32 {
            s.store_insert(edge(i, 500 + (i % 3)));
        }
        // Build a sorted cache on the (still Large) hub set.
        let hub = s.neighbors(VertexRef::left(7)).unwrap();
        let large = hub.as_large().expect("hub stays large after shrinking");
        let _ = large.sorted();
        assert!(s.sorted_cache_entries() > 0);

        let mut enc = Encoder::new();
        s.encode_state(&mut enc);
        let bytes = enc.finish();

        let mut restored = SampleGraph::with_budget(256);
        let mut dec = Decoder::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        dec.expect_end().unwrap();

        assert_eq!(restored.edges(), s.edges(), "slot order must survive");
        assert!(restored
            .neighbors(VertexRef::left(7))
            .unwrap()
            .as_large()
            .is_some());
        assert_eq!(restored.sorted_cache_entries(), s.sorted_cache_entries());
        // Re-encoding the restored sample must be byte-identical.
        let mut enc2 = Encoder::new();
        restored.encode_state(&mut enc2);
        assert_eq!(enc2.finish(), bytes);
    }

    #[test]
    fn restore_rejects_duplicate_edges_and_unknown_flags() {
        let mut s = SampleGraph::new();
        s.store_insert(edge(1, 2));
        let mut enc = Encoder::new();
        enc.put_usize(2);
        for _ in 0..2 {
            enc.put_u32(1);
            enc.put_u32(2);
        }
        let bytes = enc.finish();
        let mut dup = SampleGraph::new();
        assert!(dup.restore_state(&mut Decoder::new(&bytes)).is_err());

        let mut enc = Encoder::new();
        s.encode_state(&mut enc);
        // Claim a Large flag for a vertex the edge list never mentions.
        let mut enc2 = Encoder::new();
        enc2.put_usize(1);
        enc2.put_u32(1);
        enc2.put_u32(2);
        enc2.put_usize(1);
        enc2.put_u32(99);
        enc2.put_u8(1);
        enc2.put_usize(0);
        let bytes = enc2.finish();
        let mut bad = SampleGraph::new();
        assert!(bad.restore_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn random_edge_on_empty_sample_panics() {
        let s = SampleGraph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.random_edge(&mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under random insert/remove/replace sequences, the dense edge
        /// vector, the slot index, and the adjacency maps must agree.
        #[test]
        fn storage_invariants(ops in proptest::collection::vec((0u8..3, 0u32..12, 0u32..12), 1..200)) {
            let mut s = SampleGraph::new();
            let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(7);
            for (op, l, r) in ops {
                let e = edge(l, r);
                match op {
                    0 => {
                        if !reference.contains(&(l, r)) {
                            s.store_insert(e);
                            reference.insert((l, r));
                        }
                    }
                    1 => {
                        prop_assert_eq!(s.store_remove(&e), reference.remove(&(l, r)));
                    }
                    _ => {
                        if !reference.is_empty() && !reference.contains(&(l, r)) {
                            let victim = s.random_edge(&mut rng);
                            // replay the same choice through the store API
                            s.store_remove(&victim);
                            s.store_insert(e);
                            reference.remove(&(victim.left, victim.right));
                            reference.insert((l, r));
                        }
                    }
                }
                prop_assert_eq!(s.len(), reference.len());
                let got: BTreeSet<(u32, u32)> =
                    s.edges().iter().map(|e| (e.left, e.right)).collect();
                prop_assert_eq!(&got, &reference);
                // Degrees match the reference adjacency.
                for &(l, r) in &reference {
                    prop_assert!(s.view_contains(VertexRef::left(l), r));
                    prop_assert!(s.view_contains(VertexRef::right(r), l));
                }
            }
        }
    }
}
