//! The bounded edge sample stored as a bipartite graph.
//!
//! ABACUS refines its estimate by intersecting neighbor sets *inside the
//! sample*, so the sample cannot be a flat edge list: it is a small bipartite
//! graph with adjacency sets, plus a dense edge vector and an edge→slot index
//! so that the Random Pairing policy can evict a uniformly random edge in
//! O(1).
//!
//! # Memory layout (interned struct-of-arrays)
//!
//! Adjacency state lives in two per-side [`SideTable`]s.  Each table interns
//! the raw stream vertex ids into dense `u32` indexes and keeps the actual
//! neighbor sets in a contiguous slab:
//!
//! * `ids: raw → dense` — a small-entry (8-byte) hash map, probed once per
//!   vertex resolution,
//! * `raw: dense → raw` — the reverse array, so snapshots can serialize the
//!   interner exactly,
//! * `adj: dense → AdjacencySet` — the slab; neighbor sets store **raw**
//!   opposite-side ids, so membership probes and intersections never pay a
//!   second interner lookup,
//! * `free` — a LIFO list of dense slots whose vertex left the sample; a
//!   future vertex reuses the slot *and* its inline `Vec` allocation.
//!
//! Compared to the previous `FxHashMap<u32, AdjacencySet>` layout this
//! removes the ~64-byte-per-bucket hash table (half of it empty by load
//! factor) in favour of an 8-byte-entry map plus a dense slab, and recycles
//! allocations when vertices churn.  The interner is pure layout: estimates,
//! sampler state, RNG consumption, and probe-model `comparisons` are
//! bit-identical to the hash layout, because neighbor sets hold exactly the
//! same raw values, the edge vector keeps the same slot order, and kernels
//! see the same operands.
//!
//! [`SampleGraph`] implements both [`SampleStore`] (so the sampling policy
//! can drive it) and [`NeighborhoodView`] (so the
//! per-edge butterfly kernel can query it).

use crate::store::SampleStore;
use abacus_graph::adjacency::AdjacencySet;
use abacus_graph::intersect::KernelTuning;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_graph::{Edge, EdgeKey, FxHashMap, NeighborhoodView, Side, VertexRef};
use rand::{Rng, RngExt};

/// First word of a [`SampleGraph::encode_state`] payload in the interned
/// format.  The legacy (pre-interning) format opened with the edge count,
/// which is bounded by memory, so `usize::MAX` is unambiguous.
const SOA_SAMPLE_MARKER: usize = usize::MAX;

/// Version byte following [`SOA_SAMPLE_MARKER`].
const SOA_SAMPLE_VERSION: u8 = 1;

/// Canonical value written for the reverse-array entry of a freed dense
/// slot.  The live value is stale history and irrelevant to behavior, so the
/// codec canonicalizes it to keep save → restore → save byte-identical.
/// (The free list, not this sentinel, is the authority on which slots are
/// free: a live vertex whose raw id happens to be `u32::MAX` is fine.)
const FREED_SLOT_RAW: u32 = u32::MAX;

/// One side's interned adjacency state: raw↔dense id tables plus the dense
/// slab of neighbor sets.  See the module docs for the layout rationale.
#[derive(Debug, Clone, Default)]
struct SideTable {
    /// Raw stream id → dense slot index.
    ids: FxHashMap<u32, u32>,
    /// Dense slot index → raw stream id (stale for freed slots).
    raw: Vec<u32>,
    /// Dense slab of neighbor sets (neighbors are raw opposite-side ids).
    adj: Vec<AdjacencySet>,
    /// Freed dense slots, reused LIFO so a recycled slot is still cache-warm.
    free: Vec<u32>,
}

impl SideTable {
    #[inline]
    fn get(&self, raw: u32) -> Option<&AdjacencySet> {
        self.ids.get(&raw).map(|&d| &self.adj[d as usize])
    }

    /// Dense slot of `owner`, interning it if unseen (recycling a freed slot
    /// when one exists).
    fn dense_for(&mut self, owner: u32) -> u32 {
        if let Some(&d) = self.ids.get(&owner) {
            return d;
        }
        let d = if let Some(d) = self.free.pop() {
            self.raw[d as usize] = owner;
            d
        } else {
            debug_assert!(self.adj.len() < u32::MAX as usize);
            let d = self.adj.len() as u32;
            self.adj.push(AdjacencySet::new());
            self.raw.push(owner);
            d
        };
        self.ids.insert(owner, d);
        d
    }

    fn insert(&mut self, owner: u32, neighbor: u32, kernel: KernelTuning) {
        let d = self.dense_for(owner);
        self.adj[d as usize].insert_tuned(
            neighbor,
            kernel.adj_spill_threshold,
            kernel.adj_first_reserve,
        );
    }

    fn remove(&mut self, owner: u32, neighbor: u32) {
        if let Some(&d) = self.ids.get(&owner) {
            let set = &mut self.adj[d as usize];
            set.remove(neighbor);
            if set.is_empty() {
                self.release(owner, d);
            }
        }
    }

    /// Returns `owner`'s dense slot to the free list.  The representation is
    /// reset so the next vertex reusing the slot starts exactly like a fresh
    /// one (`Small`); the inline `Vec` allocation is kept, a hash-backed hub
    /// set is dropped (hubs dying out entirely are rare).
    fn release(&mut self, owner: u32, dense: u32) {
        self.ids.remove(&owner);
        let set = &mut self.adj[dense as usize];
        match set {
            AdjacencySet::Small(v) => v.clear(),
            AdjacencySet::Large(_) => *set = AdjacencySet::new(),
        }
        self.free.push(dense);
    }

    fn clear(&mut self) {
        self.ids.clear();
        self.raw.clear();
        self.adj.clear();
        self.free.clear();
    }

    /// Approximate heap bytes of this side, including the interner tables
    /// and the slab itself (one `AdjacencySet` header per dense slot), not
    /// just the sets' own heap — honest accounting for the bytes-per-edge
    /// metric.
    fn heap_bytes(&self) -> usize {
        let sets: usize = self.adj.iter().map(AdjacencySet::heap_bytes).sum();
        // Hash-map entry ≈ key + value + 1 control byte of capacity.
        self.ids.capacity() * (size_of::<(u32, u32)>() + 1)
            + self.raw.capacity() * size_of::<u32>()
            + self.free.capacity() * size_of::<u32>()
            + self.adj.capacity() * size_of::<AdjacencySet>()
            + sets
    }
}

/// A bounded sample of edges organised as a bipartite graph.
#[derive(Debug, Clone, Default)]
pub struct SampleGraph {
    left: SideTable,
    right: SideTable,
    edges: Vec<Edge>,
    slots: FxHashMap<EdgeKey, u32>,
    kernel: KernelTuning,
}

impl SampleGraph {
    /// Creates an empty sample.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sample sized for a memory budget of `k` edges.
    #[must_use]
    pub fn with_budget(k: usize) -> Self {
        SampleGraph {
            left: SideTable::default(),
            right: SideTable::default(),
            edges: Vec::with_capacity(k),
            slots: abacus_graph::fxhash::fx_hashmap_with_capacity(k * 2),
            kernel: KernelTuning::default(),
        }
    }

    /// Sets the cutover ratios used by this sample's intersection kernels
    /// (see [`KernelTuning`]); the estimators wire their configuration's
    /// values through here.  Also carries the adjacency layout knobs
    /// (`adj_spill_threshold`, `adj_first_reserve`) consumed on insert.
    pub fn set_kernel_tuning(&mut self, kernel: KernelTuning) {
        self.kernel = kernel;
    }

    /// Number of sampled edges.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the sample is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether an edge is currently sampled.
    #[inline]
    #[must_use]
    pub fn contains(&self, edge: Edge) -> bool {
        self.slots.contains_key(&edge.key())
    }

    /// The sampled edges, in slot order (arbitrary but stable between
    /// mutations).
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbor set of a vertex inside the sample.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: VertexRef) -> Option<&AdjacencySet> {
        match v.side {
            Side::Left => self.left.get(v.id),
            Side::Right => self.right.get(v.id),
        }
    }

    /// Degree of a vertex inside the sample.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: VertexRef) -> usize {
        self.neighbors(v).map_or(0, AdjacencySet::len)
    }

    /// Picks a uniformly random sampled edge without removing it.
    ///
    /// # Panics
    /// Panics if the sample is empty.
    pub fn random_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> Edge {
        assert!(!self.edges.is_empty(), "cannot pick from an empty sample");
        self.edges[rng.random_range(0..self.edges.len())]
    }

    /// Inserts an edge known to be absent.
    fn insert_edge(&mut self, edge: Edge) {
        debug_assert!(!self.contains(edge), "duplicate edge in sample");
        debug_assert!(self.edges.len() < u32::MAX as usize);
        self.slots.insert(edge.key(), self.edges.len() as u32);
        self.edges.push(edge);
        self.left.insert(edge.left, edge.right, self.kernel);
        self.right.insert(edge.right, edge.left, self.kernel);
    }

    /// Removes an edge; returns whether it was present.
    fn remove_edge(&mut self, edge: Edge) -> bool {
        let Some(slot) = self.slots.remove(&edge.key()) else {
            return false;
        };
        // Swap-remove from the dense vector, fixing the moved edge's slot.
        let slot = slot as usize;
        let last = self.edges.len() - 1;
        self.edges.swap(slot, last);
        self.edges.pop();
        if slot < self.edges.len() {
            self.slots.insert(self.edges[slot].key(), slot as u32);
        }
        // Update adjacency; zero-degree vertices release their dense slot.
        self.left.remove(edge.left, edge.right);
        self.right.remove(edge.right, edge.left);
        true
    }

    /// Total entries held by the memoised sorted copies of hub adjacency
    /// sets ([`abacus_graph::adjacency::LargeSet::sorted`]) — auxiliary
    /// storage the estimators charge (in edge equivalents) to their
    /// `memory_edges` accounting.
    #[must_use]
    pub fn sorted_cache_entries(&self) -> usize {
        self.left
            .adj
            .iter()
            .chain(self.right.adj.iter())
            .filter_map(|set| {
                set.as_large()
                    .and_then(abacus_graph::adjacency::LargeSet::sorted_cache_len)
            })
            .sum()
    }

    fn side(&self, side: Side) -> &SideTable {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    fn side_mut(&mut self, side: Side) -> &mut SideTable {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }

    /// Serializes the sample into `enc` so that [`SampleGraph::restore_state`]
    /// can rebuild it bit-identically.
    ///
    /// Four things make the sample history-dependent, so a plain edge set is
    /// not enough:
    ///
    /// 1. **Slot order.** [`SampleGraph::random_edge`] indexes the dense edge
    ///    vector, so eviction choices (and therefore RNG-driven estimator
    ///    state) depend on the exact slot layout, not just the edge set.
    ///    Edges are written in slot order and re-inserted in that order.
    /// 2. **Interner state.** Dense id assignment and the LIFO free list are
    ///    history-dependent (slots are recycled in reverse order of their
    ///    release), so each [`SideTable`]'s reverse array and free list are
    ///    written verbatim — a resumed run allocates the same dense slots the
    ///    original would have.
    /// 3. **Adjacency representation.** [`AdjacencySet`] promotes from the
    ///    small vector to the hash representation when it grows past the
    ///    threshold and never demotes, which steers kernel selection.  A set
    ///    that grew large and then shrank would be rebuilt small, so the
    ///    promoted vertices are recorded and re-promoted explicitly.
    /// 4. **Sorted caches.** Memoised sorted copies of hub sets count toward
    ///    `memory_edges` accounting, so which caches exist is recorded and
    ///    they are rebuilt eagerly on restore.
    ///
    /// The payload opens with [`SOA_SAMPLE_MARKER`]; payloads from before the
    /// interned layout open with their edge count instead and decode through
    /// the legacy path of [`SampleGraph::restore_state`].
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(SOA_SAMPLE_MARKER);
        enc.put_u8(SOA_SAMPLE_VERSION);
        enc.put_usize(self.edges.len());
        for edge in &self.edges {
            enc.put_u32(edge.left);
            enc.put_u32(edge.right);
        }
        for table in [&self.left, &self.right] {
            enc.put_usize(table.adj.len());
            let freed: std::collections::BTreeSet<u32> = table.free.iter().copied().collect();
            for (dense, &raw) in table.raw.iter().enumerate() {
                enc.put_u32(if freed.contains(&(dense as u32)) {
                    FREED_SLOT_RAW
                } else {
                    raw
                });
            }
            enc.put_usize(table.free.len());
            for &d in &table.free {
                enc.put_u32(d);
            }
        }
        for table in [&self.left, &self.right] {
            let mut large: Vec<(u32, bool)> = table
                .ids
                .iter()
                .filter_map(|(&id, &d)| {
                    table.adj[d as usize]
                        .as_large()
                        .map(|l| (id, l.sorted_cache_len().is_some()))
                })
                .collect();
            large.sort_unstable();
            enc.put_usize(large.len());
            for (id, cached) in large {
                enc.put_u32(id);
                enc.put_u8(u8::from(cached));
            }
        }
    }

    /// Rebuilds the sample from a payload produced by
    /// [`SampleGraph::encode_state`] — either the current interned format or
    /// the legacy pre-interning format (recognised by its leading edge
    /// count).  Clears any current contents; budget sizing and kernel tuning
    /// are the caller's responsibility (they come from estimator
    /// configuration, not from the snapshot).
    ///
    /// # Errors
    /// Fails closed with [`PersistError`] on truncated payloads, duplicate
    /// edges, inconsistent interner tables, or representation flags that
    /// reference unknown vertices.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        self.store_clear();
        let first = dec.get_usize()?;
        if first != SOA_SAMPLE_MARKER {
            return self.restore_legacy(first, dec);
        }
        let version = dec.get_u8()?;
        if version != SOA_SAMPLE_VERSION {
            return Err(PersistError::Corrupt(format!(
                "unknown sample-store format version {version}"
            )));
        }
        let n = dec.get_usize()?;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push(Edge::new(dec.get_u32()?, dec.get_u32()?));
        }
        for side in [Side::Left, Side::Right] {
            let dense_len = dec.get_usize()?;
            let table = self.side_mut(side);
            table.raw.reserve(dense_len);
            for _ in 0..dense_len {
                table.raw.push(dec.get_u32()?);
            }
            table.adj.resize_with(dense_len, AdjacencySet::new);
            let free_len = dec.get_usize()?;
            if free_len > dense_len {
                return Err(PersistError::Corrupt(format!(
                    "sample snapshot frees {free_len} of {dense_len} {side:?} slots"
                )));
            }
            let mut freed = vec![false; dense_len];
            for _ in 0..free_len {
                let d = dec.get_u32()?;
                if d as usize >= dense_len || freed[d as usize] {
                    return Err(PersistError::Corrupt(format!(
                        "bad free-list entry {d} for {side:?} side of sample snapshot"
                    )));
                }
                freed[d as usize] = true;
                table.free.push(d);
            }
            for (dense, freed) in freed.iter().enumerate() {
                if *freed {
                    continue;
                }
                let raw = table.raw[dense];
                if table.ids.insert(raw, dense as u32).is_some() {
                    return Err(PersistError::Corrupt(format!(
                        "duplicate raw id {raw} in {side:?} interner of sample snapshot"
                    )));
                }
            }
        }
        for edge in edges {
            if self.contains(edge) {
                return Err(PersistError::Corrupt(format!(
                    "duplicate edge ({}, {}) in sample snapshot",
                    edge.left, edge.right
                )));
            }
            // Insert through the interner slots the payload established.
            let kernel = self.kernel;
            debug_assert!(self.edges.len() < u32::MAX as usize);
            self.slots.insert(edge.key(), self.edges.len() as u32);
            self.edges.push(edge);
            for (side, owner, neighbor) in [
                (Side::Left, edge.left, edge.right),
                (Side::Right, edge.right, edge.left),
            ] {
                let table = self.side_mut(side);
                let Some(&d) = table.ids.get(&owner) else {
                    return Err(PersistError::Corrupt(format!(
                        "edge endpoint {owner} missing from {side:?} interner of sample snapshot"
                    )));
                };
                table.adj[d as usize].insert_tuned(
                    neighbor,
                    kernel.adj_spill_threshold,
                    kernel.adj_first_reserve,
                );
            }
        }
        // Every interned (non-free) slot must have been touched by an edge.
        for side in [Side::Left, Side::Right] {
            let table = self.side(side);
            if let Some((&raw, _)) = table
                .ids
                .iter()
                .find(|&(_, &d)| table.adj[d as usize].is_empty())
            {
                return Err(PersistError::Corrupt(format!(
                    "{side:?} interner entry {raw} has no sampled edges"
                )));
            }
        }
        self.restore_representation_flags(dec)
    }

    /// Decodes the legacy (pre-interning) payload: edge list in slot order
    /// followed by per-side representation flags.  Dense ids are assigned in
    /// first-touch slot order — the same assignment the interned layout
    /// would have produced had it sampled exactly these edges in this order,
    /// and unobservable either way (dense ids never leave the store).
    fn restore_legacy(&mut self, n: usize, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        for _ in 0..n {
            let edge = Edge::new(dec.get_u32()?, dec.get_u32()?);
            if self.contains(edge) {
                return Err(PersistError::Corrupt(format!(
                    "duplicate edge ({}, {}) in sample snapshot",
                    edge.left, edge.right
                )));
            }
            self.insert_edge(edge);
        }
        self.restore_representation_flags(dec)
    }

    /// Shared tail of both restore paths: per-side sorted (vertex, cached)
    /// flag lists naming the hash-promoted sets.
    fn restore_representation_flags(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        for side in [Side::Left, Side::Right] {
            let flagged = dec.get_usize()?;
            for _ in 0..flagged {
                let id = dec.get_u32()?;
                let cached = dec.get_u8()? != 0;
                let table = self.side_mut(side);
                let Some(&d) = table.ids.get(&id) else {
                    return Err(PersistError::Corrupt(format!(
                        "representation flag for absent {side:?} vertex {id}"
                    )));
                };
                let set = &mut table.adj[d as usize];
                set.promote();
                if cached {
                    // `promote` guarantees the large representation.
                    let large = set
                        .as_large()
                        .ok_or(PersistError::Invariant("promoted set is large"))?;
                    let _ = large.sorted();
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes (used for memory accounting in
    /// the space-complexity sanity tests and the `bytes_per_sampled_edge`
    /// perf_smoke metric).  Counts the interner tables and the adjacency
    /// slab headers, not just inner set storage — see
    /// [`SideTable::heap_bytes`].
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.left.heap_bytes()
            + self.right.heap_bytes()
            + self.edges.capacity() * size_of::<Edge>()
            + self.slots.capacity() * (size_of::<EdgeKey>() + size_of::<u32>() + 1)
    }
}

impl SampleStore<Edge> for SampleGraph {
    fn store_len(&self) -> usize {
        self.len()
    }

    fn store_contains(&self, item: &Edge) -> bool {
        self.contains(*item)
    }

    fn store_insert(&mut self, item: Edge) {
        self.insert_edge(item);
    }

    fn store_remove(&mut self, item: &Edge) -> bool {
        self.remove_edge(*item)
    }

    fn store_replace_random<R: Rng + ?Sized>(&mut self, item: Edge, rng: &mut R) {
        // Deliberately expressed as pick → remove → insert so that the
        // versioned PARABACUS wrapper can reproduce the exact same state
        // transition (and RNG consumption) while logging the two deltas.
        let victim = self.random_edge(rng);
        self.remove_edge(victim);
        self.insert_edge(item);
    }

    fn store_clear(&mut self) {
        self.left.clear();
        self.right.clear();
        self.edges.clear();
        self.slots.clear();
    }
}

impl NeighborhoodView for SampleGraph {
    #[inline]
    fn view_degree(&self, v: VertexRef) -> usize {
        self.degree(v)
    }

    #[inline]
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        self.neighbors(v).is_some_and(|n| n.contains(neighbor))
    }

    #[inline]
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        if let Some(n) = self.neighbors(v) {
            for x in n {
                f(x);
            }
        }
    }

    #[inline]
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> abacus_graph::intersect::IntersectionResult {
        // Resolve both adjacency sets once and intersect them directly instead
        // of paying one map lookup per probe.
        match (self.neighbors(a), self.neighbors(b)) {
            (Some(na), Some(nb)) => abacus_graph::intersect::intersection_count_excluding_with(
                na,
                nb,
                exclude,
                self.kernel,
            ),
            _ => abacus_graph::intersect::IntersectionResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::count_butterflies_with_edge;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn edge(l: u32, r: u32) -> Edge {
        Edge::new(l, r)
    }

    #[test]
    fn insert_remove_and_adjacency_stay_consistent() {
        let mut s = SampleGraph::with_budget(8);
        s.store_insert(edge(1, 10));
        s.store_insert(edge(1, 11));
        s.store_insert(edge(2, 10));
        assert_eq!(s.len(), 3);
        assert!(s.contains(edge(1, 10)));
        assert_eq!(s.degree(VertexRef::left(1)), 2);
        assert_eq!(s.degree(VertexRef::right(10)), 2);

        assert!(s.store_remove(&edge(1, 10)));
        assert!(!s.store_remove(&edge(1, 10)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.degree(VertexRef::left(1)), 1);
        assert_eq!(s.degree(VertexRef::right(10)), 1);
        // Zero-degree vertices disappear.
        assert!(s.store_remove(&edge(2, 10)));
        assert_eq!(s.degree(VertexRef::right(10)), 0);
        assert!(s.neighbors(VertexRef::right(10)).is_none());
    }

    #[test]
    fn freed_interner_slots_are_recycled_lifo() {
        let mut s = SampleGraph::new();
        for i in 0..4 {
            s.store_insert(edge(i, 100));
        }
        // Left slots 0..4 are live. Free 1 then 3; the next two new left
        // vertices must reuse 3 then 1 (LIFO), not grow the slab.
        assert!(s.store_remove(&edge(1, 100)));
        assert!(s.store_remove(&edge(3, 100)));
        assert_eq!(s.left.free, vec![1, 3]);
        s.store_insert(edge(50, 100));
        assert_eq!(s.left.ids[&50], 3);
        s.store_insert(edge(51, 100));
        assert_eq!(s.left.ids[&51], 1);
        assert!(s.left.free.is_empty());
        assert_eq!(s.left.adj.len(), 4, "slab must not grow while slots free");
    }

    #[test]
    fn recycled_slot_starts_small_even_after_a_hub_died() {
        let mut s = SampleGraph::new();
        for r in 0..40u32 {
            s.store_insert(edge(7, 1_000 + r));
        }
        assert!(s
            .neighbors(VertexRef::left(7))
            .unwrap()
            .as_large()
            .is_some());
        for r in 0..40u32 {
            assert!(s.store_remove(&edge(7, 1_000 + r)));
        }
        assert!(s.neighbors(VertexRef::left(7)).is_none());
        // The recycled slot must present a fresh Small set, exactly like the
        // hash layout (which dropped the map entry) would have.
        s.store_insert(edge(8, 5));
        let set = s.neighbors(VertexRef::left(8)).unwrap();
        assert!(set.as_large().is_none());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn replace_random_swaps_one_edge() {
        let mut s = SampleGraph::with_budget(4);
        for i in 0..4 {
            s.store_insert(edge(i, 100 + i));
        }
        let before: BTreeSet<Edge> = s.edges().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(1);
        s.store_replace_random(edge(99, 999), &mut rng);
        let after: BTreeSet<Edge> = s.edges().iter().copied().collect();
        assert_eq!(s.len(), 4);
        assert!(after.contains(&edge(99, 999)));
        assert_eq!(before.intersection(&after).count(), 3);
    }

    #[test]
    fn neighborhood_view_supports_butterfly_counting() {
        let mut s = SampleGraph::new();
        for &(l, r) in &[(0, 11), (1, 10), (1, 11)] {
            s.store_insert(edge(l, r));
        }
        let c = count_butterflies_with_edge(&s, edge(0, 10));
        assert_eq!(c.butterflies, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = SampleGraph::new();
        s.store_insert(edge(1, 2));
        s.store_clear();
        assert!(s.is_empty());
        assert_eq!(s.heap_bytes(), s.heap_bytes()); // accessor does not panic
        assert!(s.neighbors(VertexRef::left(1)).is_none());
    }

    #[test]
    fn encode_restore_round_trips_slot_order_representation_and_interner() {
        let mut s = SampleGraph::with_budget(256);
        // Grow one left hub past the promotion threshold, then shrink it back
        // below so the restored representation must be forced Large.
        for r in 0..40u32 {
            s.store_insert(edge(7, 1_000 + r));
        }
        for r in 0..30u32 {
            assert!(s.store_remove(&edge(7, 1_000 + r)));
        }
        for i in 0..20u32 {
            s.store_insert(edge(i, 500 + (i % 3)));
        }
        // Leave freed slots behind so the free list round-trips non-trivially.
        assert!(s.store_remove(&edge(3, 500)));
        assert!(s.store_remove(&edge(4, 501)));
        assert!(!s.right.free.is_empty() || !s.left.free.is_empty());
        // Build a sorted cache on the (still Large) hub set.
        let hub = s.neighbors(VertexRef::left(7)).unwrap();
        let large = hub.as_large().expect("hub stays large after shrinking");
        let _ = large.sorted();
        assert!(s.sorted_cache_entries() > 0);

        let mut enc = Encoder::new();
        s.encode_state(&mut enc);
        let bytes = enc.finish();

        let mut restored = SampleGraph::with_budget(256);
        let mut dec = Decoder::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        dec.expect_end().unwrap();

        assert_eq!(restored.edges(), s.edges(), "slot order must survive");
        assert_eq!(
            restored.left.free, s.left.free,
            "free-list order must survive"
        );
        assert_eq!(restored.right.free, s.right.free);
        assert_eq!(
            restored.left.ids, s.left.ids,
            "dense assignment must survive"
        );
        assert_eq!(restored.right.ids, s.right.ids);
        assert!(restored
            .neighbors(VertexRef::left(7))
            .unwrap()
            .as_large()
            .is_some());
        assert_eq!(restored.sorted_cache_entries(), s.sorted_cache_entries());
        // Re-encoding the restored sample must be byte-identical.
        let mut enc2 = Encoder::new();
        restored.encode_state(&mut enc2);
        assert_eq!(enc2.finish(), bytes);
    }

    #[test]
    fn legacy_payload_restores_through_the_pre_interning_format() {
        // Build a sample, encode it the way the pre-interning code did
        // (edge count, edges in slot order, per-side Large flags), and
        // restore: contents and representation must match the live sample,
        // and a re-encode lands in the new format deterministically.
        let mut s = SampleGraph::with_budget(128);
        for r in 0..40u32 {
            s.store_insert(edge(7, 1_000 + r));
        }
        for i in 0..10u32 {
            s.store_insert(edge(i, 500 + (i % 3)));
        }
        let hub = s.neighbors(VertexRef::left(7)).unwrap();
        let _ = hub.as_large().unwrap().sorted();

        let mut enc = Encoder::new();
        enc.put_usize(s.len());
        for e in s.edges() {
            enc.put_u32(e.left);
            enc.put_u32(e.right);
        }
        // Left side: vertex 7 is Large with a built cache; right side: none.
        enc.put_usize(1);
        enc.put_u32(7);
        enc.put_u8(1);
        enc.put_usize(0);
        let legacy = enc.finish();

        let mut restored = SampleGraph::with_budget(128);
        let mut dec = Decoder::new(&legacy);
        restored.restore_state(&mut dec).unwrap();
        dec.expect_end().unwrap();

        assert_eq!(restored.edges(), s.edges());
        assert!(restored
            .neighbors(VertexRef::left(7))
            .unwrap()
            .as_large()
            .is_some());
        assert_eq!(restored.sorted_cache_entries(), s.sorted_cache_entries());
        // The legacy-restored sample re-encodes identically to the live one:
        // same edges in slot order, and first-touch dense assignment.
        let (mut enc_live, mut enc_restored) = (Encoder::new(), Encoder::new());
        s.encode_state(&mut enc_live);
        restored.encode_state(&mut enc_restored);
        assert_eq!(enc_restored.finish(), enc_live.finish());
    }

    #[test]
    fn restore_rejects_duplicate_edges_and_unknown_flags() {
        let mut s = SampleGraph::new();
        s.store_insert(edge(1, 2));
        let mut enc = Encoder::new();
        enc.put_usize(2);
        for _ in 0..2 {
            enc.put_u32(1);
            enc.put_u32(2);
        }
        let bytes = enc.finish();
        let mut dup = SampleGraph::new();
        assert!(dup.restore_state(&mut Decoder::new(&bytes)).is_err());

        let mut enc = Encoder::new();
        s.encode_state(&mut enc);
        // Claim a Large flag for a vertex the edge list never mentions
        // (legacy-format payload).
        let mut enc2 = Encoder::new();
        enc2.put_usize(1);
        enc2.put_u32(1);
        enc2.put_u32(2);
        enc2.put_usize(1);
        enc2.put_u32(99);
        enc2.put_u8(1);
        enc2.put_usize(0);
        let bytes = enc2.finish();
        let mut bad = SampleGraph::new();
        assert!(bad.restore_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn restore_rejects_inconsistent_interner_tables() {
        let mut s = SampleGraph::new();
        s.store_insert(edge(1, 2));
        let mut enc = Encoder::new();
        s.encode_state(&mut enc);
        let good = enc.finish();

        // Hand-build a new-format payload whose free list points past the
        // dense table.
        let mut enc = Encoder::new();
        enc.put_usize(SOA_SAMPLE_MARKER);
        enc.put_u8(SOA_SAMPLE_VERSION);
        enc.put_usize(1);
        enc.put_u32(1);
        enc.put_u32(2);
        enc.put_usize(1); // left dense table of size 1
        enc.put_u32(1);
        enc.put_usize(1); // one free entry…
        enc.put_u32(9); // …pointing past the table
        let bytes = enc.finish();
        let mut bad = SampleGraph::new();
        assert!(bad.restore_state(&mut Decoder::new(&bytes)).is_err());

        // Sanity: the good payload still restores.
        let mut ok = SampleGraph::new();
        ok.restore_state(&mut Decoder::new(&good)).unwrap();
        assert_eq!(ok.edges(), s.edges());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn random_edge_on_empty_sample_panics() {
        let s = SampleGraph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.random_edge(&mut rng);
    }

    /// The pre-interning adjacency layout, reconstructed as a test oracle:
    /// per-side `FxHashMap<u32, AdjacencySet>` plus the same dense edge
    /// vector and edge→slot map with swap-remove semantics.  The interned
    /// SoA store claims bit-parity with this layout (module docs), and the
    /// proptest below holds it to that: identical op sequences must yield
    /// identical slot order, neighbor sets, representations, kernel
    /// `comparisons`, and RNG consumption.
    #[derive(Default)]
    struct HashLayoutOracle {
        left: FxHashMap<u32, AdjacencySet>,
        right: FxHashMap<u32, AdjacencySet>,
        edges: Vec<Edge>,
        slots: FxHashMap<EdgeKey, u32>,
    }

    impl HashLayoutOracle {
        fn insert(&mut self, e: Edge) {
            let k = KernelTuning::default();
            self.slots.insert(e.key(), self.edges.len() as u32);
            self.edges.push(e);
            self.left.entry(e.left).or_default().insert_tuned(
                e.right,
                k.adj_spill_threshold,
                k.adj_first_reserve,
            );
            self.right.entry(e.right).or_default().insert_tuned(
                e.left,
                k.adj_spill_threshold,
                k.adj_first_reserve,
            );
        }

        fn remove(&mut self, e: Edge) -> bool {
            let Some(slot) = self.slots.remove(&e.key()) else {
                return false;
            };
            let slot = slot as usize;
            let last = self.edges.len() - 1;
            self.edges.swap(slot, last);
            self.edges.pop();
            if slot < self.edges.len() {
                self.slots.insert(self.edges[slot].key(), slot as u32);
            }
            for (map, owner, neighbor) in [
                (&mut self.left, e.left, e.right),
                (&mut self.right, e.right, e.left),
            ] {
                let set = map.get_mut(&owner).expect("edge was present");
                set.remove(neighbor);
                if set.is_empty() {
                    map.remove(&owner); // the hash layout dropped empty entries
                }
            }
            true
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Identical op sequences through the interned SoA store and the
        /// pre-interning hash layout must be indistinguishable: same slot
        /// order, same neighbor sets and representations, same kernel
        /// `comparisons`, same RNG consumption.  `0u32..48` right ids give
        /// left hubs room to cross the spill threshold, so the parity also
        /// covers the Small → Large promotion point.
        #[test]
        fn interned_store_is_bit_parity_with_the_hash_layout(
            ops in proptest::collection::vec((0u8..3, 0u32..6, 0u32..48), 1..250),
            seed in 0u64..64,
        ) {
            let mut soa = SampleGraph::new();
            let mut oracle = HashLayoutOracle::default();
            let mut soa_rng = StdRng::seed_from_u64(seed);
            let mut oracle_rng = StdRng::seed_from_u64(seed);
            for (op, l, r) in ops {
                let e = edge(l, r);
                let present = oracle.slots.contains_key(&e.key());
                match op {
                    0 => {
                        if !present {
                            soa.store_insert(e);
                            oracle.insert(e);
                        }
                    }
                    1 => {
                        prop_assert_eq!(soa.store_remove(&e), oracle.remove(e));
                    }
                    _ => {
                        if !oracle.edges.is_empty() && !present {
                            soa.store_replace_random(e, &mut soa_rng);
                            let victim =
                                oracle.edges[oracle_rng.random_range(0..oracle.edges.len())];
                            prop_assert!(oracle.remove(victim));
                            oracle.insert(e);
                        }
                    }
                }
                prop_assert_eq!(soa.edges(), oracle.edges.as_slice());
            }
            // The RNG streams stayed in lockstep (same number of draws, same
            // dense slot order behind every draw).
            prop_assert_eq!(soa_rng.random::<u64>(), oracle_rng.random::<u64>());
            // Per-vertex parity: membership, degree, contents, and the
            // representation the kernels dispatch on.
            for (side, map) in [(Side::Left, &oracle.left), (Side::Right, &oracle.right)] {
                for (&raw, expected) in map {
                    let v = VertexRef { side, id: raw };
                    let got = soa.neighbors(v).expect("oracle vertex must exist");
                    prop_assert_eq!(got.to_sorted_vec(), expected.to_sorted_vec());
                    prop_assert_eq!(got.as_large().is_some(), expected.as_large().is_some());
                }
            }
            // Kernel parity on every surviving edge: the intersection sees
            // operands of the same sizes and representations, so both count
            // and the probe-model `comparisons` must be bit-identical.
            for e in &oracle.edges {
                let a = soa.neighbors(VertexRef::left(e.left)).expect("live edge");
                let b = soa.neighbors(VertexRef::right(e.right)).expect("live edge");
                let oa = &oracle.left[&e.left];
                let ob = &oracle.right[&e.right];
                prop_assert_eq!(
                    abacus_graph::intersect::intersection_count_excluding(a, b, e.left),
                    abacus_graph::intersect::intersection_count_excluding(oa, ob, e.left)
                );
            }
        }

        /// Under random insert/remove/replace sequences, the dense edge
        /// vector, the slot index, and the adjacency tables must agree.
        #[test]
        fn storage_invariants(ops in proptest::collection::vec((0u8..3, 0u32..12, 0u32..12), 1..200)) {
            let mut s = SampleGraph::new();
            let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(7);
            for (op, l, r) in ops {
                let e = edge(l, r);
                match op {
                    0 => {
                        if !reference.contains(&(l, r)) {
                            s.store_insert(e);
                            reference.insert((l, r));
                        }
                    }
                    1 => {
                        prop_assert_eq!(s.store_remove(&e), reference.remove(&(l, r)));
                    }
                    _ => {
                        if !reference.is_empty() && !reference.contains(&(l, r)) {
                            let victim = s.random_edge(&mut rng);
                            // replay the same choice through the store API
                            s.store_remove(&victim);
                            s.store_insert(e);
                            reference.remove(&(victim.left, victim.right));
                            reference.insert((l, r));
                        }
                    }
                }
                prop_assert_eq!(s.len(), reference.len());
                let got: BTreeSet<(u32, u32)> =
                    s.edges().iter().map(|e| (e.left, e.right)).collect();
                prop_assert_eq!(&got, &reference);
                // Degrees match the reference adjacency.
                for &(l, r) in &reference {
                    prop_assert!(s.view_contains(VertexRef::left(l), r));
                    prop_assert!(s.view_contains(VertexRef::right(r), l));
                }
                // Interner invariants: ids ↔ raw agree, free slots are empty.
                for table in [&s.left, &s.right] {
                    for (&raw, &d) in &table.ids {
                        prop_assert_eq!(table.raw[d as usize], raw);
                        prop_assert!(!table.adj[d as usize].is_empty());
                    }
                    for &d in &table.free {
                        prop_assert!(table.adj[d as usize].is_empty());
                    }
                    prop_assert_eq!(
                        table.ids.len() + table.free.len(),
                        table.adj.len()
                    );
                }
            }
        }
    }
}
