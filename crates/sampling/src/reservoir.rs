//! Classic reservoir sampling (Vitter 1985, "Algorithm R").
//!
//! Reservoir sampling keeps a uniform sample of a stream of *insertions*.  It
//! has no notion of deletions: a deleted item silently stays in the reservoir
//! and keeps contributing to whatever statistic is computed over the sample.
//! This is exactly the failure mode of the insert-only butterfly-counting
//! baselines that ABACUS fixes, and the accuracy experiments (Fig. 3) measure
//! its cost.

use crate::store::SampleStore;
use rand::{Rng, RngExt};

/// The reservoir sampling policy.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: usize,
}

impl ReservoirSampler {
    /// Creates a reservoir of the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "reservoir capacity must be at least 1");
        ReservoirSampler { capacity, seen: 0 }
    }

    /// Rebuilds a sampler from its capacity and offered-item count — the
    /// checkpoint/restore path.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn from_state(capacity: usize, seen: usize) -> Self {
        assert!(capacity >= 1, "reservoir capacity must be at least 1");
        ReservoirSampler { capacity, seen }
    }

    /// The reservoir capacity `k`.
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stream items offered so far.
    #[inline]
    #[must_use]
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Current admission probability `min(1, k / n)`.
    #[inline]
    #[must_use]
    pub fn admission_probability(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            (self.capacity as f64 / self.seen as f64).min(1.0)
        }
    }

    /// Offers an item to the reservoir.  Returns `true` if it was admitted.
    pub fn insert<T, S, R>(&mut self, item: T, store: &mut S, rng: &mut R) -> bool
    where
        S: SampleStore<T>,
        R: Rng + ?Sized,
    {
        self.seen += 1;
        if store.store_len() < self.capacity {
            store.store_insert(item);
            true
        } else {
            let p = self.capacity as f64 / self.seen as f64;
            if rng.random_bool(p.min(1.0)) {
                store.store_replace_random(item, rng);
                true
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VecSampleStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_then_stays_at_capacity() {
        let mut rs = ReservoirSampler::new(5);
        let mut store: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100u32 {
            rs.insert(i, &mut store, &mut rng);
            assert!(store.store_len() <= 5);
        }
        assert_eq!(store.store_len(), 5);
        assert_eq!(rs.seen(), 100);
        assert!((rs.admission_probability() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn admission_probability_starts_at_one() {
        let rs = ReservoirSampler::new(5);
        assert_eq!(rs.admission_probability(), 1.0);
        assert_eq!(rs.capacity(), 5);
    }

    #[test]
    fn sample_is_roughly_uniform_over_the_stream() {
        const TRIALS: u64 = 3_000;
        const N: u32 = 30;
        const K: usize = 6;
        let mut appearances = vec![0u32; N as usize];
        for trial in 0..TRIALS {
            let mut rs = ReservoirSampler::new(K);
            let mut store: VecSampleStore<u32> = VecSampleStore::new();
            let mut rng = StdRng::seed_from_u64(trial);
            for i in 0..N {
                rs.insert(i, &mut store, &mut rng);
            }
            for &item in store.items() {
                appearances[item as usize] += 1;
            }
        }
        let expected = TRIALS as f64 * K as f64 / f64::from(N);
        for (i, &count) in appearances.iter().enumerate() {
            let deviation = (f64::from(count) - expected).abs() / expected;
            assert!(deviation < 0.25, "item {i}: count {count} vs ≈{expected}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = ReservoirSampler::new(0);
    }
}
