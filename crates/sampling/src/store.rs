//! Storage abstraction for bounded samples.
//!
//! Sampling *policies* (Random Pairing, reservoir, …) decide *whether* an item
//! enters or leaves the sample; the *store* decides how sampled items are laid
//! out in memory.  ABACUS needs its sample organised as a bipartite graph with
//! adjacency sets (so that per-edge butterfly counting is fast), while the
//! sampling policy only needs four operations: insert, remove, replace a
//! uniformly random victim, and report the size.
//!
//! Because the policy is generic over this trait, stores compose by
//! *wrapping*: `abacus-core` drives the same policy through a recording
//! wrapper (PARABACUS's `RecordingSample`, which logs every adjacency delta
//! for the versioned views) and a mirroring wrapper (`MirroredSample`, which
//! keeps the frozen CSR counting snapshot in lock-step with the sample).
//! Wrappers must preserve the exact state transitions — and, for
//! [`store_replace_random`](SampleStore::store_replace_random), the exact
//! RNG consumption — of the store they wrap, so that sampling decisions are
//! bit-for-bit reproducible whichever wrapper is active.

use rand::{Rng, RngExt};

/// Physical storage of a bounded sample of items of type `T`.
pub trait SampleStore<T> {
    /// Number of items currently stored.
    fn store_len(&self) -> usize;

    /// Whether the item is currently stored.
    fn store_contains(&self, item: &T) -> bool;

    /// Adds an item that is known not to be present.
    fn store_insert(&mut self, item: T);

    /// Removes an item; returns whether it was present.
    fn store_remove(&mut self, item: &T) -> bool;

    /// Removes a uniformly random victim and inserts `item` in its place.
    ///
    /// # Panics
    /// Implementations may panic if the store is empty.
    fn store_replace_random<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R);

    /// Removes every stored item.
    fn store_clear(&mut self);

    /// Whether the store is empty.
    fn store_is_empty(&self) -> bool {
        self.store_len() == 0
    }
}

/// Reference [`SampleStore`] keeping items in a vector with O(1) random
/// replacement and O(n) membership (sufficient for tests and for samplers over
/// small item universes).
#[derive(Debug, Clone, Default)]
pub struct VecSampleStore<T> {
    items: Vec<T>,
}

impl<T: PartialEq> VecSampleStore<T> {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        VecSampleStore { items: Vec::new() }
    }

    /// Creates an empty store with a capacity hint.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        VecSampleStore {
            items: Vec::with_capacity(capacity),
        }
    }

    /// A view of the stored items (arbitrary order).
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

impl<T: PartialEq> SampleStore<T> for VecSampleStore<T> {
    fn store_len(&self) -> usize {
        self.items.len()
    }

    fn store_contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    fn store_insert(&mut self, item: T) {
        debug_assert!(!self.items.contains(&item), "duplicate insert into sample");
        self.items.push(item);
    }

    fn store_remove(&mut self, item: &T) -> bool {
        if let Some(pos) = self.items.iter().position(|x| x == item) {
            self.items.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn store_replace_random<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        assert!(!self.items.is_empty(), "cannot replace in an empty store");
        let victim = rng.random_range(0..self.items.len());
        self.items[victim] = item;
    }

    fn store_clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_insert_remove_contains() {
        let mut s: VecSampleStore<u32> = VecSampleStore::new();
        assert!(s.store_is_empty());
        s.store_insert(4);
        s.store_insert(9);
        assert_eq!(s.store_len(), 2);
        assert!(s.store_contains(&4));
        assert!(!s.store_contains(&5));
        assert!(s.store_remove(&4));
        assert!(!s.store_remove(&4));
        assert_eq!(s.store_len(), 1);
        s.store_clear();
        assert!(s.store_is_empty());
    }

    #[test]
    fn replace_random_keeps_size_and_inserts_item() {
        let mut s: VecSampleStore<u32> = VecSampleStore::with_capacity(4);
        for i in 0..4 {
            s.store_insert(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        s.store_replace_random(99, &mut rng);
        assert_eq!(s.store_len(), 4);
        assert!(s.store_contains(&99));
    }

    #[test]
    fn replace_random_victims_are_roughly_uniform() {
        // Replace once in a 4-element store, many trials: each original item
        // should be evicted about 25% of the time.
        let mut evicted = [0u32; 4];
        for trial in 0..8_000u64 {
            let mut s: VecSampleStore<u32> = VecSampleStore::new();
            for i in 0..4 {
                s.store_insert(i);
            }
            let mut rng = StdRng::seed_from_u64(trial);
            s.store_replace_random(99, &mut rng);
            for i in 0..4u32 {
                if !s.store_contains(&i) {
                    evicted[i as usize] += 1;
                }
            }
        }
        for &count in &evicted {
            assert!((1_700..2_300).contains(&count), "eviction count {count}");
        }
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn replace_in_empty_store_panics() {
        let mut s: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        s.store_replace_random(1, &mut rng);
    }
}
