//! Per-replica seed derivation for ensemble estimators.
//!
//! An ensemble runs K statistically independent replicas of one estimator.
//! Independence hinges on the replicas drawing *unrelated* random streams, so
//! their seeds must differ — and differ well: adjacent seeds fed to a PRNG
//! with a weak seeding function can produce correlated trajectories, which
//! would silently void the ~K× variance reduction the ensemble exists for.

/// The 64-bit golden-ratio increment of the splitmix64 generator.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64's finalizer: a bijective avalanche mix of the full 64-bit word
/// (Steele, Lea, Flood — OOPSLA 2014; the same mix seeds `StdRng` in many
/// ecosystems).  Public because ensemble partition routing uses the same
/// mix to shard edge keys.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed of ensemble replica `replica` from a base seed.
///
/// Two deliberate properties:
///
/// * **Replica 0 inherits the base seed unchanged.**  An ensemble of one is
///   thereby *bit-identical* to the bare estimator built with the same seed —
///   the exactness discipline the parity test suite asserts for every
///   estimator kind.
/// * **Replicas ≥ 1 receive splitmix64-scrambled seeds** along the
///   golden-ratio sequence `base + i·γ`, so consecutive replica indices land
///   on uncorrelated points of the seed space rather than adjacent integers.
///
/// The derivation is a pure function of `(base, replica)`: stable across
/// runs, machines, and thread counts.
///
/// ```
/// use abacus_sampling::derive_seed;
///
/// assert_eq!(derive_seed(42, 0), 42); // ensemble of one ≡ the bare estimator
/// assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3)); // stable
/// ```
#[must_use]
pub fn derive_seed(base: u64, replica: u64) -> u64 {
    if replica == 0 {
        base
    } else {
        splitmix64(base.wrapping_add(replica.wrapping_mul(GOLDEN_GAMMA)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn replica_zero_is_the_base_seed() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(derive_seed(base, 0), base);
        }
    }

    #[test]
    fn replicas_never_share_a_seed() {
        // Far beyond any plausible ensemble width, across several bases
        // (including adjacent ones, the classic weak-seeding trap).
        for base in [0u64, 1, 2, 7, 1_000_003, u64::MAX - 1] {
            let seeds: HashSet<u64> = (0..1_024).map(|i| derive_seed(base, i)).collect();
            assert_eq!(seeds.len(), 1_024, "seed collision under base {base}");
        }
    }

    #[test]
    fn derivation_is_stable_across_runs() {
        // Pinned values: changing the derivation would silently re-randomise
        // every ensemble experiment, so the constants are locked by test.
        assert_eq!(derive_seed(0, 0), 0);
        assert_eq!(derive_seed(0, 1), splitmix64(GOLDEN_GAMMA));
        assert_eq!(derive_seed(42, 2), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn scrambled_seeds_differ_from_naive_offsets() {
        // The whole point of the splitmix finalizer: replica i's seed is not
        // `base + i` (adjacent integers seed correlated StdRng streams).
        for i in 1..64u64 {
            assert_ne!(derive_seed(100, i), 100 + i);
        }
    }
}
