//! FLEET-style adaptive Bernoulli sampling with reservoir resizing.
//!
//! FLEET (Sanei-Mehri et al., CIKM 2019) admits each arriving edge into its
//! reservoir with the current probability `p` (initially 1).  Whenever the
//! reservoir reaches its capacity, it is *resized*: every stored edge is kept
//! independently with probability γ (0.75 in the paper) and `p` is multiplied
//! by γ.  The estimator later divides discovered butterflies by `p³`, the
//! probability that the three complementary edges of a butterfly were all
//! retained.
//!
//! This module holds only the sampling-policy state machine; the butterfly
//! estimation lives in `abacus-baselines::fleet`.

use rand::{Rng, RngExt};

/// The adaptive Bernoulli policy state.
#[derive(Debug, Clone)]
pub struct AdaptiveBernoulli {
    capacity: usize,
    gamma: f64,
    probability: f64,
    resizes: usize,
}

impl AdaptiveBernoulli {
    /// Creates the policy with the given reservoir capacity and resize factor
    /// γ ∈ (0, 1).
    ///
    /// # Panics
    /// Panics if `capacity` is zero or γ is outside `(0, 1)`.
    #[must_use]
    pub fn new(capacity: usize, gamma: f64) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        assert!(
            (0.0..1.0).contains(&gamma) && gamma > 0.0,
            "gamma must be in (0, 1)"
        );
        AdaptiveBernoulli {
            capacity,
            gamma,
            probability: 1.0,
            resizes: 0,
        }
    }

    /// Rebuilds a policy from state captured through the public accessors —
    /// the checkpoint/restore path.  `probability` carries the exact bit
    /// pattern of the saved run so the restored admission decisions match.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or γ is outside `(0, 1)`.
    #[must_use]
    pub fn from_state(capacity: usize, gamma: f64, probability: f64, resizes: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        assert!(
            (0.0..1.0).contains(&gamma) && gamma > 0.0,
            "gamma must be in (0, 1)"
        );
        AdaptiveBernoulli {
            capacity,
            gamma,
            probability,
            resizes,
        }
    }

    /// The reservoir capacity.
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The resize factor γ.
    #[inline]
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The current admission probability `p`.
    #[inline]
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Number of resize events so far.
    #[inline]
    #[must_use]
    pub fn resizes(&self) -> usize {
        self.resizes
    }

    /// Decides whether the arriving item is admitted to the reservoir.
    #[inline]
    pub fn admit<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.probability >= 1.0 || rng.random_bool(self.probability)
    }

    /// Must be called when the reservoir has reached its capacity.  Lowers the
    /// admission probability and returns the retention probability (γ) the
    /// caller must apply to every stored item.
    pub fn resize(&mut self) -> f64 {
        self.probability *= self.gamma;
        self.resizes += 1;
        self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_fully_admitting() {
        let policy = AdaptiveBernoulli::new(100, 0.75);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.probability(), 1.0);
        assert!((0..50).all(|_| policy.admit(&mut rng)));
    }

    #[test]
    fn resize_lowers_probability_geometrically() {
        let mut policy = AdaptiveBernoulli::new(100, 0.75);
        assert!((policy.resize() - 0.75).abs() < 1e-12);
        assert!((policy.probability() - 0.75).abs() < 1e-12);
        policy.resize();
        assert!((policy.probability() - 0.5625).abs() < 1e-12);
        assert_eq!(policy.resizes(), 2);
        assert_eq!(policy.capacity(), 100);
        assert!((policy.gamma() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn admission_rate_tracks_probability() {
        let mut policy = AdaptiveBernoulli::new(100, 0.5);
        policy.resize(); // p = 0.5
        let mut rng = StdRng::seed_from_u64(2);
        let admitted = (0..20_000).filter(|_| policy.admit(&mut rng)).count();
        let rate = admitted as f64 / 20_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_panics() {
        let _ = AdaptiveBernoulli::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = AdaptiveBernoulli::new(0, 0.75);
    }
}
