//! Random Pairing (Gemulla, Lehner, Haas — VLDB Journal 2008).
//!
//! Random Pairing maintains a bounded-size **uniform** random sample of the
//! items currently alive in a fully dynamic stream (insertions *and*
//! deletions).  The key idea is to treat every deletion as a "debt" that a
//! future insertion pays off instead of sampling the insertion afresh:
//!
//! * a deletion of an item that was **in** the sample increments the
//!   *bad*-deletion counter `c_b`,
//! * a deletion of an item **outside** the sample increments the
//!   *good*-deletion counter `c_g`,
//! * while `c_b + c_g > 0`, an arriving insertion fills one of the vacancies:
//!   with probability `c_b / (c_b + c_g)` it enters the sample (paying off a
//!   bad deletion), otherwise it stays out (paying off a good one),
//! * with no outstanding deletions the scheme degenerates to classic reservoir
//!   sampling.
//!
//! This is Algorithm 2 of the ABACUS paper verbatim; ABACUS layers butterfly
//! counting on top and uses the `(|E|, c_b, c_g)` triplet to compute the
//! butterfly-discovery probability of Eq. 1.

use crate::store::SampleStore;
use rand::{Rng, RngExt};

/// A snapshot of the Random Pairing bookkeeping state — exactly the triplet
/// `{s = |E|, c_b, c_g}` that PARABACUS caches per sample version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomPairingState {
    /// Number of stream items currently alive (inserted and not yet deleted).
    pub live_items: usize,
    /// Uncompensated deletions of sampled items (`c_b`).
    pub bad_deletions: usize,
    /// Uncompensated deletions of non-sampled items (`c_g`).
    pub good_deletions: usize,
}

impl RandomPairingState {
    /// `c_b + c_g`.
    #[inline]
    #[must_use]
    pub fn outstanding_deletions(&self) -> usize {
        self.bad_deletions + self.good_deletions
    }

    /// `T = |E| + c_b + c_g`, the notional population size used by Eq. 1.
    #[inline]
    #[must_use]
    pub fn population(&self) -> usize {
        self.live_items + self.outstanding_deletions()
    }
}

/// The Random Pairing sampling policy (Algorithm 2).
///
/// The policy is generic over the [`SampleStore`] that physically holds the
/// sampled items, so the same implementation drives both the unit-test vector
/// store and ABACUS's adjacency-list sample graph.
///
/// ```
/// use abacus_sampling::{RandomPairing, SampleStore, VecSampleStore};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut policy = RandomPairing::new(2);
/// let mut store: VecSampleStore<u32> = VecSampleStore::default();
/// let mut rng = StdRng::seed_from_u64(7);
///
/// // Within budget every insertion is sampled.
/// policy.insert(10, &mut store, &mut rng);
/// policy.insert(20, &mut store, &mut rng);
/// assert_eq!(store.store_len(), 2);
///
/// // A deletion of a sampled item leaves a "bad deletion" debt that the
/// // next insertion pays off instead of being sampled afresh.
/// policy.delete(&10, &mut store);
/// assert_eq!(policy.state().bad_deletions, 1);
/// policy.insert(30, &mut store, &mut rng);
/// assert_eq!(policy.state().outstanding_deletions(), 0);
/// assert_eq!(policy.state().live_items, 2);
/// ```
#[derive(Debug, Clone)]
pub struct RandomPairing {
    budget: usize,
    state: RandomPairingState,
}

impl RandomPairing {
    /// Creates the policy with memory budget `k ≥ 1` (the paper requires
    /// `k ≥ 2` for butterfly counting, but the sampler itself only needs 1).
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        assert!(budget >= 1, "memory budget must be at least 1");
        RandomPairing {
            budget,
            state: RandomPairingState::default(),
        }
    }

    /// Rebuilds a policy from a budget and a bookkeeping triplet captured by
    /// [`RandomPairing::state`] — the checkpoint/restore path.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn from_state(budget: usize, state: RandomPairingState) -> Self {
        assert!(budget >= 1, "memory budget must be at least 1");
        RandomPairing { budget, state }
    }

    /// The memory budget `k`.
    #[inline]
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The current bookkeeping triplet `{|E|, c_b, c_g}`.
    #[inline]
    #[must_use]
    pub fn state(&self) -> RandomPairingState {
        self.state
    }

    /// `y = min(k, |E| + c_b + c_g)` — the sample size the uniformity argument
    /// reasons about (Lemma 1 of the paper).
    #[inline]
    #[must_use]
    pub fn expected_sample_size(&self) -> usize {
        self.budget.min(self.state.population())
    }

    /// Processes an insertion (Algorithm 2, `InsertToSample`).
    pub fn insert<T, S, R>(&mut self, item: T, store: &mut S, rng: &mut R)
    where
        S: SampleStore<T>,
        R: Rng + ?Sized,
    {
        self.state.live_items += 1;
        if self.state.outstanding_deletions() == 0 {
            // Reservoir behaviour.
            if store.store_len() < self.budget {
                store.store_insert(item);
            } else {
                let p = self.budget as f64 / self.state.live_items as f64;
                if rng.random_bool(p.min(1.0)) {
                    store.store_replace_random(item, rng);
                }
            }
        } else {
            // Pair the insertion with an outstanding deletion.
            let p = self.state.bad_deletions as f64 / self.state.outstanding_deletions() as f64;
            if p > 0.0 && rng.random_bool(p) {
                debug_assert!(
                    store.store_len() < self.budget,
                    "bad-deletion compensation implies a vacancy in the sample"
                );
                store.store_insert(item);
                self.state.bad_deletions -= 1;
            } else {
                self.state.good_deletions -= 1;
            }
        }
    }

    /// Processes a deletion (Algorithm 2, `DeleteFromSample`).
    ///
    /// The caller must only delete items that are currently alive in the
    /// stream (the stream model guarantees this).
    pub fn delete<T, S>(&mut self, item: &T, store: &mut S)
    where
        S: SampleStore<T>,
    {
        debug_assert!(self.state.live_items > 0, "deletion from an empty stream");
        self.state.live_items = self.state.live_items.saturating_sub(1);
        if store.store_remove(item) {
            self.state.bad_deletions += 1;
        } else {
            self.state.good_deletions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VecSampleStore;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn fills_up_to_budget_exactly_like_a_set_when_small() {
        let mut rp = RandomPairing::new(10);
        let mut store: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..8 {
            rp.insert(i, &mut store, &mut rng);
        }
        assert_eq!(store.store_len(), 8);
        assert_eq!(rp.state().live_items, 8);
        // While under budget the sample is the whole population.
        for i in 0..8u32 {
            assert!(store.store_contains(&i));
        }
    }

    #[test]
    fn never_exceeds_budget() {
        let mut rp = RandomPairing::new(16);
        let mut store: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..10_000u32 {
            rp.insert(i, &mut store, &mut rng);
            assert!(store.store_len() <= 16);
        }
        assert_eq!(store.store_len(), 16);
        assert_eq!(rp.expected_sample_size(), 16);
    }

    #[test]
    fn deletions_update_counters_and_store() {
        let mut rp = RandomPairing::new(4);
        let mut store: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..4 {
            rp.insert(i, &mut store, &mut rng);
        }
        // Delete a sampled item -> bad deletion.
        rp.delete(&0, &mut store);
        assert_eq!(rp.state().bad_deletions, 1);
        assert_eq!(store.store_len(), 3);
        // Insert more items than the population can compensate.
        for i in 10..14 {
            rp.insert(i, &mut store, &mut rng);
        }
        assert_eq!(rp.state().outstanding_deletions(), 0);
        assert!(store.store_len() <= 4);
    }

    #[test]
    fn deleting_unsampled_item_is_a_good_deletion() {
        let mut rp = RandomPairing::new(2);
        let mut store: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..20 {
            rp.insert(i, &mut store, &mut rng);
        }
        // Find an item that is not in the sample.
        let outside = (0..20u32).find(|i| !store.store_contains(i)).unwrap();
        rp.delete(&outside, &mut store);
        assert_eq!(rp.state().good_deletions, 1);
        assert_eq!(rp.state().bad_deletions, 0);
        assert_eq!(rp.state().live_items, 19);
    }

    #[test]
    fn sample_is_exact_while_population_fits_in_budget() {
        // With k larger than the population at all times, the sample must be
        // exactly the set of live items, deletions included.
        let mut rp = RandomPairing::new(100);
        let mut store: VecSampleStore<u32> = VecSampleStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut live: BTreeSet<u32> = BTreeSet::new();
        for i in 0..50 {
            rp.insert(i, &mut store, &mut rng);
            live.insert(i);
        }
        for i in (0..50).step_by(3) {
            rp.delete(&i, &mut store);
            live.remove(&i);
        }
        for i in 100..120 {
            rp.insert(i, &mut store, &mut rng);
            live.insert(i);
        }
        let sampled: BTreeSet<u32> = store.items().iter().copied().collect();
        // All bad deletions must have been compensated by the later inserts.
        assert!(sampled.is_subset(&live));
        assert_eq!(rp.state().live_items, live.len());
    }

    #[test]
    fn uniformity_under_deletions() {
        // Stream: insert 0..40, delete 0..10, insert 40..50.  Live items are
        // 10..50 (40 items); with k = 8 each live item should be sampled with
        // probability 8/40 = 0.2.  Reservoir sampling that ignores deletions
        // would be biased; Random Pairing must not be.
        const TRIALS: u64 = 4_000;
        const K: usize = 8;
        let mut appearances = [0u32; 50];
        for trial in 0..TRIALS {
            let mut rp = RandomPairing::new(K);
            let mut store: VecSampleStore<u32> = VecSampleStore::new();
            let mut rng = StdRng::seed_from_u64(1_000 + trial);
            for i in 0..40 {
                rp.insert(i, &mut store, &mut rng);
            }
            for i in 0..10 {
                rp.delete(&i, &mut store);
            }
            for i in 40..50 {
                rp.insert(i, &mut store, &mut rng);
            }
            assert!(store.store_len() <= K);
            for &item in store.items() {
                appearances[item as usize] += 1;
            }
        }
        // Deleted items never appear.
        for (i, &count) in appearances.iter().enumerate().take(10) {
            assert_eq!(count, 0, "deleted item {i} appeared in a sample");
        }
        // Live items appear with frequency close to k / population.
        let expected = TRIALS as f64 * K as f64 / 40.0;
        for (i, &count) in appearances.iter().enumerate().skip(10) {
            let deviation = (f64::from(count) - expected).abs() / expected;
            assert!(
                deviation < 0.25,
                "item {i}: count {count}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_panics() {
        let _ = RandomPairing::new(0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Invariants under arbitrary valid operation sequences:
        /// the sample never exceeds the budget, is always a subset of the live
        /// items, counters never underflow, and the live-item count matches.
        #[test]
        fn invariants_hold_for_random_streams(
            budget in 1usize..12,
            seed in any::<u64>(),
            ops in proptest::collection::vec((any::<bool>(), 0u32..60), 1..300),
        ) {
            let mut rp = RandomPairing::new(budget);
            let mut store: VecSampleStore<u32> = VecSampleStore::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut live: BTreeSet<u32> = BTreeSet::new();

            for (want_insert, item) in ops {
                if want_insert {
                    if live.insert(item) {
                        rp.insert(item, &mut store, &mut rng);
                    }
                } else if live.remove(&item) {
                    rp.delete(&item, &mut store);
                }
                prop_assert!(store.store_len() <= budget);
                prop_assert_eq!(rp.state().live_items, live.len());
                for x in store.items() {
                    prop_assert!(live.contains(x), "sampled item {} is not live", x);
                }
            }
        }
    }
}
